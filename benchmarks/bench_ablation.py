"""Ablation benches for the design decisions DESIGN.md calls out.

Not a paper figure — these isolate the contribution of substrate
modelling choices: router pipeline depth, virtual networks (control vs
data separation), and the lock spin interval.
"""

from dataclasses import replace

from conftest import run_once

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import LockSpinConfig, NocConfig


def contended_run(cfg):
    wl = single_lock_workload(
        num_threads=64, home_node=53, cs_per_thread=2,
        cs_cycles=100, parallel_cycles=300,
    )
    return ManyCoreSystem(cfg, wl, primitive="tas").run(max_cycles=30_000_000)


def test_ablation_router_pipeline_depth(benchmark):
    """Deeper router pipelines stretch every round trip (decision #1)."""

    def run():
        out = {}
        for depth in (1, 2, 4):
            cfg = SystemConfig(noc=NocConfig(router_pipeline_cycles=depth))
            out[depth] = contended_run(cfg).roi_cycles
        return out

    rois = run_once(benchmark, run)
    print(f"\npipeline depth -> ROI: {rois}")
    assert rois[1] < rois[2] < rois[4]


def test_ablation_virtual_networks(benchmark):
    """Without VN separation, control queues behind data (decision #5):
    coherence round trips inflate."""

    def run():
        out = {}
        for vn in (True, False):
            cfg = SystemConfig(noc=NocConfig(virtual_networks=vn))
            result = contended_run(cfg)
            out[vn] = result.coherence.mean_inv_rtt
        return out

    rtts = run_once(benchmark, run)
    print(f"\nvirtual networks -> mean Inv-Ack RTT: {rtts}")
    assert rtts[False] > rtts[True]


def test_ablation_spin_interval(benchmark):
    """The retry interval paces raw spinning: longer intervals mean
    fewer lock transactions reach the home node (ROI moves
    nonmonotonically — fewer retries also mean less contention)."""

    def run():
        out = {}
        for interval in (10, 40, 160):
            cfg = SystemConfig(spin=LockSpinConfig(spin_interval=interval))
            result = contended_run(cfg)
            out[interval] = (
                result.roi_cycles, len(result.coherence.lock_txns)
            )
        return out

    data = run_once(benchmark, run)
    print(f"\nspin interval -> (ROI, lock txns): {data}")
    # envelope: all three pacing settings complete the same work with a
    # comparable number of lock transactions (the interval's first-order
    # effect is pacing, not correctness; the ROI/txn trade-off is noisy)
    counts = [txns for _roi, txns in data.values()]
    assert all(c > 0 for c in counts)
    assert max(counts) < 2 * min(counts)


def test_ablation_barriers_disabled_equals_normal_router(benchmark):
    """iNPG with a zero-size deployment is exactly the baseline
    (decision #2: disabling barriers reduces to normal routers)."""

    def run():
        base = SystemConfig().with_mechanism("original")
        zero = replace(
            SystemConfig().with_mechanism("inpg"),
            inpg=replace(
                SystemConfig().inpg, enabled=True, num_big_routers=0
            ),
        )
        return contended_run(base).roi_cycles, contended_run(zero).roi_cycles

    baseline, zero_deploy = run_once(benchmark, run)
    print(f"\nbaseline={baseline} zero-big-router-iNPG={zero_deploy}")
    assert baseline == zero_deploy
