"""Benchmark: simulation-core throughput on the canonical perf workloads.

Times the pinned workloads from :mod:`repro.perf.workloads` under
pytest-benchmark — the same work that ``scripts/perf_report.py`` measures
into ``BENCH_core.json``.  Each workload asserts its pinned event count
so a timing comparison is only ever made over identical simulated work.

The end-to-end ``fig12_quick`` workload (24 cold full-system runs, tens
of seconds) only runs with ``REPRO_FULL=1``.
"""

import os

import pytest

from conftest import run_once

from repro.perf.workloads import WORKLOADS

#: workload -> events it must simulate (from BENCH_core.json; a change
#: means the workload itself drifted and timings are incomparable)
PINNED_EVENTS = {
    "kernel_chain": 400_063,
    "packet_uniform": 541_377,
    "flit_uniform": 63_963,
}


def test_kernel_chain_throughput(benchmark):
    result = run_once(benchmark, WORKLOADS["kernel_chain"])
    print(f"\nkernel_chain: {result.events_per_sec:,.0f} events/sec")
    assert result.events == PINNED_EVENTS["kernel_chain"]


def test_packet_uniform_throughput(benchmark):
    result = run_once(benchmark, WORKLOADS["packet_uniform"])
    print(f"\npacket_uniform: {result.events_per_sec:,.0f} events/sec")
    assert result.events == PINNED_EVENTS["packet_uniform"]


def test_flit_uniform_throughput(benchmark):
    result = run_once(benchmark, WORKLOADS["flit_uniform"])
    print(f"\nflit_uniform: {result.events_per_sec:,.0f} events/sec")
    assert result.events == PINNED_EVENTS["flit_uniform"]


@pytest.mark.skipif(
    os.environ.get("REPRO_FULL", "") in ("", "0"),
    reason="end-to-end fig12 workload is slow; set REPRO_FULL=1",
)
def test_fig12_quick_throughput(benchmark):
    result = run_once(benchmark, WORKLOADS["fig12_quick"])
    print(f"\nfig12_quick: {result.events_per_sec:,.0f} events/sec")
    assert result.events > 1_000_000
