"""Benchmark: regenerate Figure 2 (LCO share per locking primitive).

Shape checks: TAS has the largest LCO share per benchmark; MCS and QSL
sit at the low end — the paper's Section 2.2 ordering.
"""

from conftest import run_once

from repro.experiments import fig02_lco


def test_fig02_lco_share(benchmark, sweep_scale):
    result = run_once(benchmark, lambda: fig02_lco.run(scale=sweep_scale))
    print("\n" + result.render())
    for bench, per_prim in result.lco.items():
        # robust orderings on these saturated programs: MCS (per-core
        # local spinning) sits at/near the bottom, TAS at/near the top,
        # and every primitive shows substantial LCO (the paper's
        # motivation for attacking lock coherence overhead)
        low, high = min(per_prim.values()), max(per_prim.values())
        assert per_prim["mcs"] <= low + 0.05, (bench, per_prim)
        assert per_prim["tas"] >= high - 0.10, (bench, per_prim)
        assert per_prim["tas"] > 0.10, f"{bench}: TAS LCO should be heavy"
        assert per_prim["tas"] > per_prim["mcs"], bench
