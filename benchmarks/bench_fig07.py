"""Benchmark: regenerate Figure 7 (router synthesis accounting)."""

from conftest import run_once

from repro.experiments import fig07_synthesis
from repro.synthesis import (
    BIG_ROUTER_GATES,
    NORMAL_ROUTER_GATES,
    packet_generator_power_overhead,
)


def test_fig07_synthesis(benchmark):
    result = run_once(benchmark, fig07_synthesis.run)
    print("\n" + result.render())
    # paper constants: 19.9K vs 22.4K gates, 2.5K-gate generator
    assert result.normal.gates == NORMAL_ROUTER_GATES == 19_900
    assert result.big.gates == BIG_ROUTER_GATES == 22_400
    assert result.generator_gates == 2_500
    # generator adds 9.9% dynamic power over a normal router
    assert abs(packet_generator_power_overhead() - 0.099) < 0.005
    # big tile 716.1 mW vs normal tile 707.7 mW
    assert abs(result.chip["big_tile_power_mw"] - 716.1) < 0.1
    assert abs(result.chip["normal_tile_power_mw"] - 707.7) < 0.1
