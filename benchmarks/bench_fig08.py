"""Benchmark: regenerate Figure 8 (CS characteristics and grouping).

Shape checks: COH dominates CSE for contended programs (the paper's
central observation) and sorting by total CS time recovers the group
structure.
"""

from conftest import run_once

from repro.experiments import fig08_cs_chars


def test_fig08_cs_characteristics(benchmark, sweep_quick, sweep_scale):
    result = run_once(
        benchmark,
        lambda: fig08_cs_chars.run(scale=sweep_scale, quick=sweep_quick),
    )
    print("\n" + result.render())
    ordered = result.sorted_by_cs_time()
    assert len(ordered) >= 6
    # heavy group programs have more total CS time than light group ones
    assert ordered[-1].total_cs_time > ordered[0].total_cs_time
    # Group 3 programs must be heavily contended: COH > CSE
    for stats in ordered:
        if stats.group == 3:
            assert stats.total_coh > stats.total_cse, stats.benchmark
    # ascending sort should roughly match the profile-derived groups
    groups_in_order = [s.group for s in ordered]
    assert groups_in_order[0] == 1
    assert groups_in_order[-1] == 3
