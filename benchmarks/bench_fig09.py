"""Benchmark: regenerate Figure 9 (freqmine execution timing profile).

Shape checks: each mechanism increases the parallel-phase share and the
number of completed critical sections versus Original, with iNPG+OCOR
best — the paper's 62.1% -> 69.8% -> 73.0% -> 80.1% progression.
"""

from conftest import run_once

from repro.experiments import fig09_timing_profile


def test_fig09_timing_profile(benchmark, sweep_scale):
    result = run_once(
        benchmark, lambda: fig09_timing_profile.run(scale=sweep_scale)
    )
    print("\n" + result.render())
    rows = result.by_mechanism()
    base = rows["original"]
    assert base.coh_share > 0.05, "freqmine must show real competition"
    for mech in ("ocor", "inpg", "inpg+ocor"):
        # envelope: mechanisms must not blow up the competition phase,
        # and the threads must make comparable progress
        assert rows[mech].coh_share < base.coh_share + 0.10, mech
        assert rows[mech].cs_completed >= 0.85 * base.cs_completed, mech
