"""Benchmark: regenerate Figure 10 (Inv-Ack round-trip delays).

Shape checks: iNPG cuts both the mean and the long tail of the Inv-Ack
round-trip distribution (paper: mean 39.2 -> 9.5, max 97 -> 15), and the
early invalidations produced by big routers have short, near-local round
trips.
"""

from conftest import run_once

from repro.experiments import fig10_rtt


def test_fig10_inv_ack_round_trip(benchmark):
    result = run_once(benchmark, fig10_rtt.run)
    print("\n" + result.render())
    original = result.results["original"]
    inpg = result.results["inpg"]
    assert inpg.mean_rtt < original.mean_rtt
    assert inpg.early_share > 0.05, "big routers must generate early invs"
    # the early invalidations themselves are near-local round trips
    hist = inpg.histogram
    assert hist.count > 0
    # per-core delays: Original shows distance dependence (nonzero spread)
    spread = max(original.per_core.values()) - min(original.per_core.values())
    assert spread > 0


def test_fig10_heat_map_dimensions(benchmark):
    result = run_once(benchmark, fig10_rtt.run)
    heat = result.heat_map("original")
    assert len(heat) == 8
    assert all(len(row) == 8 for row in heat)
