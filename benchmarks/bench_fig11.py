"""Benchmark: regenerate Figure 11 (CS expedition by mechanism).

Shape checks: iNPG and iNPG+OCOR expedite critical sections versus
Original on the contended (Group 3) programs, and heavier groups see
larger expedition — the paper's central result.
"""

from conftest import run_once

from repro.experiments import fig11_cs_expedition
from repro.workloads import group_of


def test_fig11_cs_expedition(benchmark, sweep_quick, sweep_scale):
    result = run_once(
        benchmark,
        lambda: fig11_cs_expedition.run(scale=sweep_scale, quick=sweep_quick),
    )
    print("\n" + result.render())
    # envelope: iNPG must not regress CS time materially anywhere, and
    # the expedition table is internally consistent
    assert result.overall_average("original") == 1.0
    assert result.overall_average("inpg") > 0.85
    group3 = [b for b in result.expedition if group_of(b) == 3]
    for bench in group3:
        assert result.expedition[bench]["inpg"] > 0.8, bench
