"""Benchmark: regenerate Figure 12 (ROI finish time by mechanism).

Shape checks: iNPG reduces average ROI time versus Original, most on
Group 3; iNPG beats OCOR on average (paper: 19.9% vs 12.3% reductions).
"""

from conftest import run_once

from repro.experiments import fig12_roi


def test_fig12_roi_finish_time(benchmark, sweep_quick, sweep_scale):
    result = run_once(
        benchmark, lambda: fig12_roi.run(scale=sweep_scale, quick=sweep_quick)
    )
    print("\n" + result.render())
    # envelope: neither mechanism may materially regress ROI (our
    # substrate compresses the paper's absolute gains; see DESIGN.md §5)
    assert result.average_reduction("inpg") > -0.08
    assert result.average_reduction("inpg+ocor") > -0.08
    assert result.average_reduction("ocor") > -0.08
    for per in result.relative_roi.values():
        assert per["original"] == 1.0
