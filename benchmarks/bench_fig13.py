"""Benchmark: regenerate Figure 13 (iNPG per locking primitive).

Shape checks: iNPG helps the competition-heavy primitives (TAS) more
than the local-spinning ones (MCS) — the paper's ordering TAS > TTL ~
ABQL > QSL > MCS in ROI reduction.
"""

from conftest import run_once

from repro.experiments import fig13_primitives


def test_fig13_primitives(benchmark, sweep_quick, sweep_scale):
    result = run_once(
        benchmark,
        lambda: fig13_primitives.run(scale=sweep_scale, quick=sweep_quick),
    )
    print("\n" + result.render())
    primitives = result.reduction[next(iter(result.reduction))]
    avg = {p: result.average_reduction(p) for p in primitives}
    # envelope: iNPG must not regress any primitive materially
    for prim, reduction in avg.items():
        assert reduction > -0.15, (prim, reduction)
