"""Benchmark: regenerate Figure 14 (big-router deployment sweep).

Shape checks: more big routers -> more CS expedition, with diminishing
returns from 32 to 64 (the paper's rationale for the 32-router default).
"""

from conftest import run_once

from repro.experiments import fig14_deployment


def test_fig14_deployment(benchmark, sweep_quick, sweep_scale):
    result = run_once(
        benchmark,
        lambda: fig14_deployment.run(scale=sweep_scale, quick=sweep_quick),
    )
    print("\n" + result.render())
    averages = {c: result.average(c) for c in result.deployments}
    assert averages[0] == 1.0
    # envelope: deployments must not materially regress CS time, and
    # going 32 -> 64 must not change much (the paper's marginal-gain point)
    assert averages[32] > 0.85
    assert abs(averages[64] - averages[32]) < 0.25
