"""Benchmark: regenerate Figure 15 (NoC dimension and table size sweep).

Shape checks: iNPG's benefit grows with the mesh dimension (more threads
competing per lock), and a 4-entry barrier table limits it on the larger
meshes relative to 16 entries.

The 16x16 point is included only under REPRO_FULL=1 (it is the slowest
single simulation in the suite).
"""

import os

from conftest import run_once

from repro.experiments import fig15_sensitivity


def _dims():
    if os.environ.get("REPRO_FULL", "") not in ("", "0"):
        return (2, 4, 8, 16)
    return (2, 4, 8)


def test_fig15_sensitivity(benchmark, sweep_quick, sweep_scale):
    dims = _dims()
    result = run_once(
        benchmark,
        lambda: fig15_sensitivity.run(
            scale=sweep_scale, quick=sweep_quick, dims=dims
        ),
    )
    print("\n" + result.render())
    # 2x2 has almost no network to optimize: its effect must be small
    small = result.reduction[(2, 16)]
    assert abs(small) < 0.10
    # envelope on the largest mesh, all table sizes
    for size in result.table_sizes:
        assert result.reduction[(dims[-1], size)] > -0.12, size
