"""Benchmark: validate the packet-level NoC model against the flit model.

The main simulator uses packet-granularity router timing; this bench
cross-checks it against the detailed flit-level model (2-stage
speculative pipeline, per-VC buffers, credit flow control) on zero-load
latency and on a contended many-to-one pattern.

The flit side is built through the engine-axis factory
(:func:`repro.noc.make_flit_network`), so ``--flit-engine vector``
re-validates the same agreements on the cycle-batched vector engine —
the two engines are bit-exact, so the numbers must be identical either
way.
"""

from conftest import run_once

from repro.config import NocConfig
from repro.noc import Network, make_flit_network
from repro.sim import Simulator


def flit_latency(src, dst, length, engine, width=8, height=8):
    sim = Simulator()
    net = make_flit_network(
        sim, NocConfig(width=width, height=height), engine
    )
    pkt = net.send(src, dst, length)
    sim.run(until=100_000)
    return pkt.latency


def packet_latency(src, dst, length, width=8, height=8):
    sim = Simulator()
    net = Network(sim, NocConfig(width=width, height=height))
    for n in range(width * height):
        net.register_endpoint(n, lambda p: None)
    pkt = net.send(src, dst, "x", size_flits=length)
    sim.run()
    return pkt.latency


def test_zero_load_latency_agreement(benchmark, flit_engine):
    def run():
        out = {}
        for (src, dst, length) in [(0, 63, 1), (0, 63, 8), (0, 7, 8),
                                   (27, 36, 1)]:
            out[(src, dst, length)] = (
                flit_latency(src, dst, length, flit_engine),
                packet_latency(src, dst, length),
            )
        return out

    pairs = run_once(benchmark, run)
    print(f"\n(src,dst,len) -> (flit[{flit_engine}], packet) latency")
    for key, (f, p) in pairs.items():
        print(f"  {key}: flit={f} packet={p}")
        assert 0.5 <= p / f <= 2.0, (key, f, p)


def test_hotspot_contention_agreement(benchmark, flit_engine):
    """Many-to-one traffic: both models must show congestion growth of
    the same order."""

    def run():
        # flit model
        fsim = Simulator()
        fnet = make_flit_network(
            fsim, NocConfig(width=4, height=4), flit_engine
        )
        fpkts = [fnet.send(src, 5, 8) for src in range(16) if src != 5]
        fsim.run(until=500_000)
        # packet model
        psim = Simulator()
        pnet = Network(psim, NocConfig(width=4, height=4))
        for n in range(16):
            pnet.register_endpoint(n, lambda p: None)
        ppkts = [pnet.send(src, 5, "x", size_flits=8)
                 for src in range(16) if src != 5]
        psim.run()
        return (
            max(p.latency for p in fpkts),
            max(p.latency for p in ppkts),
        )

    fmax, pmax = run_once(benchmark, run)
    print(f"\nhotspot max latency: flit[{flit_engine}]={fmax} packet={pmax}")
    # both exhibit serialization: >> zero-load 8-flit latency (~20)
    assert fmax > 40 and pmax > 40
    assert 0.3 <= pmax / fmax <= 3.0
