"""Benchmark: regenerate Table 1 (platform configuration)."""

from conftest import run_once

from repro.experiments import table1_config


def test_table1(benchmark):
    result = run_once(benchmark, table1_config.run)
    out = result.render()
    print("\n" + out)
    assert "8x8 mesh" in out
    assert "128 retries" in out
