"""Benchmark: NoC fabric characterization (latency-vs-load curves).

Not a paper figure — characterizes the substrate the coherence protocol
runs on: the latency/load curve per traffic pattern, and the hotspot
behaviour that shapes home-node congestion in the lock experiments.
"""

from conftest import run_once

from repro.config import NocConfig
from repro.noc.traffic import latency_load_curve, run_packet_traffic


def test_uniform_latency_load_curve(benchmark):
    def run():
        return latency_load_curve(
            NocConfig(width=8, height=8), "uniform",
            rates=(0.01, 0.05, 0.10), duration=1_000, size_flits=4,
        )

    curve = run_once(benchmark, run)
    print("\nrate -> mean latency")
    for point in curve:
        print(f"  {point.injection_rate:.2f} -> {point.mean_latency:.1f} "
              f"({point.delivered}/{point.offered} delivered)")
    latencies = [p.mean_latency for p in curve]
    assert latencies == sorted(latencies)
    assert all(p.accepted_fraction == 1.0 for p in curve)


def test_hotspot_congestion(benchmark):
    """Hotspot traffic (everyone to the home node) is the lock pattern;
    its latency must exceed uniform traffic at the same rate."""

    def run():
        cfg = NocConfig(width=8, height=8)
        uni = run_packet_traffic(cfg, "uniform", 0.03, duration=800,
                                 size_flits=4)
        hot = run_packet_traffic(cfg, "hotspot:53", 0.03, duration=800,
                                 size_flits=4)
        return uni, hot

    uni, hot = run_once(benchmark, run)
    print(f"\nuniform: {uni.mean_latency:.1f}  "
          f"hotspot(53): {hot.mean_latency:.1f}")
    assert hot.mean_latency > uni.mean_latency
