"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's tables/figures and prints
the same rows the paper reports.  By default a representative subset of
benchmarks (two per Figure 8 group) and a reduced workload scale keep
the suite fast; set ``REPRO_FULL=1`` to sweep all 24 programs at full
scale, as the paper does.
"""

import os

import pytest


def full() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def sweep_quick() -> bool:
    """False when REPRO_FULL=1: sweep all 24 programs."""
    return not full()


@pytest.fixture(scope="session")
def sweep_scale() -> float:
    """Workload scale for sweeps (1.0 when REPRO_FULL=1)."""
    return 1.0 if full() else 0.5


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
