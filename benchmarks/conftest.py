"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's tables/figures and prints
the same rows the paper reports.  By default a representative subset of
benchmarks (two per Figure 8 group) and a reduced workload scale keep
the suite fast; set ``REPRO_FULL=1`` to sweep all 24 programs at full
scale, as the paper does.

All simulations route through the shared :mod:`repro.exec` executor, so
``REPRO_JOBS=N`` parallelizes each figure's run plan and a warm
``.repro-cache/`` (or ``REPRO_CACHE_DIR``) answers repeated figure
regeneration without re-simulating; the run-execution summary prints at
session teardown.

The flit-level NoC benches are engine-parameterized: ``--flit-engine
vector`` (or ``REPRO_FLIT_ENGINE=vector``) reruns them on the
cycle-batched vector engine instead of the event-driven reference —
both are bit-exact, so the printed latencies must not move.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--flit-engine",
        default=os.environ.get("REPRO_FLIT_ENGINE", "event"),
        choices=("event", "vector", "sharded"),
        help="engine the flit-level NoC benches construct their "
             "networks with (default: event, or REPRO_FLIT_ENGINE)",
    )


@pytest.fixture(scope="session")
def flit_engine(request) -> str:
    """The flit engine selected for this bench session."""
    return request.config.getoption("--flit-engine")


@pytest.fixture(scope="session", autouse=True)
def exec_summary():
    """Print executed-vs-cached accounting once the suite finishes."""
    yield
    from repro.experiments import common

    executor = common.get_executor()
    if executor.stats.requested:
        cache_dir = (
            str(executor.cache.directory)
            if executor.cache.directory is not None
            else None
        )
        print()
        print(executor.stats.render_footer(jobs=executor.jobs,
                                           cache_dir=cache_dir))


def full() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def sweep_quick() -> bool:
    """False when REPRO_FULL=1: sweep all 24 programs."""
    return not full()


@pytest.fixture(scope="session")
def sweep_scale() -> float:
    """Workload scale for sweeps (1.0 when REPRO_FULL=1)."""
    return 1.0 if full() else 0.5


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
