#!/usr/bin/env python3
"""Build a custom workload against the public API.

Models a pipelined application: a hot dispatch lock that every thread
takes briefly, plus per-stage locks shared by groups of 16 threads —
then measures how much of the runtime each lock's coherence traffic
costs and what iNPG recovers.

Run:  python examples/custom_workload.py
"""

from repro import api
from repro.api import SystemConfig, Workload
from repro.workloads import WorkItem


def build_pipeline_workload(num_threads: int = 64) -> Workload:
    """One hot global lock (index 0) + four per-stage locks (1..4)."""
    items = []
    for thread in range(num_threads):
        stage_lock = 1 + thread // 16
        sequence = []
        for round_no in range(3):
            # dispatch: short CS on the global lock
            sequence.append(
                WorkItem(parallel_cycles=150, lock_index=0, cs_cycles=40)
            )
            # stage work: longer CS on the stage's lock
            sequence.append(
                WorkItem(parallel_cycles=400, lock_index=stage_lock,
                         cs_cycles=120)
            )
        items.append(sequence)
    return Workload(
        benchmark="pipeline-example",
        num_threads=num_threads,
        num_locks=5,
        lock_homes=[27, 9, 14, 49, 54],  # dispatch lock central, stages spread
        items=items,
    )


def main() -> None:
    workload = build_pipeline_workload()
    base = SystemConfig()
    results = {}
    for mechanism in ("original", "inpg"):
        cfg = base.with_mechanism(mechanism)
        results[mechanism] = api.simulate(cfg, workload, primitive="qsl")
    orig, inpg = results["original"], results["inpg"]
    print("Pipelined workload: 1 hot dispatch lock + 4 stage locks\n")
    print(f"{'':<22}{'Original':>12}{'iNPG':>12}")
    rows = [
        ("ROI cycles", orig.roi_cycles, inpg.roi_cycles),
        ("COH cycles (total)", orig.total_coh, inpg.total_coh),
        ("CSE cycles (total)", orig.total_cse, inpg.total_cse),
        ("lock transactions", len(orig.coherence.lock_txns),
         len(inpg.coherence.lock_txns)),
        ("mean Inv-Ack RTT", round(orig.coherence.mean_inv_rtt, 1),
         round(inpg.coherence.mean_inv_rtt, 1)),
    ]
    for label, a, b in rows:
        print(f"{label:<22}{a:>12,}{b:>12,}")
    speedup = orig.roi_cycles / inpg.roi_cycles
    print(f"\niNPG speedup on this workload: {speedup:.2f}x")
    print(
        "Per-lock LCO comes from the per-transaction records:\n"
        "result.coherence.lock_txns -> (addr, winner, duration, invs)."
    )


if __name__ == "__main__":
    main()
