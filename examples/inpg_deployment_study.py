#!/usr/bin/env python3
"""Deployment study: how many big routers does a 64-core chip need?

Sweeps 0/4/16/32/64 big routers (evenly spread, as in the paper's
Figure 14) on a contended workload and reports the performance per unit
of extra router power, using the Figure 7 synthesis model.  This is the
analysis behind the paper's choice of 32 interleaved big routers.

Run:  python examples/inpg_deployment_study.py
"""

from repro.api import Executor, RunSpec, SystemConfig
from repro.config import InpgConfig
from repro.synthesis import chip_summary


def main() -> None:
    base = SystemConfig()
    home = base.noc.node_at(5, 6)

    def spec(cfg) -> RunSpec:
        return RunSpec.microbench(
            home_node=home, cs_per_thread=2, cs_cycles=100,
            parallel_cycles=300, mechanism=None, primitive="qsl",
            config=cfg,
        )

    # the whole deployment sweep as one plan: cached across invocations,
    # parallel across REPRO_JOBS workers
    executor = Executor()
    plan = {0: spec(base.with_mechanism("original"))}
    for count in (4, 16, 32, 64):
        # with_overrides deep-replaces into the (frozen) inpg section —
        # the supported way to derive configs, no nested replace() calls
        plan[count] = spec(
            base.with_overrides(
                inpg={"enabled": True, "num_big_routers": count}
            )
        )
    results = executor.run(list(plan.values()))
    baseline = results[plan[0]]
    print(f"Original ROI: {baseline.roi_cycles:,} cycles\n")
    header = (
        f"{'big routers':>11} {'ROI cycles':>11} {'reduction':>10} "
        f"{'chip power (W)':>15} {'power overhead':>15}"
    )
    print(header)
    print("-" * len(header))
    for count in (0, 4, 16, 32, 64):
        roi = results[plan[count]].roi_cycles
        power = chip_summary(
            InpgConfig(enabled=count > 0, num_big_routers=count)
        )
        reduction = 1.0 - roi / baseline.roi_cycles
        print(
            f"{count:>11} {roi:>11,} {100 * reduction:>9.1f}% "
            f"{power['total_power_w']:>15.2f} "
            f"{power['power_overhead_pct']:>14.2f}%"
        )
    print(
        "\nThe paper settles on 32 interleaved big routers: beyond that,\n"
        "every lock request already passes a big router within a hop or\n"
        "two, so doubling the deployment adds power but little speedup."
    )


if __name__ == "__main__":
    main()
