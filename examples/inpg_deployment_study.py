#!/usr/bin/env python3
"""Deployment study: how many big routers does a 64-core chip need?

Sweeps 0/4/16/32/64 big routers (evenly spread, as in the paper's
Figure 14) on a contended workload and reports the performance per unit
of extra router power, using the Figure 7 synthesis model.  This is the
analysis behind the paper's choice of 32 interleaved big routers.

Run:  python examples/inpg_deployment_study.py
"""

from dataclasses import replace

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import InpgConfig
from repro.synthesis import chip_summary


def main() -> None:
    base = SystemConfig()
    workload = single_lock_workload(
        num_threads=64,
        home_node=base.noc.node_at(5, 6),
        cs_per_thread=2,
        cs_cycles=100,
        parallel_cycles=300,
    )
    baseline = ManyCoreSystem(
        base.with_mechanism("original"), workload, primitive="qsl"
    ).run()
    print(f"Original ROI: {baseline.roi_cycles:,} cycles\n")
    header = (
        f"{'big routers':>11} {'ROI cycles':>11} {'reduction':>10} "
        f"{'chip power (W)':>15} {'power overhead':>15}"
    )
    print(header)
    print("-" * len(header))
    for count in (0, 4, 16, 32, 64):
        if count == 0:
            roi = baseline.roi_cycles
        else:
            cfg = replace(
                base,
                inpg=replace(
                    base.inpg, enabled=True, num_big_routers=count
                ),
            )
            roi = ManyCoreSystem(cfg, workload, primitive="qsl").run().roi_cycles
        power = chip_summary(
            InpgConfig(enabled=count > 0, num_big_routers=count)
        )
        reduction = 1.0 - roi / baseline.roi_cycles
        print(
            f"{count:>11} {roi:>11,} {100 * reduction:>9.1f}% "
            f"{power['total_power_w']:>15.2f} "
            f"{power['power_overhead_pct']:>14.2f}%"
        )
    print(
        "\nThe paper settles on 32 interleaved big routers: beyond that,\n"
        "every lock request already passes a big router within a hop or\n"
        "two, so doubling the deployment adds power but little speedup."
    )


if __name__ == "__main__":
    main()
