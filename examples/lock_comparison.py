#!/usr/bin/env python3
"""Compare the five locking primitives under contention (paper Section 2).

All 64 threads hammer one lock hosted at core (5,6) — the paper's
Figure 10 microbenchmark scenario — once per primitive, with and without
iNPG.  Prints per-primitive ROI, LCO share, and coherence traffic so the
Figure 2 / Figure 13 orderings are visible from a single script.

Run:  python examples/lock_comparison.py
"""

from repro import api
from repro.api import RunSpec, SystemConfig
from repro.locks import PRIMITIVES

LABELS = {"tas": "TAS", "ticket": "TTL", "abql": "ABQL",
          "mcs": "MCS", "qsl": "QSL"}


def main() -> None:
    base = SystemConfig()
    home = base.noc.node_at(5, 6)
    specs = {
        (primitive, mech): RunSpec.microbench(
            home_node=home, cs_per_thread=2, cs_cycles=100,
            parallel_cycles=300, mechanism=mech, primitive=primitive,
            config=base,
        )
        for primitive in PRIMITIVES
        for mech in ("original", "inpg")
    }
    ordered = list(specs.values())
    results = dict(zip(ordered, api.run_plan(ordered)))
    print("64 threads competing for one lock homed at core (5,6):\n")
    header = (
        f"{'primitive':<10} {'ROI (orig)':>11} {'ROI (iNPG)':>11} "
        f"{'reduction':>10} {'LCO %':>7} {'lock txns':>10}"
    )
    print(header)
    print("-" * len(header))
    for primitive in PRIMITIVES:
        orig = results[specs[(primitive, "original")]]
        inpg = results[specs[(primitive, "inpg")]]
        reduction = 1.0 - inpg.roi_cycles / orig.roi_cycles
        print(
            f"{LABELS[primitive]:<10} {orig.roi_cycles:>11,} "
            f"{inpg.roi_cycles:>11,} {100 * reduction:>9.1f}% "
            f"{100 * orig.lco_fraction:>6.1f} "
            f"{len(orig.coherence.lock_txns):>10}"
        )
    print(
        "\nTAS generates an exclusive-access storm on every release, so it\n"
        "has the largest lock coherence overhead and gains most from iNPG;\n"
        "MCS spins on per-core queue nodes and gains least (Figure 13)."
    )


if __name__ == "__main__":
    main()
