#!/usr/bin/env python3
"""NoC model fidelity study: packet-level vs flit-level timing.

The repository carries two NoC models: the fast packet-granularity model
the experiments use, and a detailed flit-level model (2-stage speculative
pipeline, per-VC buffers, credit flow control).  This script compares
them on zero-load latency, a latency-load curve, and a small full-system
run, quantifying what the packet model's simplifications cost.

Run:  python examples/noc_fidelity_study.py
"""

from repro.api import Executor, RunSpec, SystemConfig
from repro.config import NocConfig
from repro.noc import Network, latency_load_curve
from repro.noc.flitsim import FlitNetwork
from repro.sim import Simulator


def zero_load_table() -> None:
    print("Zero-load latency (8x8 mesh):")
    print(f"{'src->dst (flits)':<20} {'flit model':>11} {'packet model':>13}")
    for src, dst, length in [(0, 63, 1), (0, 63, 8), (0, 7, 8), (27, 36, 1)]:
        fsim = Simulator()
        fnet = FlitNetwork(fsim, NocConfig())
        fp = fnet.send(src, dst, length)
        fsim.run(until=100_000)
        psim = Simulator()
        pnet = Network(psim, NocConfig())
        for n in range(64):
            pnet.register_endpoint(n, lambda p: None)
        pp = pnet.send(src, dst, "x", size_flits=length)
        psim.run()
        print(f"{src:>3}->{dst:<3} ({length} flits)   "
              f"{fp.latency:>11} {pp.latency:>13}")


def load_curve() -> None:
    print("\nUniform-random latency-load curve (packet model, 4-flit pkts):")
    curve = latency_load_curve(
        NocConfig(width=8, height=8), "uniform",
        rates=(0.01, 0.05, 0.10, 0.20), duration=1_000, size_flits=4,
    )
    for point in curve:
        print(f"  rate {point.injection_rate:.2f}: "
              f"mean latency {point.mean_latency:6.1f}  "
              f"({point.delivered:,} packets)")


def full_system() -> None:
    print("\nFull-system cross-check (16 cores, MCS lock, contended):")
    executor = Executor()
    specs = {
        flit_level: RunSpec.microbench(
            home_node=5, cs_per_thread=2, cs_cycles=60, parallel_cycles=200,
            mechanism="original", primitive="mcs",
            config=SystemConfig().with_overrides(
                noc={"width": 4, "height": 4, "flit_level": flit_level},
                num_threads=16,
            ),
        )
        for flit_level in (False, True)
    }
    results = executor.run(list(specs.values()))
    for flit_level in (False, True):
        result = results[specs[flit_level]]
        label = "flit-level " if flit_level else "packet-level"
        print(f"  {label}: ROI {result.roi_cycles:,} cycles, "
              f"mean msg latency {result.network_mean_latency:.1f}")


def main() -> None:
    zero_load_table()
    load_curve()
    full_system()
    print(
        "\nThe packet model tracks the flit model within ~2x on latency\n"
        "while running an order of magnitude faster — adequate for the\n"
        "ratio-based results the experiments report (DESIGN.md)."
    )


if __name__ == "__main__":
    main()
