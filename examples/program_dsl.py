#!/usr/bin/env python3
"""Drive the memory system directly with the program DSL.

Builds the canonical shared-counter workload out of raw instructions
(think / acquire / rmw / release), runs it on both the packet-level and
the flit-level NoC models, and prints per-core retirement traces — a
template for custom experiments that need finer control than the
benchmark workload generator.

Run:  python examples/program_dsl.py
"""

from repro.config import NocConfig, SystemConfig
from repro.coherence import MemorySystem
from repro.cpu import (
    OsModel,
    Program,
    ProgramCore,
    acquire,
    release,
    repeat,
    rmw,
    think,
)
from repro.locks import AddressSpace, make_lock
from repro.noc import Network
from repro.noc.flit_fabric import FlitFabric
from repro.sim import Simulator

NUM_CORES = 8
INCREMENTS = 4


def build_and_run(flit_level: bool):
    cfg = SystemConfig(
        noc=NocConfig(width=4, height=4, flit_level=flit_level),
        num_threads=16,
    )
    sim = Simulator()
    if flit_level:
        net = FlitFabric(sim, cfg.noc)
    else:
        net = Network(sim, cfg.noc, priority_arbitration=True)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    os_model = OsModel(sim, cfg.os, mem)
    lock = make_lock("mcs", sim, mem, AddressSpace(mem), 0, 5, cfg, os_model)
    counter = mem.addr_for_home(9)

    cores = []
    finished = []
    for c in range(NUM_CORES):
        program = Program([
            repeat(INCREMENTS, [
                think(100),
                acquire(0),
                rmw(counter, lambda old: (old + 1, old)),
                release(0),
            ]),
        ])
        core = ProgramCore(sim, c, program, mem, [lock],
                           on_done=finished.append)
        cores.append(core)
        core.start()
    sim.run(until=10_000_000)
    assert len(finished) == NUM_CORES
    assert mem.read(counter) == NUM_CORES * INCREMENTS
    end = max(core.retired[-1][0] for core in cores)
    return end, cores, mem


def main() -> None:
    print(f"{NUM_CORES} cores x {INCREMENTS} lock-protected increments\n")
    for flit_level in (False, True):
        label = "flit-level " if flit_level else "packet-level"
        cycles, cores, mem = build_and_run(flit_level)
        print(f"{label} NoC: finished in {cycles:,} cycles "
              f"(counter = {NUM_CORES * INCREMENTS}, no lost updates)")
    print("\nRetirement trace of core 0 (packet-level):")
    _, cores, _ = build_and_run(False)
    for when, op in cores[0].retired[:12]:
        print(f"  cycle {when:>7,}  {op}")


if __name__ == "__main__":
    main()
