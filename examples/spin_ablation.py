#!/usr/bin/env python3
"""Ablation walk-through: why baseline efficiency decides iNPG's value.

The single most important modelling insight of this reproduction (see
DESIGN.md section 5): the waiting discipline (raw test_and_set retries,
as the paper's Section 2.1 describes, vs software test-and-test-and-set)
and the directory's treatment of doomed swaps (full invalidate-everyone
transactions vs NACKs) set the size of the lock-coherence-overhead pool
that in-network packet generation can harvest.

This script runs the four combinations on a contended single-lock
workload and reports baseline LCO and iNPG's benefit for each.

Run:  python examples/spin_ablation.py
"""

from repro.experiments import ablation_lco


def main() -> None:
    print(ablation_lco.run().render())
    print(
        "\nReading: raw spinning without directory NACKs is the paper's"
        "\nregime - the baseline drowns in lock coherence traffic. Each"
        "\nsoftware/directory optimization shrinks the same overhead pool"
        "\niNPG targets, which is why reproduction magnitudes depend so"
        "\nstrongly on baseline assumptions (EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
