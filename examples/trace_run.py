#!/usr/bin/env python3
"""Observe one run: counters, structured trace, and a Perfetto export.

Runs the kdtree workload under iNPG with observability wired in, then

* writes ``inpg_trace.json`` — open it at https://ui.perfetto.dev (or
  ``chrome://tracing``) to see per-core phase slices, lock handoffs,
  early invalidations and barrier-table activity on a shared timeline;
* prints the per-lock contention report and the counters that the iNPG
  big routers accumulated.

Run:  python examples/trace_run.py
"""

from repro import api


def main() -> None:
    config = api.SystemConfig().with_mechanism("inpg")
    workload = api.generate_workload(
        "kdtree", num_threads=64, mesh_nodes=64, scale=0.3
    )
    with api.trace(out="inpg_trace.json", label="inpg/tas") as obs:
        result = api.simulate(config, workload, "tas", observe=obs)

    print(f"ROI: {result.roi_cycles:,} cycles, "
          f"{result.cs_completed} critical sections\n")
    print(obs.contention_report())
    print()
    snapshot = obs.counters()
    print("iNPG big-router activity:")
    for path in sorted(snapshot):
        if path.startswith("inpg/") or "/early" in path:
            print(f"  {path:<40} {snapshot[path]:,}")
    trace_n = len(obs.records())
    print(f"\n{trace_n:,} trace records captured "
          f"({obs.tracer.dropped:,} dropped); "
          "timeline written to inpg_trace.json — open in Perfetto.")


if __name__ == "__main__":
    main()
