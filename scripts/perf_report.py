#!/usr/bin/env python
"""Measure simulation-core performance and update ``BENCH_core.json``.

Thin launcher for :mod:`repro.perf.report` so the tracked perf numbers
can be refreshed without installing the package::

    python scripts/perf_report.py            # all workloads, update report
    python scripts/perf_report.py --quick    # fast subset (kernel/packet/
                                             # flit + coherence stress)
    python scripts/perf_report.py --check --quick   # CI regression gate
    python scripts/perf_report.py --quick --profile # cProfile per-layer
                                             # attribution table + hotspot
                                             # report (BENCH_profile.json)
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.report import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
