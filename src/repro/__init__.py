"""iNPG: Accelerating Critical Section Access with In-Network Packet
Generation for NoC Based Many-Cores — a full Python reproduction of
Yao & Lu, HPCA 2018.

Public API
==========

The supported, stable entry point is :mod:`repro.api`::

    from repro import api

    result = api.simulate(config, workload, primitive="qsl")
    results = api.run_plan(specs, jobs=4)
    with api.trace(out="t.json") as obs:
        api.simulate(config, workload, "tas", observe=obs)

Its surface:

* :func:`repro.api.simulate` — build and run one simulated ROI,
  returning a :class:`RunResult`; ``observe=`` wires in ``repro.obs``
  counters/tracing.
* :func:`repro.api.run_plan` — execute a plan of :class:`RunSpec` with
  persistent caching and process-parallel workers.
* :func:`repro.api.save_result` / :func:`repro.api.load_result` —
  versioned lossless persistence of results.
* :func:`repro.api.trace` — context-managed observability with Chrome
  trace-event (Perfetto) export.
* :mod:`repro.errors` (also ``api.errors``) — the single exception
  hierarchy (:class:`repro.errors.ReproError` and friends).
* :class:`repro.api.FaultPlan` / :class:`repro.api.ExperimentOptions` —
  deterministic fault injection and the unified robustness knobs
  (watchdog, timeouts, retry/skip policy); see ``repro.faults`` and the
  ``inpg-faults`` campaign CLI.

The deeper modules remain importable (``repro.system``, ``repro.exec``,
``repro.locks``, ``repro.inpg``, ``repro.obs``, ``repro.experiments`` —
one module per paper table/figure) and the deep import paths used by
pre-``repro.api`` code keep working; prefer ``repro.api`` in new code,
as the internals' constructor signatures may grow over time.
"""

from . import api, errors
from .config import MECHANISMS, SystemConfig
from .errors import (
    DeadlockError,
    ExecutorError,
    LivelockDetected,
    ProtocolViolation,
    ReproError,
    RunTimeout,
    SimulationError,
)
from .exec import Executor, RunSpec
from .faults import FaultPlan, FaultSite
from .obs import Observation
from .stats.metrics import RunResult, ThreadMetrics
from .system import ManyCoreSystem, run_benchmark
from .workloads.generator import (
    Workload,
    generate_workload,
    single_lock_workload,
)

__version__ = "1.0.0"

__all__ = [
    "DeadlockError",
    "ExecutorError",
    "Executor",
    "FaultPlan",
    "FaultSite",
    "LivelockDetected",
    "MECHANISMS",
    "ManyCoreSystem",
    "Observation",
    "ProtocolViolation",
    "ReproError",
    "RunResult",
    "RunSpec",
    "RunTimeout",
    "SimulationError",
    "SystemConfig",
    "ThreadMetrics",
    "Workload",
    "__version__",
    "api",
    "errors",
    "generate_workload",
    "run_benchmark",
    "single_lock_workload",
]
