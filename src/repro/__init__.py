"""iNPG: Accelerating Critical Section Access with In-Network Packet
Generation for NoC Based Many-Cores — a full Python reproduction of
Yao & Lu, HPCA 2018.

Public API
==========

* :class:`SystemConfig` — platform configuration (Table 1 defaults).
* :class:`ManyCoreSystem` / :func:`run_benchmark` — build and run one
  simulated ROI, returning a :class:`RunResult`.
* :func:`generate_workload` — synthetic PARSEC / SPEC OMP2012 workloads.
* :class:`RunSpec` / :class:`Executor` — declarative run plans with
  persistent caching and process-parallel execution (``repro.exec``).
* ``repro.locks`` — TAS, ticket, ABQL, MCS and queue spin-lock primitives.
* ``repro.inpg`` — big routers and the locking barrier table.
* ``repro.experiments`` — one module per paper table/figure.
"""

from .config import MECHANISMS, SystemConfig
from .exec import Executor, RunSpec
from .stats.metrics import RunResult, ThreadMetrics
from .system import DeadlockError, ManyCoreSystem, run_benchmark
from .workloads.generator import (
    Workload,
    generate_workload,
    single_lock_workload,
)

__version__ = "1.0.0"

__all__ = [
    "DeadlockError",
    "Executor",
    "MECHANISMS",
    "ManyCoreSystem",
    "RunResult",
    "RunSpec",
    "SystemConfig",
    "ThreadMetrics",
    "Workload",
    "__version__",
    "generate_workload",
    "run_benchmark",
    "single_lock_workload",
]
