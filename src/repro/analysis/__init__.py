"""Closed-form cross-check models (Amdahl + critical sections, queueing)."""

from .model import (
    LockServiceModel,
    amdahl_speedup,
    eyerman_eeckhout_speedup,
    predicted_inpg_gain,
)

__all__ = [
    "LockServiceModel",
    "amdahl_speedup",
    "eyerman_eeckhout_speedup",
    "predicted_inpg_gain",
]
