"""Analytical critical-section performance models.

Two closed-form models used as cross-checks on the simulator:

* :func:`eyerman_eeckhout_speedup` — the Amdahl's-law extension with
  critical sections from Eyerman & Eeckhout (ISCA 2010), cited in the
  paper's related work: with a fraction ``f_seq`` sequential, ``f_cs``
  inside critical sections (entered with probability of contention
  ``p_ctn``), the achievable speedup on ``n`` cores is bounded by the
  serialization of contended critical sections.

* :class:`LockServiceModel` — an M/D/1-style queueing estimate for one
  lock: given the per-acquisition service time (CS body + handoff
  latency) and the per-thread request rate, estimates utilization,
  waiting time, and the COH share the simulator should exhibit — the
  calibration tool behind the workload profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def amdahl_speedup(f_parallel: float, n: int) -> float:
    """Classic Amdahl's law."""
    if not 0.0 <= f_parallel <= 1.0:
        raise ValueError("parallel fraction must be in [0, 1]")
    if n < 1:
        raise ValueError("need at least one core")
    return 1.0 / ((1.0 - f_parallel) + f_parallel / n)


def eyerman_eeckhout_speedup(
    f_seq: float, f_par_ncs: float, f_cs: float, p_ctn: float, n: int
) -> float:
    """Speedup with critical sections (Eyerman & Eeckhout, ISCA'10).

    ``f_seq`` + ``f_par_ncs`` + ``f_cs`` must sum to 1: sequential code,
    parallel non-critical-section code, and critical-section code.  With
    contention probability ``p_ctn``, the critical-section term behaves
    sequentially with probability ``p_ctn`` and in parallel otherwise:

        T(n) = f_seq + f_par_ncs / n + f_cs * (p_ctn + (1 - p_ctn) / n)
    """
    total = f_seq + f_par_ncs + f_cs
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {total}")
    if not 0.0 <= p_ctn <= 1.0:
        raise ValueError("contention probability must be in [0, 1]")
    if n < 1:
        raise ValueError("need at least one core")
    t_n = f_seq + f_par_ncs / n + f_cs * (p_ctn + (1.0 - p_ctn) / n)
    return 1.0 / t_n


@dataclass(frozen=True)
class LockServiceModel:
    """Single-lock queueing estimate.

    ``service_cycles``: lock hold time per acquisition including the
    handoff (CS body + release + grant latency).
    ``think_cycles``: per-thread time between releasing and re-requesting
    (the parallel segment).
    ``threads``: competing threads sharing the lock.
    """

    service_cycles: float
    think_cycles: float
    threads: int

    @property
    def demand(self) -> float:
        """Offered load: requested service time per cycle (can exceed 1)."""
        cycle_per_thread = self.service_cycles + self.think_cycles
        return self.threads * self.service_cycles / cycle_per_thread

    @property
    def utilization(self) -> float:
        """Actual lock utilization (saturates at 1)."""
        return min(1.0, self.demand)

    @property
    def is_saturated(self) -> bool:
        return self.demand >= 1.0

    def mean_wait_cycles(self) -> float:
        """Mean time a thread waits to acquire (machine-repairman flavour).

        Below saturation, an M/D/1 approximation; at or beyond
        saturation, the wait grows to the full queue drain time:
        (threads - 1) x service on average at steady state.
        """
        if self.is_saturated:
            return (self.threads - 1) * self.service_cycles / 2.0 + (
                self.demand - 1.0
            ) * self.threads * self.service_cycles / 2.0
        rho = self.demand
        return rho * self.service_cycles / (2.0 * (1.0 - rho))

    def coh_fraction(self) -> float:
        """Predicted COH share of a thread's cycle time."""
        wait = self.mean_wait_cycles()
        total = self.think_cycles + wait + self.service_cycles
        return wait / total

    def throughput_cs_per_kcycle(self) -> float:
        """Critical sections completed per 1000 cycles (all threads)."""
        if self.is_saturated:
            return 1000.0 / self.service_cycles
        per_thread_cycle = (
            self.think_cycles + self.mean_wait_cycles() + self.service_cycles
        )
        return 1000.0 * self.threads / per_thread_cycle


def predicted_inpg_gain(
    baseline_lco_fraction: float, rtt_reduction: float
) -> float:
    """First-order ROI reduction estimate for iNPG.

    If LCO is ``baseline_lco_fraction`` of the runtime and iNPG cuts the
    Inv-Ack round trips by ``rtt_reduction`` (0..1), the runtime shrinks
    by about their product — the paper's Figure 2 -> Figure 12 logic.
    """
    if not 0.0 <= baseline_lco_fraction <= 1.0:
        raise ValueError("LCO fraction must be in [0, 1]")
    if not 0.0 <= rtt_reduction <= 1.0:
        raise ValueError("RTT reduction must be in [0, 1]")
    return baseline_lco_fraction * rtt_reduction
