"""``repro.api``: the stable public facade of the reproduction library.

Everything a consumer needs lives behind four calls::

    from repro import api

    # one run
    config = api.SystemConfig().with_mechanism("inpg")
    workload = api.generate_workload("kdtree", num_threads=64, mesh_nodes=64)
    result = api.simulate(config, workload, primitive="tas")

    # one run, observed (counters + structured trace + Perfetto export)
    with api.trace(out="trace.json") as obs:
        result = api.simulate(config, workload, "tas", observe=obs)
    print(obs.contention_report())

    # a cached, parallel run plan
    specs = [api.RunSpec(benchmark="kdtree", mechanism=m, primitive="qsl")
             for m in ("original", "inpg")]
    results = api.run_plan(specs, jobs=2)

    # persistence
    api.save_result(result, "run.json")
    result = api.load_result("run.json")

    # the simulation service (local twin by default, remote by URL)
    client = api.connect()                        # in-process
    client = api.connect("http://127.0.0.1:8731") # a running inpg-serve
    job = client.submit(specs)
    results = client.run(specs)                   # submit + wait + fetch

The deep import paths (``repro.system.ManyCoreSystem``,
``repro.exec.Executor``, ``repro.stats.serialize`` …) keep working and
are not going away, but they expose assembly internals whose signatures
may grow; this module is the interface the experiment harnesses, CLIs
and docs are written against, and its signatures are stable.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

from . import errors
from .coherence.protocol import (
    PROTOCOLS as PROTOCOL_SPECS,
    ProtocolSpec,
    get_protocol,
)
from .config import (
    ARBITERS,
    FLIT_ENGINES,
    MECHANISMS,
    PLACEMENTS,
    PROTOCOL_NAMES,
    TOPOLOGIES,
    SystemConfig,
    describe_axes,
)
from .errors import (
    DeadlockError,
    ExecutorError,
    LivelockDetected,
    ProtocolViolation,
    ReproError,
    RunTimeout,
    SimulationError,
)
from .exec import Executor, RunSpec
from .experiments.common import ExperimentOptions
from .faults import FaultPlan, FaultSite
from .obs import DEFAULT_CAPACITY, Observation
from .serve.client import (
    LocalClient,
    RemoteExecutor,
    ServiceClient,
    connect,
)
from .stats.metrics import RunResult
from .stats.serialize import (
    deserialize_run_result,
    result_fingerprint,
    serialize_run_result,
)
from .system import ManyCoreSystem, run_benchmark
from .workloads.generator import (
    Workload,
    generate_workload,
    single_lock_workload,
)

#: the four simulation axes, one name-tuple each (default first) —
#: ``PROTOCOLS`` / ``FLIT_ENGINES`` / ``TOPOLOGIES`` / ``ARBITERS`` all
#: follow one convention, described by :func:`describe_axes`.
#: (``PROTOCOLS`` used to re-export the ``name -> ProtocolSpec`` table;
#: that table is :data:`PROTOCOL_SPECS` now, and ``PROTOCOL_NAMES``
#: remains an alias of the tuple.)
PROTOCOLS = PROTOCOL_NAMES

__all__ = [
    "ARBITERS",
    "DeadlockError",
    "ExecutorError",
    "Executor",
    "ExperimentOptions",
    "FLIT_ENGINES",
    "FaultPlan",
    "FaultSite",
    "LivelockDetected",
    "LocalClient",
    "MECHANISMS",
    "ManyCoreSystem",
    "Observation",
    "PLACEMENTS",
    "PROTOCOLS",
    "PROTOCOL_NAMES",
    "PROTOCOL_SPECS",
    "ProtocolSpec",
    "ProtocolViolation",
    "RemoteExecutor",
    "ReproError",
    "RunResult",
    "RunSpec",
    "RunTimeout",
    "ServiceClient",
    "SimulationError",
    "SystemConfig",
    "TOPOLOGIES",
    "Workload",
    "connect",
    "describe_axes",
    "errors",
    "generate_workload",
    "get_protocol",
    "load_result",
    "result_fingerprint",
    "run_benchmark",
    "run_plan",
    "save_result",
    "simulate",
    "single_lock_workload",
    "trace",
]


# ----------------------------------------------------------------------
# Single runs
# ----------------------------------------------------------------------
def simulate(
    config: SystemConfig,
    workload: Workload,
    primitive: str = "qsl",
    *,
    observe: Optional[Observation] = None,
    max_cycles: int = 50_000_000,
    options: Optional[ExperimentOptions] = None,
) -> RunResult:
    """Assemble one many-core system, run its ROI, return the result.

    ``observe`` wires a :class:`repro.obs.Observation` into the system at
    build time (hierarchical counters and, by default, the structured
    trace ring); observed and unobserved runs of the same inputs are
    bit-exact.  Raises :class:`DeadlockError` if the ROI does not finish
    within ``max_cycles``.

    ``options`` carries the robustness knobs: ``fault_plan`` installs
    deterministic NoC fault injection, ``watchdog_cycles`` arms the
    liveness watchdog (:class:`LivelockDetected` on no-progress),
    ``check_protocol`` attaches the online coherence checker, and
    ``timeout_s`` bounds the run's wall clock (:class:`RunTimeout`).
    The retry/on_error fields are executor policy and ignored here.
    """
    opts = options if options is not None else ExperimentOptions()
    system = ManyCoreSystem(
        config,
        workload,
        primitive=primitive,
        observe=observe,
        fault_plan=opts.fault_plan,
        watchdog_cycles=opts.watchdog_cycles,
        check_protocol=opts.check_protocol,
    )
    return system.run(max_cycles=max_cycles, timeout_s=opts.timeout_s)


@contextmanager
def trace(
    out=None,
    *,
    capacity: int = DEFAULT_CAPACITY,
    label: str = "run",
    metadata: Optional[Dict] = None,
) -> Iterator[Observation]:
    """Context manager around an :class:`Observation` for one run.

    Yields an unattached observation to pass to :func:`simulate` (or any
    ``observe=`` parameter).  On clean exit, writes the run as a Chrome
    trace-event JSON file to ``out`` when given — viewable in Perfetto
    or ``chrome://tracing``.

    ::

        with api.trace(out="t.json", label="inpg/tas") as obs:
            api.simulate(config, workload, "tas", observe=obs)
    """
    obs = Observation(trace=True, trace_capacity=capacity, label=label)
    yield obs
    if out is not None and obs.attached:
        obs.write_chrome_trace(out, metadata=metadata)


# ----------------------------------------------------------------------
# Run plans
# ----------------------------------------------------------------------
def run_plan(
    specs: Sequence[RunSpec],
    *,
    jobs: Optional[int] = None,
    cache: Union[bool, str, None] = True,
    observe_factory=None,
    options: Optional[ExperimentOptions] = None,
) -> List[Optional[RunResult]]:
    """Execute a plan of :class:`RunSpec`, results in input order.

    ``jobs`` is the worker-process count (``None``: the ``REPRO_JOBS``
    environment variable, else 1; ``0``: one per CPU).  ``cache`` is
    ``True`` for the default persistent cache directory, a path string
    for an explicit one, or ``False``/``None`` to disable caching.
    ``observe_factory`` (``spec -> Observation``) makes every unique
    spec run inline and uncached with observability wired in; fetch each
    observation with ``Executor.observation_for`` by building the
    :class:`Executor` yourself when you need them.

    ``options`` carries the robustness knobs: ``fault_plan`` /
    ``watchdog_cycles`` / ``check_protocol`` overlay onto specs that do
    not set their own, and ``timeout_s`` / ``retries`` / ``on_error``
    configure the executor.  Under ``on_error="skip"`` a failed spec's
    slot holds ``None`` instead of a result.
    """
    opts = options if options is not None else ExperimentOptions()
    effective = [opts.apply_to_spec(spec) for spec in specs]
    if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
        executor = Executor(jobs=jobs, cache_dir=cache,
                            observe_factory=observe_factory)
    else:
        executor = Executor(jobs=jobs, use_cache=bool(cache),
                            observe_factory=observe_factory)
    by_spec = executor.run(effective, **opts.executor_policy())
    return [by_spec[spec] for spec in effective]


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def save_result(result: RunResult, path) -> None:
    """Write ``result`` losslessly as versioned JSON (see ``load_result``)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(serialize_run_result(result), fh, separators=(",", ":"))
        fh.write("\n")


def load_result(path) -> RunResult:
    """Read a :func:`save_result` file back into a :class:`RunResult`.

    Raises ``ValueError`` when the file was written under a different
    ``RESULT_SCHEMA_VERSION``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        return deserialize_run_result(json.load(fh))
