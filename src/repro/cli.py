"""``inpg-sim``: run one simulation from the command line.

Examples::

    inpg-sim freqmine                         # Original, QSL
    inpg-sim kdtree --mechanism inpg --primitive tas
    inpg-sim nab --mechanism inpg+ocor --json
    inpg-sim microbench --threads 64 --home 53 --gantt
    inpg-sim kdtree --mechanism inpg --trace --trace-out t.json
"""

from __future__ import annotations

import argparse
import json
import sys

from dataclasses import replace

from .config import FLIT_ENGINES, MECHANISMS, PROTOCOL_NAMES, SystemConfig
from .exec import Executor, RunSpec
from .locks.factory import PRIMITIVES, canonical_primitive
from .stats.export import render_gantt, run_result_to_dict
from .workloads.profiles import ALL_PROFILES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="inpg-sim",
        description="Simulate one benchmark on the iNPG platform.",
    )
    parser.add_argument(
        "benchmark",
        help="benchmark name (see --list), or 'microbench' for the "
             "single-lock all-compete scenario",
    )
    parser.add_argument("--mechanism", default="original",
                        choices=list(MECHANISMS))
    parser.add_argument("--protocol", default="moesi",
                        choices=list(PROTOCOL_NAMES),
                        help="coherence protocol variant (default: the "
                             "paper's directory MOESI)")
    parser.add_argument("--primitive", default="qsl",
                        help=f"one of {PRIMITIVES} (or paper alias TTL)")
    parser.add_argument("--flit-engine", default=None,
                        choices=list(FLIT_ENGINES),
                        help="run the NoC at flit granularity with this "
                             "engine ('event' = reference, 'vector' = "
                             "cycle-batched arrays, bit-exact); implies "
                             "noc.flit_level, so it excludes "
                             "--mechanism inpg")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--threads", type=int, default=64,
                        help="microbench: competing threads")
    parser.add_argument("--home", type=int, default=53,
                        help="microbench: lock home node")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="deterministic fault plan, e.g. "
                             "'drop:0.01' or 'drop:1/Inv#2000..4000,"
                             "delay:0.2@router:53+16' (see repro.faults)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault plan's RNG stream")
    parser.add_argument("--watchdog", type=int, default=None,
                        metavar="CYCLES",
                        help="arm the liveness watchdog: raise "
                             "LivelockDetected after this many cycles "
                             "without forward progress")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-run wall-clock budget (RunTimeout past "
                             "it; timed-out runs are never cached)")
    parser.add_argument("--check-protocol", action="store_true",
                        help="attach the online coherence protocol checker")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default "
                             "REPRO_CACHE_DIR or .repro-cache/)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result as JSON")
    parser.add_argument("--gantt", action="store_true",
                        help="render a Figure 9-style phase timeline")
    parser.add_argument("--trace", action="store_true",
                        help="observe the run (counters + structured "
                             "trace); bypasses the result cache")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON (Perfetto) "
                             "file (implies --trace)")
    parser.add_argument("--list", action="store_true",
                        help="list benchmark names and exit")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    if argv and "--list" in argv or argv is None and "--list" in sys.argv:
        for profile in ALL_PROFILES:
            print(f"{profile.name:<16} ({profile.suite}, "
                  f"group-relevant short name: {profile.short_name})")
        return 0
    args = parser.parse_args(argv)
    primitive = canonical_primitive(args.primitive)
    executor = Executor(
        jobs=1, cache_dir=args.cache_dir, use_cache=not args.no_cache,
        timeout_s=args.timeout,
    )
    fault_plan = None
    if args.faults:
        from .faults import FaultPlan

        fault_plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
    robust = dict(
        fault_plan=fault_plan,
        watchdog_cycles=args.watchdog,
        check_protocol=args.check_protocol,
        protocol=None if args.protocol == "moesi" else args.protocol,
    )
    base_config = SystemConfig()
    if args.flit_engine is not None:
        base_config = replace(
            base_config,
            noc=replace(base_config.noc, flit_level=True,
                        flit_engine=args.flit_engine),
        )
    if args.benchmark == "microbench":
        spec = RunSpec.microbench(
            home_node=args.home,
            mechanism=args.mechanism,
            primitive=primitive,
            seed=args.seed,
            config=replace(base_config, num_threads=args.threads),
            **robust,
        )
    else:
        spec = RunSpec(
            benchmark=args.benchmark,
            mechanism=args.mechanism,
            primitive=primitive,
            scale=args.scale,
            seed=args.seed,
            config=None if args.flit_engine is None else base_config,
            **robust,
        )
    traced = args.trace or args.trace_out is not None
    observe = None
    if traced:
        from .exec.executor import execute_spec
        from .obs import Observation

        observe = Observation(
            label=f"{args.benchmark}[{args.mechanism}/{primitive}]"
        )
        # observed runs execute inline and never touch the cache: cached
        # results carry no trace ring, and traced payloads must not leak
        # into unobserved plans.
        result = execute_spec(spec, observe=observe, timeout_s=args.timeout)
    else:
        result = executor.run_one(spec)
    if args.json:
        print(json.dumps(run_result_to_dict(result), indent=2))
    else:
        summary = result.summary()
        print(f"{args.benchmark} [{args.mechanism}/{primitive}]")
        for key, value in summary.items():
            print(f"  {key:<18} {value:,.2f}")
    if args.gantt:
        threads = [t.thread for t in result.threads[:8]]
        window = (0, min(30_000, result.roi_cycles))
        print()
        print(render_gantt(result.timeline, threads, window=window))
    if observe is not None:
        print()
        print(observe.contention_report())
        if args.trace_out is not None:
            observe.write_chrome_trace(args.trace_out)
            n = len(observe.records())
            print(f"\ntrace: {n:,} records "
                  f"({observe.tracer.dropped:,} dropped) -> {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
