"""``inpg-sim``: run one simulation from the command line.

Examples::

    inpg-sim freqmine                         # Original, QSL
    inpg-sim kdtree --mechanism inpg --primitive tas
    inpg-sim nab --mechanism inpg+ocor --json
    inpg-sim microbench --threads 64 --home 53 --gantt
    inpg-sim kdtree --mechanism inpg --trace --trace-out t.json
    inpg-sim kdtree --remote http://127.0.0.1:8731

This module also owns the *shared* command-line vocabulary: every
``inpg-*`` tool that executes simulations builds its parser over
:func:`execution_parent` (``--jobs`` / ``--timeout`` / ``--cache-dir`` /
``--no-cache`` / ``--remote``) and :func:`add_flit_engine_argument`, so
one flag is spelled, typed and documented identically everywhere, and
:func:`executor_from_args` turns the parsed flags into the right
executor — in-process by default, a
:class:`~repro.serve.client.RemoteExecutor` when ``--remote`` names a
running ``inpg-serve``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from dataclasses import replace

from .config import (
    ARBITERS,
    FLIT_ENGINES,
    MECHANISMS,
    PROTOCOL_NAMES,
    TOPOLOGIES,
    SystemConfig,
)
from .exec import Executor, RunSpec
from .locks.factory import PRIMITIVES, canonical_primitive
from .stats.export import render_gantt, run_result_to_dict
from .workloads.profiles import ALL_PROFILES


# ----------------------------------------------------------------------
# Shared flag vocabulary (all inpg-* tools)
# ----------------------------------------------------------------------
def execution_parent(remote: bool = True) -> argparse.ArgumentParser:
    """The argparse parent carrying the shared execution flags.

    Every tool that runs simulations includes this via ``parents=`` so
    ``--jobs`` / ``--timeout`` / ``--cache-dir`` / ``--no-cache`` (and,
    unless ``remote=False``, ``--remote``) are spelled and documented
    identically across ``inpg-sim``, ``inpg-experiments``,
    ``inpg-faults`` and ``inpg-serve``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes for the run plan (0 = one per CPU; "
             "default REPRO_JOBS or 1)",
    )
    group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget (timed-out runs fail and are "
             "never cached)",
    )
    group.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default REPRO_CACHE_DIR or "
             ".repro-cache/)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache",
    )
    if remote:
        group.add_argument(
            "--remote", default=None, metavar="URL",
            help="execute on a running inpg-serve at this URL instead "
                 "of in-process (e.g. http://127.0.0.1:8731); the "
                 "service owns the cache and worker pool, so --jobs/"
                 "--cache-dir/--no-cache apply only to local runs",
        )
    return parent


#: environment default for ``--shards`` (same convention as REPRO_JOBS)
SHARDS_ENV = "REPRO_SHARDS"


def add_flit_engine_argument(parser, extra_help: str = "") -> None:
    """Add the shared ``--flit-engine`` flag (identical everywhere)."""
    text = ("run the NoC at flit granularity with this engine "
            "('event' = reference, 'vector' = cycle-batched arrays, "
            "bit-exact, 'sharded' = vector split into row-band worker "
            "processes, bit-exact)")
    if extra_help:
        text = f"{text}; {extra_help}"
    parser.add_argument("--flit-engine", default=None,
                        choices=list(FLIT_ENGINES), help=text)


def add_shards_argument(parser) -> None:
    """Add the shared ``--shards`` flag (identical everywhere)."""
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="row-band worker processes for the sharded flit engine "
             "(requires --flit-engine sharded; default REPRO_SHARDS "
             "or 1)",
    )


def resolve_shards(args) -> int:
    """``--shards`` with the ``REPRO_SHARDS`` environment fallback."""
    shards = getattr(args, "shards", None)
    if shards is None:
        shards = int(os.environ.get(SHARDS_ENV, "1") or 1)
    return shards


def axes_parent() -> argparse.ArgumentParser:
    """The argparse parent carrying the shared simulation-axis flags.

    One flag per axis of ``repro.api.describe_axes()`` —
    ``--protocol`` / ``--flit-engine`` / ``--topology`` / ``--arbiter``
    — spelled, typed and documented identically on ``inpg-sim`` and
    ``inpg-experiments`` (specs built from them travel unchanged through
    the ``inpg-serve`` proto).  Every flag defaults to ``None``, meaning
    "keep the config's value" (the paper's MOESI / packet-level / mesh /
    round-robin defaults).
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("simulation axes")
    group.add_argument(
        "--protocol", default=None, choices=list(PROTOCOL_NAMES),
        help="coherence protocol variant (default: the paper's "
             "directory MOESI)",
    )
    add_flit_engine_argument(group)
    add_shards_argument(group)
    group.add_argument(
        "--topology", default=None, choices=list(TOPOLOGIES),
        help="NoC fabric topology (default: the paper's 8x8 mesh; "
             "torus/ring need the packet-level model)",
    )
    group.add_argument(
        "--arbiter", default=None, choices=list(ARBITERS),
        help="output-port arbitration across VC classes (default: "
             "round-robin; 'wrr' = weighted round-robin with "
             "noc.wrr_weights credits)",
    )
    return parent


def executor_from_args(args, *, retries: int = 0, on_error: str = "raise",
                       observe_factory=None):
    """Build the executor the shared execution flags describe.

    Returns an in-process :class:`~repro.exec.Executor` normally, or a
    :class:`~repro.serve.client.RemoteExecutor` bound to ``--remote``.
    Observed (traced) plans cannot cross the wire — trace rings live in
    the executing process — so ``observe_factory`` with ``--remote`` is
    rejected here, once, instead of in every tool.
    """
    remote = getattr(args, "remote", None)
    if remote:
        if observe_factory is not None:
            raise SystemExit(
                "error: --trace needs inline execution and cannot be "
                "combined with --remote (trace data stays in the "
                "executing process)")
        from .serve.client import RemoteExecutor

        return RemoteExecutor(remote, timeout_s=args.timeout,
                              retries=retries, on_error=on_error)
    return Executor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        timeout_s=args.timeout,
        retries=retries,
        on_error=on_error,
        observe_factory=observe_factory,
    )


def footer_cache_dir(executor) -> str:
    """The ``cache_dir`` string the execution-summary footer prints."""
    directory = executor.cache.directory
    return str(directory) if directory is not None else None


# ----------------------------------------------------------------------
# inpg-sim
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="inpg-sim",
        description="Simulate one benchmark on the iNPG platform.",
        parents=[execution_parent(), axes_parent()],
    )
    parser.add_argument(
        "benchmark",
        help="benchmark name (see --list), or 'microbench' for the "
             "single-lock all-compete scenario",
    )
    parser.add_argument("--mechanism", default="original",
                        choices=list(MECHANISMS))
    parser.add_argument("--primitive", default="qsl",
                        help=f"one of {PRIMITIVES} (or paper alias TTL)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--threads", type=int, default=64,
                        help="microbench: competing threads")
    parser.add_argument("--home", type=int, default=53,
                        help="microbench: lock home node")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="deterministic fault plan, e.g. "
                             "'drop:0.01' or 'drop:1/Inv#2000..4000,"
                             "delay:0.2@router:53+16' (see repro.faults)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault plan's RNG stream")
    parser.add_argument("--watchdog", type=int, default=None,
                        metavar="CYCLES",
                        help="arm the liveness watchdog: raise "
                             "LivelockDetected after this many cycles "
                             "without forward progress")
    parser.add_argument("--check-protocol", action="store_true",
                        help="attach the online coherence protocol checker")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result as JSON")
    parser.add_argument("--gantt", action="store_true",
                        help="render a Figure 9-style phase timeline")
    parser.add_argument("--trace", action="store_true",
                        help="observe the run (counters + structured "
                             "trace); bypasses the result cache")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON (Perfetto) "
                             "file (implies --trace)")
    parser.add_argument("--list", action="store_true",
                        help="list benchmark names and exit")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    if argv and "--list" in argv or argv is None and "--list" in sys.argv:
        for profile in ALL_PROFILES:
            print(f"{profile.name:<16} ({profile.suite}, "
                  f"group-relevant short name: {profile.short_name})")
        return 0
    args = parser.parse_args(argv)
    primitive = canonical_primitive(args.primitive)
    traced = args.trace or args.trace_out is not None
    if traced and args.remote:
        print("error: --trace needs inline execution and cannot be "
              "combined with --remote", file=sys.stderr)
        return 2
    executor = executor_from_args(args)
    fault_plan = None
    if args.faults:
        from .faults import FaultPlan

        fault_plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
    robust = dict(
        fault_plan=fault_plan,
        watchdog_cycles=args.watchdog,
        check_protocol=args.check_protocol,
        protocol=args.protocol,
        topology=args.topology,
        arbiter=args.arbiter,
    )
    shards = resolve_shards(args)
    if shards > 1 and args.flit_engine != "sharded":
        print("error: --shards > 1 requires --flit-engine sharded "
              f"(got {args.flit_engine or 'packet-level default'})",
              file=sys.stderr)
        return 2
    base_config = SystemConfig()
    if args.flit_engine is not None:
        base_config = replace(
            base_config,
            noc=replace(base_config.noc, flit_level=True,
                        flit_engine=args.flit_engine, shards=shards),
        )
    if args.benchmark == "microbench":
        spec = RunSpec.microbench(
            home_node=args.home,
            mechanism=args.mechanism,
            primitive=primitive,
            seed=args.seed,
            config=replace(base_config, num_threads=args.threads),
            **robust,
        )
    else:
        spec = RunSpec(
            benchmark=args.benchmark,
            mechanism=args.mechanism,
            primitive=primitive,
            scale=args.scale,
            seed=args.seed,
            config=None if args.flit_engine is None else base_config,
            **robust,
        )
    observe = None
    if traced:
        from .exec.executor import execute_spec
        from .obs import Observation

        observe = Observation(
            label=f"{args.benchmark}[{args.mechanism}/{primitive}]"
        )
        # observed runs execute inline and never touch the cache: cached
        # results carry no trace ring, and traced payloads must not leak
        # into unobserved plans.
        result = execute_spec(spec, observe=observe, timeout_s=args.timeout)
    else:
        result = executor.run_one(spec)
    if args.json:
        print(json.dumps(run_result_to_dict(result), indent=2))
    else:
        summary = result.summary()
        print(f"{args.benchmark} [{args.mechanism}/{primitive}]")
        for key, value in summary.items():
            print(f"  {key:<18} {value:,.2f}")
    if args.gantt:
        threads = [t.thread for t in result.threads[:8]]
        window = (0, min(30_000, result.roi_cycles))
        print()
        print(render_gantt(result.timeline, threads, window=window))
    if observe is not None:
        print()
        print(observe.contention_report())
        if args.trace_out is not None:
            observe.write_chrome_trace(args.trace_out)
            n = len(observe.records())
            print(f"\ntrace: {n:,} records "
                  f"({observe.tracer.dropped:,} dropped) -> {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
