"""Directory-based MOESI cache coherence (the paper's Figure 4 protocol)."""

from .directory import DirectoryController, DirEntry, Transaction
from .l1cache import L1Cache
from .memsystem import MemorySystem
from .messages import CoherenceMessage, MessageType, next_txn_id
from .states import L1State

__all__ = [
    "CoherenceMessage",
    "DirEntry",
    "DirectoryController",
    "L1Cache",
    "L1State",
    "MemorySystem",
    "MessageType",
    "Transaction",
    "next_txn_id",
]
