"""Directory-based cache coherence: a MSI/MESI/MOESI protocol family.

The paper's Figure 4 protocol (directory MOESI) is the default; the
variants are declarative transition tables in :mod:`.protocol`, compiled
onto the L1/directory controllers at attach time.
"""

from .directory import DirectoryController, DirEntry, Transaction
from .l1cache import L1Cache
from .memsystem import MemorySystem
from .messages import CoherenceMessage, MessageType, next_txn_id
from .protocol import (
    DirState,
    PROTOCOLS,
    ProtocolSpec,
    TransitionResult,
    UNHANDLED,
    dir_state_of,
    get_protocol,
    lint_protocol,
)
from .states import L1State

__all__ = [
    "CoherenceMessage",
    "DirEntry",
    "DirState",
    "DirectoryController",
    "L1Cache",
    "L1State",
    "MemorySystem",
    "MessageType",
    "PROTOCOLS",
    "ProtocolSpec",
    "Transaction",
    "TransitionResult",
    "UNHANDLED",
    "dir_state_of",
    "get_protocol",
    "lint_protocol",
    "next_txn_id",
]
