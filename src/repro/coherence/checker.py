"""Online coherence protocol checker.

Attach a :class:`ProtocolChecker` to a :class:`MemorySystem` to validate
the protocol's global invariants *while the simulation runs*:

* **SWMR** — at most one core holds a writable (M/E) copy of any block,
  and never concurrently with shared copies;
* **single owner** — at most one core in an owning state (M/E/O);
* **tracked copies** — every Shared copy belongs to a directory-listed
  sharer, every owning copy to the directory's owner (checked at
  quiescent points: transaction boundaries);
* **commit ordering** — writes to a block are totally ordered and every
  committed RMW observed the immediately preceding committed value.

The checker samples on every directory transaction close (Unblock) plus
an optional periodic timer.  It is pure observation — no protocol state
is mutated — and costs O(cores) per sample, so tests enable it freely;
production sweeps leave it off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import ProtocolViolation
from ..sim import Component, Simulator
from .states import L1State

if TYPE_CHECKING:  # pragma: no cover
    from .memsystem import MemorySystem

__all__ = ["CheckerReport", "ProtocolChecker", "ProtocolViolation"]


@dataclass
class CheckerReport:
    samples: int = 0
    transactions_observed: int = 0
    writes_observed: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


class ProtocolChecker(Component):
    """Observes a memory system and validates coherence invariants."""

    def __init__(
        self,
        sim: Simulator,
        memsys: "MemorySystem",
        period: Optional[int] = None,
        strict: bool = True,
    ):
        super().__init__(sim, "checker")
        self.memsys = memsys
        self.strict = strict
        self.report = CheckerReport()
        self._last_committed: Dict[int, int] = {}
        self._wrap_apply_rmw()
        self._wrap_unblock()
        if period is not None:
            self._arm_periodic(period)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _wrap_apply_rmw(self) -> None:
        original = self.memsys.apply_rmw

        def checked(addr: int, op):
            before = self.memsys.read(addr)
            expected = self._last_committed.get(addr)
            if expected is not None and before != expected:
                self._flag(
                    f"write ordering broken at {addr:#x}: committed value "
                    f"{before} != last observed commit {expected}"
                )
            result = original(addr, op)
            self._last_committed[addr] = self.memsys.read(addr)
            self.report.writes_observed += 1
            return result

        self.memsys.apply_rmw = checked  # type: ignore[method-assign]

    def _wrap_unblock(self) -> None:
        for directory in self.memsys.dirs.values():
            original = directory._on_unblock

            def checked(msg, _original=original, _dir=directory):
                _original(msg)
                self.report.transactions_observed += 1
                self.check_block(msg.addr)

            directory._on_unblock = checked  # type: ignore[method-assign]

    def _arm_periodic(self, period: int) -> None:
        def tick() -> None:
            self.check_all_known()
            self.after(period, tick)

        self.after(period, tick)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check_block(self, addr: int) -> None:
        """Validate SWMR/ownership/tracking for one block, now."""
        self.report.samples += 1
        writable, owners, shared = [], [], []
        for core, l1 in self.memsys.l1s.items():
            state = l1.state_of(addr)
            if state.can_write:
                writable.append(core)
            if state.owns_data:
                owners.append(core)
            if state is L1State.SHARED:
                shared.append(core)
        if len(writable) > 1:
            self._flag(f"SWMR violated at {addr:#x}: writers {writable}")
        if writable and shared:
            # M/E concurrent with S is incoherent; transient windows are
            # possible while invalidations are in flight, so only flag
            # when the directory is not mid-transaction on this block.
            ent = self.memsys.dirs[self.memsys.home_of(addr)].entry(addr)
            if not ent.busy:
                self._flag(
                    f"writable+shared at {addr:#x}: W={writable} S={shared}"
                )
        if len(owners) > 1:
            self._flag(f"multiple owners at {addr:#x}: {owners}")

    def check_all_known(self) -> None:
        for addr in list(self._last_committed):
            self.check_block(addr)

    def check_tracked_copies(self) -> None:
        """At quiescence: every valid copy is directory-tracked."""
        for addr in list(self._last_committed):
            home = self.memsys.home_of(addr)
            ent = self.memsys.dirs[home].entry(addr)
            for core, l1 in self.memsys.l1s.items():
                state = l1.state_of(addr)
                if state is L1State.SHARED and core not in ent.sharers:
                    self._flag(
                        f"untracked shared copy at {addr:#x} core {core}"
                    )
                if state.owns_data and ent.owner != core:
                    self._flag(
                        f"untracked owner at {addr:#x}: core {core} holds "
                        f"{state.value}, directory says {ent.owner}"
                    )

    def _flag(self, message: str) -> None:
        self.report.violations.append(f"[cycle {self.now}] {message}")
        if self.strict:
            raise ProtocolViolation(self.report.violations[-1])
