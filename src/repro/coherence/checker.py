"""Online coherence protocol checker — a transition-table validator.

Attach a :class:`ProtocolChecker` to a :class:`MemorySystem` to validate
the run against the *active protocol's* declarative transition table
(:mod:`repro.coherence.protocol`) while the simulation runs:

* **table conformance** — every message delivered to an L1 is checked
  against the active ``(state, event)`` table entry: a pair the table
  marks :data:`~repro.coherence.protocol.UNHANDLED`, a state outside the
  protocol's state set, or a resulting state the entry does not allow
  raises a structured :class:`~repro.errors.ProtocolViolation` naming
  the pair.  Directory deliveries are checked for pair existence (the
  directory defers its state change past an L2-latency hop, so result
  states are validated by the global invariants instead).
* **SWMR** — at most one core holds a writable copy of any block, and
  never concurrently with shared copies (writability per the *active*
  protocol's derived permissions, not hard-coded MOESI ones);
* **single owner** — at most one core in an owning state;
* **tracked copies** — every Shared copy belongs to a directory-listed
  sharer, every owning copy to the directory's owner (checked at
  quiescent points: transaction boundaries);
* **commit ordering** — writes to a block are totally ordered and every
  committed RMW observed the immediately preceding committed value.

The checker samples on every directory transaction close (Unblock) plus
an optional periodic timer.  It is pure observation — no protocol state
is mutated (the dispatch tuples are swapped for wrapped ones, but the
wrapped handlers delegate to the originals) — so tests enable it
freely; production sweeps leave it off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import ProtocolViolation
from ..sim import Component, Simulator
from .protocol import UNHANDLED, dir_state_of
from .states import L1State

if TYPE_CHECKING:  # pragma: no cover
    from .memsystem import MemorySystem

__all__ = ["CheckerReport", "ProtocolChecker", "ProtocolViolation"]


@dataclass
class CheckerReport:
    samples: int = 0
    transactions_observed: int = 0
    writes_observed: int = 0
    #: L1/directory deliveries validated against the transition table
    transitions_checked: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


class ProtocolChecker(Component):
    """Observes a memory system and validates it against the active
    protocol's transition table plus the global coherence invariants."""

    def __init__(
        self,
        sim: Simulator,
        memsys: "MemorySystem",
        period: Optional[int] = None,
        strict: bool = True,
    ):
        super().__init__(sim, "checker")
        self.memsys = memsys
        self.protocol = memsys.protocol
        self.strict = strict
        self.report = CheckerReport()
        self._last_committed: Dict[int, int] = {}
        self._wrap_apply_rmw()
        self._wrap_unblock()
        self._wrap_l1_dispatch()
        self._wrap_dir_dispatch()
        if period is not None:
            self._arm_periodic(period)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _wrap_apply_rmw(self) -> None:
        original = self.memsys.apply_rmw

        def checked(addr: int, op):
            before = self.memsys.read(addr)
            expected = self._last_committed.get(addr)
            if expected is not None and before != expected:
                self._flag(
                    f"write ordering broken at {addr:#x}: committed value "
                    f"{before} != last observed commit {expected}",
                    addr=addr,
                )
            result = original(addr, op)
            self._last_committed[addr] = self.memsys.read(addr)
            self.report.writes_observed += 1
            return result

        self.memsys.apply_rmw = checked  # type: ignore[method-assign]

    def _wrap_unblock(self) -> None:
        for directory in self.memsys.dirs.values():
            original = directory._on_unblock

            def checked(msg, _original=original, _dir=directory):
                _original(msg)
                self.report.transactions_observed += 1
                self.check_block(msg.addr)

            directory._on_unblock = checked  # type: ignore[method-assign]

    def _wrap_l1_dispatch(self) -> None:
        """Swap each L1's tag-indexed dispatch tuple for a validating one.

        ``L1Cache.handle`` reads ``self._dispatch`` at call time, so the
        swap intercepts every delivery even though the NoC endpoints
        captured the bound ``handle`` methods at construction.  Each
        wrapped handler checks the (state-before, event) pair against the
        table, runs the real handler, and checks the resulting state
        against the entry's allowed set.
        """
        spec = self.protocol
        for l1 in self.memsys.l1s.values():
            wrapped = []
            for handler in l1._dispatch:
                if handler is None:
                    wrapped.append(None)
                    continue

                def checked(msg, _handler=handler, _l1=l1):
                    before = _l1.state_of(msg.addr)
                    entry = spec.l1_entry(before, msg.mtype)
                    self.report.transitions_checked += 1
                    if entry is None:
                        self._flag(
                            f"L1 {_l1.node}: state {before.value} outside "
                            f"protocol {spec.name} hit by {msg.mtype.value} "
                            f"at {msg.addr:#x}",
                            state=before.value, event=msg.mtype.value,
                            core=_l1.node, addr=msg.addr,
                        )
                    elif entry is UNHANDLED:
                        self._flag(
                            f"L1 {_l1.node}: table pair ({before.value}, "
                            f"{msg.mtype.value}) is UNHANDLED under "
                            f"{spec.name} at {msg.addr:#x}",
                            state=before.value, event=msg.mtype.value,
                            core=_l1.node, addr=msg.addr,
                        )
                    _handler(msg)
                    after = _l1.state_of(msg.addr)
                    if (
                        entry is not None
                        and entry is not UNHANDLED
                        and after is not before
                        and after not in entry.allowed
                    ):
                        self._flag(
                            f"L1 {_l1.node}: ({before.value}, "
                            f"{msg.mtype.value}) -> {after.value} not in "
                            f"table's {[s.value for s in entry.allowed]} "
                            f"at {msg.addr:#x}",
                            state=before.value, event=msg.mtype.value,
                            core=_l1.node, addr=msg.addr,
                        )

                wrapped.append(checked)
            l1._dispatch = tuple(wrapped)

    def _wrap_dir_dispatch(self) -> None:
        """Validate directory deliveries for table-pair existence.

        The directory's state change happens an L2-latency hop after
        dispatch, so only the (state-at-arrival, event) pair is checked
        here; resulting directory states are covered by the quiescent
        tracked-copy checks.
        """
        spec = self.protocol
        for directory in self.memsys.dirs.values():
            wrapped = []
            for handler in directory._dispatch:
                if handler is None:
                    wrapped.append(None)
                    continue

                def checked(msg, _handler=handler, _dir=directory):
                    ent = _dir.entries.get(msg.addr)
                    state = (
                        dir_state_of(ent) if ent is not None
                        else dir_state_of(_EMPTY_ENTRY)
                    )
                    entry = spec.dir_entry(state, msg.mtype)
                    self.report.transitions_checked += 1
                    if entry is None or entry is UNHANDLED:
                        self._flag(
                            f"dir {_dir.node}: table pair ({state.value}, "
                            f"{msg.mtype.value}) "
                            + ("is UNHANDLED" if entry is UNHANDLED
                               else "missing")
                            + f" under {spec.name} at {msg.addr:#x}",
                            state=state.value, event=msg.mtype.value,
                            core=_dir.node, addr=msg.addr,
                        )
                    _handler(msg)

                wrapped.append(checked)
            directory._dispatch = tuple(wrapped)

    def _arm_periodic(self, period: int) -> None:
        def tick() -> None:
            self.check_all_known()
            self.after(period, tick)

        self.after(period, tick)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check_block(self, addr: int) -> None:
        """Validate SWMR/ownership/tracking for one block, now."""
        self.report.samples += 1
        can_write = self.protocol.can_write
        owns_data = self.protocol.owns_data
        writable, owners, shared = [], [], []
        for core, l1 in self.memsys.l1s.items():
            state = l1.state_of(addr)
            if state not in self.protocol.l1_states:
                self._flag(
                    f"core {core} holds state {state.value} outside "
                    f"protocol {self.protocol.name} at {addr:#x}",
                    state=state.value, core=core, addr=addr,
                )
            if can_write[state.idx]:
                writable.append(core)
            if owns_data[state.idx]:
                owners.append(core)
            if state is L1State.SHARED:
                shared.append(core)
        if len(writable) > 1:
            self._flag(
                f"SWMR violated at {addr:#x}: writers {writable}", addr=addr
            )
        if writable and shared:
            # M/E concurrent with S is incoherent; transient windows are
            # possible while invalidations are in flight, so only flag
            # when the directory is not mid-transaction on this block.
            ent = self.memsys.dirs[self.memsys.home_of(addr)].entry(addr)
            if not ent.busy:
                self._flag(
                    f"writable+shared at {addr:#x}: W={writable} S={shared}",
                    addr=addr,
                )
        if len(owners) > 1:
            self._flag(
                f"multiple owners at {addr:#x}: {owners}", addr=addr
            )

    def check_all_known(self) -> None:
        for addr in list(self._last_committed):
            self.check_block(addr)

    def check_tracked_copies(self) -> None:
        """At quiescence: every valid copy is directory-tracked."""
        owns_data = self.protocol.owns_data
        for addr in list(self._last_committed):
            home = self.memsys.home_of(addr)
            ent = self.memsys.dirs[home].entry(addr)
            for core, l1 in self.memsys.l1s.items():
                state = l1.state_of(addr)
                if state is L1State.SHARED and core not in ent.sharers:
                    self._flag(
                        f"untracked shared copy at {addr:#x} core {core}",
                        state=state.value, core=core, addr=addr,
                    )
                if owns_data[state.idx] and ent.owner != core:
                    self._flag(
                        f"untracked owner at {addr:#x}: core {core} holds "
                        f"{state.value}, directory says {ent.owner}",
                        state=state.value, core=core, addr=addr,
                    )

    def _flag(
        self,
        message: str,
        *,
        state: Optional[str] = None,
        event: Optional[str] = None,
        core: Optional[int] = None,
        addr: Optional[int] = None,
    ) -> None:
        self.report.violations.append(f"[cycle {self.now}] {message}")
        if self.strict:
            raise ProtocolViolation(
                self.report.violations[-1],
                state=state, event=event, core=core, addr=addr,
            )


class _EmptyEntry:
    """Stand-in for a block the directory has never seen (Unowned)."""

    busy = False
    owner = None
    sharer_mask = 0


_EMPTY_ENTRY = _EmptyEntry()
