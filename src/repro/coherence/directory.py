"""Directory controller at each home (shared L2 bank) node.

Implements the home-node side of the paper's Figure 4 protocol walk-through:

* **GetS** — if a core owns the block, forward the request to it (FwdGetS,
  owner degrades M/E -> O and supplies data); otherwise the home supplies
  data.  The requester is recorded as a sharer.
* **GetX** — transactions on a block are serialized by a busy bit with a
  request queue (losing GetX requests are, equivalently to the paper's
  "forwarded to the winner", queued and served in turn by the then-current
  owner via FwdGetX).  Starting a transaction, the home invalidates every
  sharer (InvAcks go straight to the winner), transfers data from the old
  owner (FwdGetX) or supplies it itself, and tells the winner which acks
  to collect (AckCount).  The winner's Unblock closes the transaction.
* **early InvAck** (iNPG) — an ack forwarded by a big router for an early
  invalidation it generated.  The home prunes the acked core from the
  sharer list; if a transaction is in flight and still waiting on that
  core, the ack is relayed to the winner (Section 3.3: "the big router
  then forwards ... the acknowledgements ... to the home node, which are
  in turn forwarded by the home node to the winning thread").

With OCOR enabled, the queued GetX requests are ordered by the priority
their packets carry (remaining-times-of-retry mapping) instead of FIFO.

Fast-path representation (DESIGN.md §11): messages dispatch through a
per-type bound-method table indexed by ``msg.tag``; sharer sets and
pending-InvAck sets are integer bitmasks (bit ``c`` == core ``c``), so the
64-core invalidation fan-out walks set bits instead of rebuilding Python
sets; :class:`DirEntry` / :class:`Transaction` are slotted; and the Inv /
AckCount bursts draw messages from the memory system's free-list pool.

Protocol family (DESIGN.md §12): the dispatch table and the two variant
flags the handlers branch on — ``_home_takes_ownership`` (MSI/MESI have
no O state, so sharing an owned block returns ownership to the home) and
``_grant_exclusive_clean`` (MESI grants Exclusive on a clean GetS miss)
— are compiled onto each instance from the active
:class:`~repro.coherence.protocol.ProtocolSpec` at construction time.
Under MOESI both flags are False and every path below is byte-identical
to the pre-table code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..sim import Component, Simulator
from .messages import (
    CoherenceMessage,
    MessageType,
    N_MESSAGE_TYPES,
    mask_to_set,
    next_txn_id,
)

if TYPE_CHECKING:  # pragma: no cover
    from .memsystem import MemorySystem

__all__ = ["DirEntry", "DirectoryController", "Transaction", "next_txn_id"]


class Transaction:
    """An in-flight exclusive-ownership transfer."""

    __slots__ = ("txn_id", "addr", "winner", "start", "expected_mask",
                 "is_atomic", "forwarded_losers")

    def __init__(self, txn_id: int, addr: int, winner: int, start: int,
                 expected_mask: int, is_atomic: bool):
        self.txn_id = txn_id
        self.addr = addr
        self.winner = winner
        self.start = start
        #: bitmask of cores whose InvAcks the winner must collect
        self.expected_mask = expected_mask
        self.is_atomic = is_atomic
        self.forwarded_losers: List[int] = []

    @property
    def expected(self) -> set:
        """Set view of :attr:`expected_mask` (tests/diagnostics)."""
        return mask_to_set(self.expected_mask)


class DirEntry:
    """Directory state for one block.

    ``sharer_mask`` is the authoritative sharer representation (bit ``c``
    set == core ``c`` holds a Shared copy); the :attr:`sharers` property
    is the set-typed compatibility view used by tests, the protocol
    checker and diagnostics.
    """

    __slots__ = ("owner", "sharer_mask", "busy", "txn", "queue", "last_add")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.sharer_mask = 0
        self.busy = False
        self.txn: Optional[Transaction] = None
        #: queued requests: (sort key, message)
        self.queue: List[Tuple[Tuple[int, int, int], CoherenceMessage]] = []
        #: cycle each core was last added to the sharer list; early-ack
        #: prunes older than this are stale (previous copy).
        self.last_add: Dict[int, int] = {}

    @property
    def sharers(self) -> set:
        """Set view of :attr:`sharer_mask`."""
        return mask_to_set(self.sharer_mask)


#: msg.tag -> DirectoryController method name (None == protocol error)
_HANDLER_NAMES: List[Optional[str]] = [None] * N_MESSAGE_TYPES
_HANDLER_NAMES[MessageType.GETS.tag] = "_h_gets"
_HANDLER_NAMES[MessageType.GETX.tag] = "_h_getx"
_HANDLER_NAMES[MessageType.UNBLOCK.tag] = "_h_unblock"
_HANDLER_NAMES[MessageType.INV_ACK.tag] = "_h_inv_ack"
_HANDLER_NAMES[MessageType.DATA.tag] = "_h_data"
_HANDLER_NAMES[MessageType.PUT_S.tag] = "_h_put"
_HANDLER_NAMES[MessageType.PUT_M.tag] = "_h_put"


class DirectoryController(Component):
    """The coherence directory co-located with the L2 bank at ``node``."""

    def __init__(self, sim: Simulator, node: int, memsys: "MemorySystem"):
        super().__init__(sim, f"dir.{node}")
        self.node = node
        self.memsys = memsys
        self.entries: Dict[int, DirEntry] = {}
        self._queue_seq = 0
        self.ocor_queue_ordering = memsys.config.ocor.enabled
        self.transactions_started = 0
        self.gets_served = 0
        self.fail_forwards = 0
        self.nacked_probes = 0
        #: blocks resident in this L2 bank; a first touch fetches from DRAM
        self._resident: set = set()
        self._fetching: Dict[int, list] = {}
        self._l2_latency = memsys.config.cache.l2_latency
        self._schedule = sim.schedule
        # lower the active protocol's transition table onto this
        # instance: sets self.protocol, the msg.tag-indexed _dispatch
        # tuple and the _home_takes_ownership/_grant_exclusive_clean
        # variant flags.
        memsys.protocol.compile_directory(self)

    def _with_block(self, addr: int, action, msg) -> None:
        """Run ``action(msg)`` once ``addr`` is resident in the L2 bank.

        The first touch of a block pays a DRAM access at the nearest
        memory controller (Table 1's eight edge controllers); concurrent
        cold requests coalesce onto one fetch.
        """
        if addr in self._resident or self.memsys.dram is None:
            action(msg)
            return
        waiting = self._fetching.get(addr)
        if waiting is not None:
            waiting.append((action, msg))
            return
        self._fetching[addr] = [(action, msg)]
        self.memsys.dram.access_from(self.node, self._filled, addr)

    def _filled(self, addr: int) -> None:
        self._resident.add(addr)
        for action, msg in self._fetching.pop(addr):
            action(msg)

    def entry(self, addr: int) -> DirEntry:
        ent = self.entries.get(addr)
        if ent is None:
            ent = DirEntry()
            self.entries[addr] = ent
        return ent

    # ------------------------------------------------------------------
    # Message entry point (after L2 access latency)
    # ------------------------------------------------------------------
    def handle(self, msg: CoherenceMessage) -> None:
        handler = self._dispatch[msg.tag]
        if handler is None:
            raise RuntimeError(f"directory {self.node} cannot handle {msg}")
        handler(msg)

    # -- per-type entries (dispatch table targets) ----------------------
    def _h_gets(self, msg: CoherenceMessage) -> None:
        self._schedule(self._l2_latency, self._with_block, msg.addr,
                       self._on_gets, msg)

    def _h_getx(self, msg: CoherenceMessage) -> None:
        self._schedule(self._l2_latency, self._with_block, msg.addr,
                       self._on_getx, msg)

    def _h_unblock(self, msg: CoherenceMessage) -> None:
        # late-bound (self._on_unblock): the protocol checker wraps the
        # attribute after construction
        self._schedule(self._l2_latency, self._dispatch_unblock, msg)

    def _dispatch_unblock(self, msg: CoherenceMessage) -> None:
        self._on_unblock(msg)

    def _h_inv_ack(self, msg: CoherenceMessage) -> None:
        # A big-router-forwarded early ack; directory metadata update is
        # cheap, relay without a full L2 access.
        self._on_early_ack(msg)

    def _h_data(self, msg: CoherenceMessage) -> None:
        if msg.fail_response:
            self._relay_fail_answer(msg)
            return
        raise RuntimeError(f"directory {self.node} cannot handle {msg}")

    def _h_put(self, msg: CoherenceMessage) -> None:
        self._schedule(self._l2_latency, self._on_put, msg)

    def _on_put(self, msg: CoherenceMessage) -> None:
        """An eviction writeback: untrack the core's copy.

        A Put older than the core's latest sharer re-add is stale (the
        core refetched after evicting) and is dropped, mirroring the
        early-ack prune rule.
        """
        ent = self.entry(msg.addr)
        core = msg.requester
        if msg.mtype is MessageType.PUT_M and ent.owner == core:
            ent.owner = None
        if (ent.sharer_mask >> core) & 1 and (
            msg.ack_processed_cycle > ent.last_add.get(core, -1)
        ):
            ent.sharer_mask &= ~(1 << core)

    def _relay_fail_answer(self, msg: CoherenceMessage) -> None:
        """Register the losing requester as a sharer, then relay the
        winner's answer to it.

        Doing both at the home puts the sharer add and the copy delivery
        on the same (in-order) home->loser path as any subsequent
        invalidation of that copy, which makes untracked installs
        impossible.

        If a *new* transaction is already open for the block, the answer
        degrades to a value-only NACK: installing a copy now would create
        a sharer the open transaction's invalidation set never covered
        (a Modified winner coexisting with Shared losers).  The loser
        re-fetches through the normal tracked path instead.
        """
        ent = self.entry(msg.addr)
        copyless = ent.busy
        if not copyless:
            ent.sharer_mask |= 1 << msg.requester
            ent.last_add[msg.requester] = self.now
            if ent.owner == msg.sender:
                # MSI/MESI: the answering winner demoted itself to
                # Shared when it shared the copy; mirror that here.
                self._maybe_reclaim_ownership(ent)
        relayed = CoherenceMessage(
            mtype=MessageType.DATA,
            addr=msg.addr,
            requester=msg.requester,
            sender=self.node,
            fail_response=True,
            copyless=copyless,
            value=msg.value,
            # stamp the *add* moment: the loser installs iff its last
            # locally-processed invalidation predates this, which is the
            # exact complement of the home's early-ack prune rule
            generated_cycle=self.now,
        )
        self.memsys.send(
            self.node, msg.requester, relayed, data_packet=not copyless
        )

    # ------------------------------------------------------------------
    # GetS
    # ------------------------------------------------------------------
    def _on_gets(self, msg: CoherenceMessage) -> None:
        ent = self.entry(msg.addr)
        if ent.busy:
            self._enqueue(ent, msg)
            return
        self._serve_gets(ent, msg)

    def _serve_gets(self, ent: DirEntry, msg: CoherenceMessage) -> None:
        self.gets_served += 1
        requester = msg.requester
        if ent.owner is not None and ent.owner != requester:
            fwd = CoherenceMessage(
                mtype=MessageType.FWD_GETS,
                addr=msg.addr,
                requester=requester,
                sender=self.node,
            )
            self.memsys.send(self.node, ent.owner, fwd)
            self._maybe_reclaim_ownership(ent)
        else:
            if (
                self._grant_exclusive_clean
                and ent.owner is None
                and ent.sharer_mask == 0
            ):
                # MESI clean-miss grant: the requester becomes the
                # recorded *owner* (not a sharer) and installs E; a
                # later GetX from it finds owner == winner and needs no
                # FwdGetX, a GetX from anyone else FwdGetXes the line.
                grant = CoherenceMessage(
                    mtype=MessageType.DATA,
                    addr=msg.addr,
                    requester=requester,
                    sender=self.node,
                    exclusive=True,
                )
                self.memsys.send(
                    self.node, requester, grant, data_packet=True
                )
                ent.owner = requester
                ent.last_add[requester] = self.now
                return
            data = CoherenceMessage(
                mtype=MessageType.DATA,
                addr=msg.addr,
                requester=requester,
                sender=self.node,
            )
            self.memsys.send(self.node, requester, data, data_packet=True)
        ent.sharer_mask |= 1 << requester
        ent.last_add[requester] = self.now

    def _maybe_reclaim_ownership(self, ent: DirEntry) -> None:
        """MSI/MESI: an owner asked to share its block demotes itself to
        Shared, so the home reclaims ownership and re-tracks the old
        owner as a plain sharer.  Under MOESI (owner parks in O and keeps
        supplying data) this is a no-op."""
        if not self._home_takes_ownership or ent.owner is None:
            return
        old_owner = ent.owner
        ent.owner = None
        ent.sharer_mask |= 1 << old_owner
        ent.last_add[old_owner] = self.now

    # ------------------------------------------------------------------
    # GetX
    # ------------------------------------------------------------------
    def _on_getx(self, msg: CoherenceMessage) -> None:
        ent = self.entry(msg.addr)
        if ent.busy:
            if msg.fails_fast and ent.txn is not None:
                self._forward_loser(ent, msg)
            else:
                self._enqueue(ent, msg)
            return
        if (
            msg.fails_if is not None
            and self.memsys.config.cache.directory_nacks
            and msg.fails_if(self.memsys.read(msg.addr))
        ):
            # The store-conditional is doomed (e.g. a SWAP that would see
            # "occupied"): answer with a shared copy instead of opening a
            # pointless invalidate-everyone transaction (the paper's
            # Step 4 — losers end each round with valid copies).  When a
            # core owns the block, the copy comes from it (demoting it to
            # Owned); otherwise the home supplies it.
            self.nacked_probes += 1
            ent.sharer_mask |= 1 << msg.requester
            ent.last_add[msg.requester] = self.now
            if ent.owner is not None and ent.owner != msg.requester:
                fwd = CoherenceMessage(
                    mtype=MessageType.FWD_GETS,
                    addr=msg.addr,
                    requester=msg.requester,
                    sender=self.node,
                    fail_response=True,
                    generated_cycle=self.now,  # the sharer-add stamp
                )
                self.memsys.send(self.node, ent.owner, fwd)
                self._maybe_reclaim_ownership(ent)
            else:
                answer = CoherenceMessage(
                    mtype=MessageType.DATA,
                    addr=msg.addr,
                    requester=msg.requester,
                    sender=self.node,
                    fail_response=True,
                    value=self.memsys.read(msg.addr),
                    generated_cycle=self.now,
                )
                self.memsys.send(
                    self.node, msg.requester, answer, data_packet=True
                )
            return
        self._start_txn(ent, msg)

    def _forward_loser(self, ent: DirEntry, msg: CoherenceMessage) -> None:
        """Forward a losing fail-fast GetX to the in-flight winner.

        The winner will answer with a shared copy after its commit (the
        paper's Step 3/4), so the loser becomes a sharer now.
        """
        assert ent.txn is not None
        self.fail_forwards += 1
        ent.txn.forwarded_losers.append(msg.requester)
        fwd = CoherenceMessage(
            mtype=MessageType.FWD_FAIL,
            addr=msg.addr,
            requester=msg.requester,
            sender=self.node,
        )
        self.memsys.send(self.node, ent.txn.winner, fwd)

    def _start_txn(self, ent: DirEntry, msg: CoherenceMessage) -> None:
        self.transactions_started += 1
        memsys = self.memsys
        pool = memsys.msg_pool
        winner = msg.requester
        txn_id = memsys.next_txn_id()
        now = self.now
        old_owner = ent.owner
        # every sharer except the winner gets an Inv, lowest core first
        # (the bit walk reproduces the old sorted-set iteration order)
        to_invalidate = ent.sharer_mask & ~(1 << winner)
        expected_mask = to_invalidate
        invs_sent = 0
        remaining = to_invalidate
        while remaining:
            low = remaining & -remaining
            core = low.bit_length() - 1
            remaining ^= low
            inv = pool.acquire(
                MessageType.INV,
                msg.addr,
                winner,
                sender=self.node,
                inv_target=core,
                inv_created_cycle=now,
                txn_id=txn_id,
            )
            memsys.send(self.node, core, inv)
            invs_sent += 1
        if old_owner is not None and old_owner != winner:
            fwd = CoherenceMessage(
                mtype=MessageType.FWD_GETX,
                addr=msg.addr,
                requester=winner,
                sender=self.node,
            )
            memsys.send(self.node, old_owner, fwd)
            expected_mask |= 1 << old_owner
        else:
            data = CoherenceMessage(
                mtype=MessageType.DATA_EXCL,
                addr=msg.addr,
                requester=winner,
                sender=self.node,
                exclusive=True,
            )
            memsys.send(self.node, winner, data, data_packet=True)
        ack_count = pool.acquire(
            MessageType.ACK_COUNT,
            msg.addr,
            winner,
            sender=self.node,
            ack_from=expected_mask,
            txn_id=txn_id,
            inv_created_cycle=now,  # doubles as the txn start stamp
        )
        memsys.send(self.node, winner, ack_count)
        ent.busy = True
        ent.txn = Transaction(
            txn_id=txn_id,
            addr=msg.addr,
            winner=winner,
            start=now,
            expected_mask=expected_mask,
            is_atomic=msg.is_atomic,
        )
        ent.owner = winner
        ent.sharer_mask = 0
        if msg.is_atomic:
            memsys.stats.txn_started(
                txn_id, msg.addr, winner, now, invs_sent
            )

    # ------------------------------------------------------------------
    # Unblock / queue draining
    # ------------------------------------------------------------------
    def _on_unblock(self, msg: CoherenceMessage) -> None:
        ent = self.entry(msg.addr)
        if ent.txn is None or msg.txn_id != ent.txn.txn_id:
            return
        ent.busy = False
        ent.txn = None
        self._drain(ent)

    def _drain(self, ent: DirEntry) -> None:
        """Serve queued GetS requests, then start the best queued GetX.

        With OCOR, both are served in packet-priority order (the RTR
        mapping), so the refetch of a nearly-sleeping spinner — and hence
        its subsequent SWAP — is expedited.
        """
        aging = self.memsys.config.ocor.aging_cycles

        def effective(key) -> tuple:
            # key = (-priority, arrival, seq); waiting time buys levels
            # so low-priority (wakeup) requests cannot starve
            neg_prio, arrival, seq = key
            if self.ocor_queue_ordering and aging > 0:
                neg_prio -= (self.now - arrival) // aging
            return (neg_prio, arrival, seq)

        while ent.queue and not ent.busy:
            gets = [
                (effective(key), i) for i, (key, m) in enumerate(ent.queue)
                if m.mtype is MessageType.GETS
            ]
            if gets:
                _, idx = min(gets)
                _, msg = ent.queue.pop(idx)
                self._serve_gets(ent, msg)
                continue
            best = min(
                range(len(ent.queue)),
                key=lambda i: effective(ent.queue[i][0]),
            )
            _, msg = ent.queue.pop(best)
            self._start_txn(ent, msg)

    def _enqueue(self, ent: DirEntry, msg: CoherenceMessage) -> None:
        priority = msg.priority if self.ocor_queue_ordering else 0
        key = (-priority, self.now, self._queue_seq)
        self._queue_seq += 1
        ent.queue.append((key, msg))

    # ------------------------------------------------------------------
    # iNPG early acks
    # ------------------------------------------------------------------
    def _on_early_ack(self, msg: CoherenceMessage) -> None:
        ent = self.entry(msg.addr)
        core = msg.inv_target
        if msg.stale:
            # The target kept a legitimately owned line; the ack only
            # served to release the big router's EI entry.
            return
        if (ent.sharer_mask >> core) & 1:
            # Prune only if the invalidation postdates the core's latest
            # sharer add — an older ack refers to a previous, already-dead
            # copy and must not untrack the current one.
            if msg.ack_processed_cycle > ent.last_add.get(core, -1):
                ent.sharer_mask &= ~(1 << core)
                self.memsys.stats.early_acks_consumed_before_txn += 1
        txn = ent.txn
        if txn is not None and (txn.expected_mask >> core) & 1:
            relay = self.memsys.msg_pool.acquire(
                MessageType.INV_ACK,
                msg.addr,
                txn.winner,
                sender=self.node,
                inv_target=core,
                inv_created_cycle=msg.inv_created_cycle,
                early=True,
                txn_id=txn.txn_id,
            )
            self.memsys.send(self.node, txn.winner, relay)
