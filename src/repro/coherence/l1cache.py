"""Private L1 cache controller (one per core).

Implements the core side of the directory MOESI protocol of the paper's
Figure 4:

* ``load`` — returns the line's value; misses issue GetS to the home node.
* ``rmw`` — atomic read-modify-write (the hardware behind SWAP,
  fetch-and-add, compare-and-swap).  Needs exclusive ownership: misses
  issue an *atomic* GetX; the controller then waits for the data response,
  the home's AckCount, and an InvAck from every core listed in it before
  committing.
* ``store`` — plain store (e.g. a lock release); same GetX path but not
  flagged atomic, so iNPG big routers leave it alone.

Value semantics: committed memory values live in the shared
``MemorySystem.values`` map.  Because a write only commits after every
other copy has been invalidated and acknowledged (the protocol's whole
point), reading that map at load/RMW completion time is coherent.

Fast-path representation (DESIGN.md §11): message handling dispatches
through a per-type bound-method table indexed by ``msg.tag`` (the old
per-call dict build was a top-5 hotspot); the pending-write ack ledger is
a pair of integer bitmasks (``expected_mask`` / ``acked_mask``), so the
commit test is one mask subtraction; the pending records are slotted; and
the event-loop callbacks are bound methods with arguments instead of
per-operation closures.

Protocol family (DESIGN.md §12): the dispatch table, the per-state
permission tuples (``_can_read`` / ``_can_write`` / ``_owns``, indexed
by ``L1State.idx``) and the variant states (``_fwd_gets_state``,
``_fail_share_state``, ``_excl_fill_state``) are compiled onto each
instance from the active :class:`~repro.coherence.protocol.ProtocolSpec`
transition table at construction time — the handlers below are the
lowered *mechanism* (message plumbing, ack ledgers, timing) while the
per-protocol *policy* lives declaratively in ``protocol.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..sim import Component, Simulator
from .messages import (
    CoherenceMessage,
    MessageType,
    N_MESSAGE_TYPES,
    mask_to_set,
)
from .states import L1State

if TYPE_CHECKING:  # pragma: no cover
    from .memsystem import MemorySystem

#: RMW operator: old value -> (new value to store, value returned to core)
RmwOp = Callable[[int], Tuple[int, int]]
LoadCallback = Callable[[int], None]


class _PendingLoad:
    __slots__ = ("callbacks", "drop_on_fill")

    def __init__(self, callbacks: List[LoadCallback]):
        self.callbacks = callbacks
        #: an Inv arrived while the GetS was outstanding; drop the stale
        #: fill.
        self.drop_on_fill = False


class _PendingWrite:
    __slots__ = ("op", "callback", "is_atomic", "fails_if", "ll_sc",
                 "priority", "have_data", "expected_mask", "acked_mask",
                 "txn_id", "txn_start", "early_acks_used", "fail_requests",
                 "sent_cycle", "local_inv_cycle")

    def __init__(self, op: RmwOp, callback: LoadCallback, is_atomic: bool,
                 fails_if: Optional[Callable[[int], bool]], ll_sc: bool,
                 priority: int):
        self.op = op
        self.callback = callback
        self.is_atomic = is_atomic
        #: when set, a losing request observing a value for which this
        #: returns True completes as a failed RMW (no write) with that
        #: value.
        self.fails_if = fails_if
        #: LL/SC-style RMW (Alpha fetch&inc / swap loops): a losing request
        #: retries its GetX until it wins and commits; it never fails.
        self.ll_sc = ll_sc
        self.priority = priority
        self.have_data = False
        #: bitmask of cores whose InvAcks must be collected; ``None``
        #: until the home's AckCount arrives.
        self.expected_mask: Optional[int] = None
        #: bitmask of cores whose InvAcks have arrived.
        self.acked_mask = 0
        self.txn_id = 0
        self.txn_start = -1
        self.early_acks_used = 0
        #: losing fail-fast requesters forwarded to us while we were
        #: winning; answered right after our commit (paper Step 4).
        self.fail_requests: List[int] = []
        #: cycle our current GetX (initial or retry) was sent.
        self.sent_cycle = -1
        #: cycle of the last invalidation processed locally while this
        #: write was outstanding.  A fail-answer may only install its copy
        #: when no invalidation has been processed since the GetX that
        #: produced it was sent — otherwise the directory may already have
        #: pruned us.
        self.local_inv_cycle = -1

    @property
    def expected(self) -> Optional[set]:
        """Set view of :attr:`expected_mask` (tests/diagnostics)."""
        if self.expected_mask is None:
            return None
        return mask_to_set(self.expected_mask)

    @property
    def acked(self) -> set:
        """Set view of :attr:`acked_mask`."""
        return mask_to_set(self.acked_mask)


#: msg.tag -> L1Cache method name (None == protocol error)
_HANDLER_NAMES: List[Optional[str]] = [None] * N_MESSAGE_TYPES
_HANDLER_NAMES[MessageType.DATA.tag] = "_on_data"
_HANDLER_NAMES[MessageType.DATA_EXCL.tag] = "_on_data_excl"
_HANDLER_NAMES[MessageType.ACK_COUNT.tag] = "_on_ack_count"
_HANDLER_NAMES[MessageType.INV.tag] = "_on_inv"
_HANDLER_NAMES[MessageType.INV_ACK.tag] = "_on_inv_ack"
_HANDLER_NAMES[MessageType.FWD_GETS.tag] = "_on_fwd_gets"
_HANDLER_NAMES[MessageType.FWD_GETX.tag] = "_on_fwd_getx"
_HANDLER_NAMES[MessageType.FWD_FAIL.tag] = "_on_fwd_fail"


class L1Cache(Component):
    """Private L1 data cache controller at ``node``."""

    def __init__(self, sim: Simulator, node: int, memsys: "MemorySystem"):
        super().__init__(sim, f"l1.{node}")
        self.node = node
        self.memsys = memsys
        self.lines: Dict[int, L1State] = {}
        self._pending_loads: Dict[int, _PendingLoad] = {}
        self._pending_writes: Dict[int, _PendingWrite] = {}
        #: InvAcks that arrived before this core knew it had won (no
        #: AckCount yet): {addr: {core: (created, early, txn_id)}},
        #: consumed at AckCount time if the transaction ids match.
        self._stray_acks: Dict[int, Dict[int, Tuple[int, bool, int]]] = {}
        #: LL-monitor / MWAIT-style invalidation watchers per address.
        self._monitors: Dict[int, List[Callable[[], None]]] = {}
        #: LRU stamps for the optional finite-capacity model.
        self._last_use: Dict[int, int] = {}
        self._use_seq = 0
        self.evictions = 0
        self.loads = 0
        self.load_hits = 0
        self.rmws = 0
        self.rmw_hits = 0
        self._l1_latency = memsys.config.cache.l1_latency
        # lower the active protocol's transition table onto this
        # instance: sets self.protocol, the msg.tag-indexed _dispatch
        # tuple, _can_read/_can_write/_owns and the variant states.
        memsys.protocol.compile_l1(self)

    # ------------------------------------------------------------------
    # Core-facing operations
    # ------------------------------------------------------------------
    def state_of(self, addr: int) -> L1State:
        return self.lines.get(addr, L1State.INVALID)

    def load(self, addr: int, callback: LoadCallback, priority: int = 0) -> None:
        """Read ``addr``; ``callback(value)`` fires when the load completes."""
        self.loads += 1
        latency = self._l1_latency
        if self._can_read[self.state_of(addr).idx]:
            self.load_hits += 1
            self._touch(addr)
            self.after(latency, self._load_hit_done, addr, callback)
            return
        pending = self._pending_loads.get(addr)
        if pending is not None:
            pending.callbacks.append(callback)
            return
        self._pending_loads[addr] = _PendingLoad(callbacks=[callback])
        self.after(latency, self._send_gets, addr, priority)

    def _load_hit_done(self, addr: int, callback: LoadCallback) -> None:
        callback(self.memsys.read(addr))

    def _send_gets(self, addr: int, priority: int) -> None:
        self.memsys.send_to_home(
            self.node, MessageType.GETS, addr, priority=priority
        )

    # ------------------------------------------------------------------
    # Optional finite capacity (CacheConfig.model_capacity)
    # ------------------------------------------------------------------
    def _touch(self, addr: int) -> None:
        self._use_seq += 1
        self._last_use[addr] = self._use_seq

    def _set_index(self, addr: int) -> int:
        cache = self.memsys.config.cache
        return (addr // cache.block_bytes) % cache.l1_num_sets

    def _install(self, addr: int, state: L1State) -> None:
        """Install a line, evicting an LRU victim if the set is full."""
        cache = self.memsys.config.cache
        self.lines[addr] = state
        self._touch(addr)
        if not cache.model_capacity:
            return
        target_set = self._set_index(addr)
        resident = [
            a for a, s in self.lines.items()
            if s.valid and a != addr and self._set_index(a) == target_set
        ]
        if len(resident) < cache.l1_assoc:
            return
        # evict the least recently used victim that has no pending op
        candidates = [
            a for a in resident
            if a not in self._pending_writes and a not in self._pending_loads
        ]
        if not candidates:
            return
        victim = min(candidates, key=lambda a: self._last_use.get(a, 0))
        self._evict(victim)

    def _evict(self, addr: int) -> None:
        state = self.lines.get(addr, L1State.INVALID)
        if not state.valid:
            return
        self.evictions += 1
        self.lines[addr] = L1State.INVALID
        self._fire_monitors(addr)
        mtype = (
            MessageType.PUT_M if self._owns[state.idx] else MessageType.PUT_S
        )
        put = CoherenceMessage(
            mtype=mtype,
            addr=addr,
            requester=self.node,
            sender=self.node,
            ack_processed_cycle=self.now,
        )
        self.memsys.send(
            self.node, self.memsys.home_of(addr), put,
            data_packet=mtype is MessageType.PUT_M,
        )

    def monitor_invalidation(self, addr: int, callback: Callable[[], None]) -> None:
        """Fire ``callback`` when our copy of ``addr`` is invalidated.

        This is the hardware line monitor behind LL/SC spinning and
        MONITOR/MWAIT: a waiter arms the monitor on its valid copy and
        wakes when coherence takes the line away.  If the line is already
        invalid the callback fires on the next cycle.
        """
        if not self.state_of(addr).valid:
            self.after(1, callback)
            return
        self._monitors.setdefault(addr, []).append(callback)

    def _fire_monitors(self, addr: int) -> None:
        watchers = self._monitors.pop(addr, None)
        if not watchers:
            return
        for callback in watchers:
            self.after(1, callback)

    def rmw(
        self,
        addr: int,
        op: RmwOp,
        callback: LoadCallback,
        priority: int = 0,
        is_atomic: bool = True,
        fails_if: Optional[Callable[[int], bool]] = None,
        ll_sc: bool = False,
    ) -> None:
        """Atomically apply ``op`` to ``addr``; ``callback(returned)``.

        ``is_atomic=False`` marks an ordinary store expressed as an RMW
        (e.g. a ticket-lock release that rewrites one half of the lock
        word); iNPG big routers leave non-atomic requests alone.

        ``fails_if`` enables fail-fast semantics for competing SWAPs: a
        request losing the home-node race is forwarded to the winner and
        answered with a shared copy; if that copy's value satisfies
        ``fails_if`` the RMW completes *without writing*, returning the
        observed value — the paper's Figure 4 losing-SWAP behaviour.

        ``ll_sc`` marks an Alpha-style load-locked/store-conditional loop
        (fetch-and-increment, unconditional swap): a losing request simply
        retries until it wins a transaction and commits.
        """
        self._write(
            addr, op, callback, is_atomic=is_atomic, priority=priority,
            fails_if=fails_if, ll_sc=ll_sc,
        )

    def store(
        self, addr: int, value: int, callback: LoadCallback, priority: int = 0
    ) -> None:
        """Plain store of ``value``; ``callback(old value)`` on commit."""
        self._write(
            addr,
            lambda old: (value, old),
            callback,
            is_atomic=False,
            priority=priority,
        )

    def _write(
        self,
        addr: int,
        op: RmwOp,
        callback: LoadCallback,
        is_atomic: bool,
        priority: int,
        fails_if: Optional[Callable[[int], bool]] = None,
        ll_sc: bool = False,
    ) -> None:
        self.rmws += 1
        if addr in self._pending_writes:
            raise RuntimeError(
                f"core {self.node}: overlapping writes to {addr:#x} unsupported"
            )
        latency = self._l1_latency
        if self._can_write[self.state_of(addr).idx]:
            # a write hit always lands in Modified — this is also the
            # MESI silent E -> M upgrade (no GetX on the first write)
            self.rmw_hits += 1
            self.lines[addr] = L1State.MODIFIED
            self._touch(addr)
            self.after(latency, self._commit_hit, addr, op, callback)
            return
        pending = _PendingWrite(
            op=op, callback=callback, is_atomic=is_atomic,
            fails_if=fails_if, ll_sc=ll_sc, priority=priority,
        )
        self._pending_writes[addr] = pending
        self.after(latency, self._send_getx, addr, pending)

    def _commit_hit(self, addr: int, op: RmwOp,
                    callback: LoadCallback) -> None:
        returned = self.memsys.apply_rmw(addr, op)
        callback(returned)

    def _send_getx(self, addr: int, pending: _PendingWrite) -> None:
        pending.sent_cycle = self.now
        self.memsys.send_to_home(
            self.node,
            MessageType.GETX,
            addr,
            priority=pending.priority,
            is_atomic=pending.is_atomic,
            fails_fast=pending.fails_if is not None or pending.ll_sc,
            fails_if=pending.fails_if,
            holds_copy=self.state_of(addr).valid,
        )

    # ------------------------------------------------------------------
    # Network-facing message handling
    # ------------------------------------------------------------------
    def handle(self, msg: CoherenceMessage) -> None:
        handler = self._dispatch[msg.tag]
        if handler is None:
            raise RuntimeError(f"L1 {self.node} cannot handle {msg}")
        handler(msg)

    # -- load fill / fail response ---------------------------------------
    def _on_data(self, msg: CoherenceMessage) -> None:
        if msg.fail_response:
            self._on_fail_data(msg)
            return
        pending = self._pending_loads.pop(msg.addr, None)
        if pending is None:
            return
        if not pending.drop_on_fill:
            # a Data flagged exclusive is the MESI clean-miss grant and
            # installs E; plain fills install Shared in every protocol
            self._install(
                msg.addr,
                self._excl_fill_state if msg.exclusive else L1State.SHARED,
            )
        value = self.memsys.read(msg.addr)
        for cb in pending.callbacks:
            cb(value)

    def _on_fail_data(self, msg: CoherenceMessage) -> None:
        """A value-carrying NACK answering our losing fail-fast RMW.

        The answer never installs a copy — a loser that wants to observe
        the line again re-fetches it with a tracked GetS (the retry loop's
        LL), so directory sharer state can never diverge from L1 state.
        """
        pending = self._pending_writes.get(msg.addr)
        if pending is None:
            return
        # The home registered us as a sharer at ``generated_cycle`` before
        # sending/relaying this copy.  Install exactly when our last
        # locally-processed invalidation predates that add — the precise
        # complement of the home's early-ack prune rule
        # (``ack_processed_cycle > last_add``), so the directory's view
        # and our line state can never diverge.
        if not msg.copyless and pending.local_inv_cycle < msg.generated_cycle:
            self._install(msg.addr, L1State.SHARED)
        if pending.ll_sc or pending.fails_if is None or not pending.fails_if(
            msg.value
        ):
            # LL/SC loops always retry; a conditional SWAP retries when the
            # observed value would NOT make it a no-op (e.g. the lock was
            # freed while the answer travelled).  Retries back off by one
            # spin interval to avoid live-storming the home node.
            retry_gap = self.memsys.config.spin.spin_interval
            self.after(retry_gap, self._retry_getx, msg.addr, pending)
            return
        del self._pending_writes[msg.addr]
        # forwarded losers that piled onto this pending (e.g. sent while a
        # previous transaction's FwdFail was still in flight) must still be
        # answered, or they starve
        for loser in pending.fail_requests:
            self._answer_fail_request(msg.addr, loser)
        pending.callback(msg.value)

    def _retry_getx(self, addr: int, pending: _PendingWrite) -> None:
        if addr in self._pending_writes:
            pending.sent_cycle = self.now
            self.memsys.send_to_home(
                self.node,
                MessageType.GETX,
                addr,
                priority=pending.priority,
                is_atomic=pending.is_atomic,
                fails_fast=True,
                fails_if=pending.fails_if,
                holds_copy=self.state_of(addr).valid,
            )

    # -- exclusive data / ack collection ---------------------------------
    def _on_data_excl(self, msg: CoherenceMessage) -> None:
        pending = self._pending_writes.get(msg.addr)
        if pending is None:
            return
        pending.have_data = True
        if msg.counts_as_ack_from is not None:
            pending.acked_mask |= 1 << msg.counts_as_ack_from
        self._maybe_commit(msg.addr)

    def _on_ack_count(self, msg: CoherenceMessage) -> None:
        pending = self._pending_writes.get(msg.addr)
        if pending is None:
            return
        expected_mask = msg.ack_from
        pending.expected_mask = expected_mask
        pending.txn_id = msg.txn_id
        pending.txn_start = msg.inv_created_cycle
        stray = self._stray_acks.pop(msg.addr, None)
        if stray:
            for core, (created, early, txn_id) in stray.items():
                if not (expected_mask >> core) & 1 or txn_id != pending.txn_id:
                    continue
                pending.acked_mask |= 1 << core
                if early:
                    # RTT already recorded at the generating big router
                    pending.early_acks_used += 1
                else:
                    self.memsys.stats.inv_completed(
                        core, created, self.now, early=False
                    )
        self._maybe_commit(msg.addr)

    def _on_inv_ack(self, msg: CoherenceMessage) -> None:
        pending = self._pending_writes.get(msg.addr)
        if pending is None or pending.expected_mask is None:
            # The winner doesn't know its expected set yet (AckCount in
            # flight) -- buffer the ack by invalidated-core id.
            self._stray_acks.setdefault(msg.addr, {})[msg.inv_target] = (
                msg.inv_created_cycle,
                msg.early,
                msg.txn_id,
            )
            return
        if msg.txn_id != pending.txn_id:
            return
        target_bit = 1 << msg.inv_target
        if pending.expected_mask & target_bit and not (
            pending.acked_mask & target_bit
        ):
            pending.acked_mask |= target_bit
            if msg.early:
                # RTT already recorded at the generating big router
                pending.early_acks_used += 1
            else:
                self.memsys.stats.inv_completed(
                    msg.inv_target, msg.inv_created_cycle, self.now,
                    early=False,
                )
        self._maybe_commit(msg.addr)

    def _maybe_commit(self, addr: int) -> None:
        pending = self._pending_writes.get(addr)
        if pending is None or not pending.have_data or (
            pending.expected_mask is None
        ):
            return
        if pending.expected_mask & ~pending.acked_mask:
            return
        del self._pending_writes[addr]
        self._install(addr, L1State.MODIFIED)
        returned = self.memsys.apply_rmw(addr, pending.op)
        self.memsys.stats.txn_committed(
            pending.txn_id, self.now, pending.early_acks_used
        )
        self.memsys.send_to_home(
            self.node, MessageType.UNBLOCK, addr, txn_id=pending.txn_id
        )
        for loser in pending.fail_requests:
            self._answer_fail_request(addr, loser)
        pending.callback(returned)

    # -- invalidation -----------------------------------------------------
    def _on_inv(self, msg: CoherenceMessage) -> None:
        """Invalidate our copy and acknowledge.

        The ack travels to the transaction winner (``msg.requester``) in the
        baseline; an early invalidation from a big router is acknowledged
        back to that router, which relays it to the home node.

        An *early* invalidation is only meaningful for the stale copy the
        target held when its GetX was stopped.  If the target has since
        gained ownership (its converted request won at the home node before
        the Inv packet arrived), the line is kept and the ack is marked
        stale so it only releases the big router's EI entry.
        """
        stale = False
        if msg.early and self._owns[self.state_of(msg.addr).idx]:
            stale = True
        else:
            self.lines[msg.addr] = L1State.INVALID
            self._fire_monitors(msg.addr)
            pending_load = self._pending_loads.get(msg.addr)
            if pending_load is not None:
                pending_load.drop_on_fill = True
            pending_write = self._pending_writes.get(msg.addr)
            if pending_write is not None:
                pending_write.local_inv_cycle = self.now
        ack = self.memsys.msg_pool.acquire(
            MessageType.INV_ACK,
            msg.addr,
            msg.requester,
            sender=self.node,
            inv_target=self.node,
            inv_created_cycle=msg.inv_created_cycle,
            early=msg.early,
            via_router=msg.via_router,
            txn_id=msg.txn_id,
            stale=stale,
            ack_processed_cycle=self.now,
        )
        if msg.early and msg.via_router is not None:
            self.memsys.send(self.node, msg.via_router, ack)
        else:
            self.memsys.send(self.node, msg.requester, ack)

    # -- losing fail-fast RMWs forwarded by the home node -----------------
    def _on_fwd_fail(self, msg: CoherenceMessage) -> None:
        """A loser's SWAP was forwarded to us (the winner).

        If our own RMW transaction is still collecting acks, the answer
        waits for our commit (the paper's winner enters the CS and *then*
        sends valid copies to the losers); otherwise answer immediately.
        """
        pending = self._pending_writes.get(msg.addr)
        if pending is not None:
            pending.fail_requests.append(msg.requester)
            return
        self._answer_fail_request(msg.addr, msg.requester)

    def _answer_fail_request(self, addr: int, loser: int) -> None:
        """Answer a forwarded losing RMW with a copy of the block.

        The answer routes via the home node, which registers the loser as
        a sharer and relays the copy.  Registration and relay leave the
        home on the same path as any future invalidation of that copy, so
        the loser can never end up holding an untracked line.

        Sharing a copy demotes our writable line (to Owned under MOESI,
        to Shared under MSI/MESI where the home reclaims ownership) —
        otherwise our next (release) store would commit silently while
        sharers exist.
        """
        state = self.state_of(addr)
        if self._can_write[state.idx]:
            self.lines[addr] = self._fail_share_state
        answer = CoherenceMessage(
            mtype=MessageType.DATA,
            addr=addr,
            requester=loser,
            sender=self.node,
            fail_response=True,
            dest_is_home=True,
            value=self.memsys.read(addr),
            generated_cycle=self.now,
        )
        self.memsys.send(self.node, self.memsys.home_of(addr), answer)

    # -- ownership transfer ----------------------------------------------
    def _on_fwd_gets(self, msg: CoherenceMessage) -> None:
        """Supply a shared copy to a requester on the home node's behalf.

        ``fail_response`` marks the copy as the answer to a doomed swap
        attempt (the requester's pending RMW completes as failed); the
        home's sharer-add stamp travels with it so the requester's
        install decision matches the directory's prune rule.
        """
        state = self.state_of(msg.addr)
        if state.valid:
            self.lines[msg.addr] = self._fwd_gets_state
        data = CoherenceMessage(
            mtype=MessageType.DATA,
            addr=msg.addr,
            requester=msg.requester,
            sender=self.node,
            fail_response=msg.fail_response,
            value=self.memsys.read(msg.addr),
            generated_cycle=msg.generated_cycle,
        )
        self.memsys.send(self.node, msg.requester, data, data_packet=True)

    def _on_fwd_getx(self, msg: CoherenceMessage) -> None:
        """Hand exclusive ownership to a new winner; our copy dies.

        If our copy was already (early-)invalidated we still respond,
        sourcing the committed value — the directory believed us owner and
        the winner is waiting on this response.
        """
        self.lines[msg.addr] = L1State.INVALID
        self._fire_monitors(msg.addr)
        pending_write = self._pending_writes.get(msg.addr)
        if pending_write is not None:
            pending_write.local_inv_cycle = self.now
        data = CoherenceMessage(
            mtype=MessageType.DATA_EXCL,
            addr=msg.addr,
            requester=msg.requester,
            sender=self.node,
            exclusive=True,
            counts_as_ack_from=self.node,
        )
        self.memsys.send(self.node, msg.requester, data, data_packet=True)
