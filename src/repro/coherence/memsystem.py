"""Memory system: L1 caches + directories + NoC + committed value store.

One tile per mesh node: a core with its private L1, and a bank of the
chip-wide shared L2 with its slice of the coherence directory (Figure 3).
Blocks are interleaved across banks, so every address has a *home node*.

The class also owns the committed value store.  A write (atomic RMW or
plain store) mutates it only at commit time — after the protocol has
invalidated and collected acknowledgements from every other copy — so a
read through a valid L1 line always observes a coherent value.

Fast-path representation (DESIGN.md §11): routing/priority/tracing
classification in :meth:`MemorySystem.send` and the per-node delivery
endpoints index tag-keyed boolean tuples with ``msg.tag`` instead of
hashing Enum members into frozensets; endpoints release pool-managed
control messages (Inv / InvAck / AckCount) back to :attr:`msg_pool` after
their handler consumed them — recycling is disabled whenever fault
injection is active, because the ``duplicate`` fault aliases one payload
across two packets.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, TYPE_CHECKING

from ..config import SystemConfig
from ..noc import Network, Packet
from ..sim import Component, Simulator
from ..stats.coherence_stats import CoherenceStats
from .directory import DirectoryController
from .l1cache import L1Cache, LoadCallback, RmwOp
from .messages import (
    CoherenceMessage,
    MessagePool,
    MessageType,
    VALUE_BY_TAG,
    _tag_flags,
)
from .protocol import get_protocol

if TYPE_CHECKING:  # pragma: no cover
    pass

#: message types handled by the directory at the destination node
#: (tag-indexed; the frozenset membership test was a send/deliver hotspot)
_IS_DIR = _tag_flags(
    MessageType.GETS,
    MessageType.GETX,
    MessageType.UNBLOCK,
    MessageType.PUT_S,
    MessageType.PUT_M,
)

#: request-class messages carry their own (OCOR) priority; everything else
#: is response-class and must outrank requests in priority arbitration so
#: in-flight transactions cannot be starved by request storms.
_IS_REQUEST = _tag_flags(MessageType.GETS, MessageType.GETX)
RESPONSE_PRIORITY = 100

#: the lock-critical message classes worth a trace record (the ones iNPG
#: acts on); tracing every GetS/Data would swamp the ring buffer.
_IS_TRACED = _tag_flags(
    MessageType.GETX, MessageType.INV, MessageType.INV_ACK
)

#: types that may only reach the directory when flagged ``dest_is_home``
#: (big-router-forwarded early acks, winner fail answers in transit)
_IS_HOMEBOUND = _tag_flags(MessageType.INV_ACK, MessageType.DATA)

#: short-lived control messages recycled through the pool: handled
#: synchronously at their delivery endpoint and never retained.
_IS_POOLABLE = _tag_flags(
    MessageType.INV, MessageType.INV_ACK, MessageType.ACK_COUNT
)


class MemorySystem(Component):
    """The full cache-coherent memory hierarchy of the many-core."""

    #: trace emitter; rebound by ``repro.obs.Observation.attach``.
    _trace = None

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        network: Network,
        model_dram: bool = True,
    ):
        super().__init__(sim, "memsystem")
        self.config = config
        self.network = network
        #: the active protocol's transition tables; resolved before the
        #: L1/directory controllers, whose constructors compile it.
        self.protocol = get_protocol(config.protocol)
        self.stats = CoherenceStats()
        self.values: Dict[int, int] = {}
        #: free list for the Inv/InvAck/AckCount bursts; endpoints recycle
        #: into it unless ``_recycle`` was cleared (fault injection).
        self.msg_pool = MessagePool()
        self._recycle = True
        #: per-run transaction ids: two back-to-back in-process runs see
        #: identical id streams (a process-global counter would not)
        self._txn_ids = itertools.count(1)
        #: off-chip path; None disables cold-miss DRAM modelling
        from ..cpu.memory_model import MemorySubsystem

        self.dram = (
            MemorySubsystem(sim, config.noc, config.memory)
            if model_dram
            else None
        )
        self._ctrl_flits = config.noc.ctrl_packet_flits
        self._data_flits = config.noc.data_packet_flits
        num_nodes = network.mesh.num_nodes
        self.l1s: Dict[int, L1Cache] = {
            n: L1Cache(sim, n, self) for n in range(num_nodes)
        }
        self.dirs: Dict[int, DirectoryController] = {
            n: DirectoryController(sim, n, self) for n in range(num_nodes)
        }
        for node in range(num_nodes):
            network.register_endpoint(node, self._make_endpoint(node))

    def next_txn_id(self) -> int:
        """Fresh directory transaction id, scoped to this run."""
        return next(self._txn_ids)

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def home_of(self, addr: int) -> int:
        """Home node (L2 bank / directory slice) of ``addr``."""
        block = addr // self.config.cache.block_bytes
        return block % self.network.mesh.num_nodes

    def addr_for_home(self, home_node: int, index: int = 0) -> int:
        """An address (block-aligned) whose home is ``home_node``.

        ``index`` selects distinct blocks with the same home.
        """
        num_nodes = self.network.mesh.num_nodes
        block = index * num_nodes + home_node
        return block * self.config.cache.block_bytes

    # ------------------------------------------------------------------
    # Committed values
    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        return self.values.get(addr, 0)

    def apply_rmw(self, addr: int, op: RmwOp) -> int:
        """Apply ``op`` atomically; returns the op's return value."""
        new_value, returned = op(self.values.get(addr, 0))
        self.values[addr] = new_value
        return returned

    # ------------------------------------------------------------------
    # Core-facing operations
    # ------------------------------------------------------------------
    def load(
        self, core: int, addr: int, callback: LoadCallback, priority: int = 0
    ) -> None:
        self.l1s[core].load(addr, callback, priority=priority)

    def rmw(
        self,
        core: int,
        addr: int,
        op: RmwOp,
        callback: LoadCallback,
        priority: int = 0,
        is_atomic: bool = True,
        fails_if=None,
        ll_sc: bool = False,
    ) -> None:
        self.l1s[core].rmw(
            addr, op, callback, priority=priority, is_atomic=is_atomic,
            fails_if=fails_if, ll_sc=ll_sc,
        )

    def store(
        self,
        core: int,
        addr: int,
        value: int,
        callback: LoadCallback,
        priority: int = 0,
    ) -> None:
        self.l1s[core].store(addr, value, callback, priority=priority)

    def monitor_invalidation(self, core: int, addr: int, callback) -> None:
        """Arm ``core``'s L1 line monitor on ``addr`` (MWAIT-style)."""
        self.l1s[core].monitor_invalidation(addr, callback)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send_to_home(
        self,
        src: int,
        mtype: MessageType,
        addr: int,
        priority: int = 0,
        is_atomic: bool = False,
        txn_id: int = 0,
        fails_fast: bool = False,
        fails_if=None,
        holds_copy: bool = False,
    ) -> None:
        """Build and send a request to the home node of ``addr``."""
        msg = CoherenceMessage(
            mtype=mtype,
            addr=addr,
            requester=src,
            sender=src,
            is_atomic=is_atomic,
            fails_fast=fails_fast,
            fails_if=fails_if,
            holds_copy=holds_copy,
            txn_id=txn_id,
            priority=priority,
        )
        self.send(src, self.home_of(addr), msg)

    def send(
        self,
        src: int,
        dst: int,
        msg: CoherenceMessage,
        data_packet: bool = False,
    ) -> None:
        """Inject ``msg`` into the NoC."""
        tag = msg.tag
        self.stats.count(VALUE_BY_TAG[tag])
        size = self._data_flits if data_packet else self._ctrl_flits
        priority = msg.priority if _IS_REQUEST[tag] else RESPONSE_PRIORITY
        tr = self._trace
        if tr is not None and _IS_TRACED[tag]:
            tr(f"core/{src}", "coh.send", mtype=msg.mtype.value, dst=dst,
               addr=msg.addr, requester=msg.requester)
        self.network.send(src, dst, msg, size_flits=size, priority=priority)

    def _make_endpoint(self, node: int) -> Callable[[Packet], None]:
        dir_handle = self.dirs[node].handle
        l1_handle = self.l1s[node].handle
        is_dir = _IS_DIR
        is_homebound = _IS_HOMEBOUND
        is_traced = _IS_TRACED
        is_poolable = _IS_POOLABLE
        release = self.msg_pool.release

        def endpoint(packet: Packet) -> None:
            msg = packet.payload
            if msg.__class__ is not CoherenceMessage and not isinstance(
                msg, CoherenceMessage
            ):
                raise RuntimeError(f"unexpected payload at node {node}: {msg!r}")
            tag = msg.tag
            tr = self._trace
            if tr is not None and is_traced[tag]:
                tr(f"core/{node}", "coh.recv", mtype=msg.mtype.value,
                   src=packet.src, addr=msg.addr, requester=msg.requester)
            if is_dir[tag] or (is_homebound[tag] and msg.dest_is_home):
                # requests/writebacks, plus big-router-forwarded early
                # acks and winner fail answers in transit to the directory
                dir_handle(msg)
            else:
                l1_handle(msg)
            if is_poolable[tag] and self._recycle:
                release(msg)

        return endpoint
