"""Memory system: L1 caches + directories + NoC + committed value store.

One tile per mesh node: a core with its private L1, and a bank of the
chip-wide shared L2 with its slice of the coherence directory (Figure 3).
Blocks are interleaved across banks, so every address has a *home node*.

The class also owns the committed value store.  A write (atomic RMW or
plain store) mutates it only at commit time — after the protocol has
invalidated and collected acknowledgements from every other copy — so a
read through a valid L1 line always observes a coherent value.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, TYPE_CHECKING

from ..config import SystemConfig
from ..noc import Network, Packet
from ..sim import Component, Simulator
from ..stats.coherence_stats import CoherenceStats
from .directory import DirectoryController
from .l1cache import L1Cache, LoadCallback, RmwOp
from .messages import CoherenceMessage, MessageType

if TYPE_CHECKING:  # pragma: no cover
    pass

#: message types handled by the directory at the destination node
_DIR_TYPES = frozenset(
    {
        MessageType.GETS,
        MessageType.GETX,
        MessageType.UNBLOCK,
        MessageType.PUT_S,
        MessageType.PUT_M,
    }
)

#: request-class messages carry their own (OCOR) priority; everything else
#: is response-class and must outrank requests in priority arbitration so
#: in-flight transactions cannot be starved by request storms.
_REQUEST_TYPES = frozenset({MessageType.GETS, MessageType.GETX})
RESPONSE_PRIORITY = 100

#: the lock-critical message classes worth a trace record (the ones iNPG
#: acts on); tracing every GetS/Data would swamp the ring buffer.
_TRACED_TYPES = frozenset(
    {MessageType.GETX, MessageType.INV, MessageType.INV_ACK}
)


class MemorySystem(Component):
    """The full cache-coherent memory hierarchy of the many-core."""

    #: trace emitter; rebound by ``repro.obs.Observation.attach``.
    _trace = None

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        network: Network,
        model_dram: bool = True,
    ):
        super().__init__(sim, "memsystem")
        self.config = config
        self.network = network
        self.stats = CoherenceStats()
        self.values: Dict[int, int] = {}
        #: off-chip path; None disables cold-miss DRAM modelling
        from ..cpu.memory_model import MemorySubsystem

        self.dram = (
            MemorySubsystem(sim, config.noc, config.memory)
            if model_dram
            else None
        )
        num_nodes = network.mesh.num_nodes
        self.l1s: Dict[int, L1Cache] = {
            n: L1Cache(sim, n, self) for n in range(num_nodes)
        }
        self.dirs: Dict[int, DirectoryController] = {
            n: DirectoryController(sim, n, self) for n in range(num_nodes)
        }
        for node in range(num_nodes):
            network.register_endpoint(node, self._make_endpoint(node))

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def home_of(self, addr: int) -> int:
        """Home node (L2 bank / directory slice) of ``addr``."""
        block = addr // self.config.cache.block_bytes
        return block % self.network.mesh.num_nodes

    def addr_for_home(self, home_node: int, index: int = 0) -> int:
        """An address (block-aligned) whose home is ``home_node``.

        ``index`` selects distinct blocks with the same home.
        """
        num_nodes = self.network.mesh.num_nodes
        block = index * num_nodes + home_node
        return block * self.config.cache.block_bytes

    # ------------------------------------------------------------------
    # Committed values
    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        return self.values.get(addr, 0)

    def apply_rmw(self, addr: int, op: RmwOp) -> int:
        """Apply ``op`` atomically; returns the op's return value."""
        new_value, returned = op(self.values.get(addr, 0))
        self.values[addr] = new_value
        return returned

    # ------------------------------------------------------------------
    # Core-facing operations
    # ------------------------------------------------------------------
    def load(
        self, core: int, addr: int, callback: LoadCallback, priority: int = 0
    ) -> None:
        self.l1s[core].load(addr, callback, priority=priority)

    def rmw(
        self,
        core: int,
        addr: int,
        op: RmwOp,
        callback: LoadCallback,
        priority: int = 0,
        is_atomic: bool = True,
        fails_if=None,
        ll_sc: bool = False,
    ) -> None:
        self.l1s[core].rmw(
            addr, op, callback, priority=priority, is_atomic=is_atomic,
            fails_if=fails_if, ll_sc=ll_sc,
        )

    def store(
        self,
        core: int,
        addr: int,
        value: int,
        callback: LoadCallback,
        priority: int = 0,
    ) -> None:
        self.l1s[core].store(addr, value, callback, priority=priority)

    def monitor_invalidation(self, core: int, addr: int, callback) -> None:
        """Arm ``core``'s L1 line monitor on ``addr`` (MWAIT-style)."""
        self.l1s[core].monitor_invalidation(addr, callback)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send_to_home(
        self,
        src: int,
        mtype: MessageType,
        addr: int,
        priority: int = 0,
        is_atomic: bool = False,
        txn_id: int = 0,
        fails_fast: bool = False,
        fails_if=None,
        holds_copy: bool = False,
    ) -> None:
        """Build and send a request to the home node of ``addr``."""
        msg = CoherenceMessage(
            mtype=mtype,
            addr=addr,
            requester=src,
            sender=src,
            is_atomic=is_atomic,
            fails_fast=fails_fast,
            fails_if=fails_if,
            holds_copy=holds_copy,
            txn_id=txn_id,
            priority=priority,
        )
        self.send(src, self.home_of(addr), msg)

    def send(
        self,
        src: int,
        dst: int,
        msg: CoherenceMessage,
        data_packet: bool = False,
    ) -> None:
        """Inject ``msg`` into the NoC."""
        self.stats.count(msg.mtype.value)
        size = (
            self.config.noc.data_packet_flits
            if data_packet
            else self.config.noc.ctrl_packet_flits
        )
        priority = (
            msg.priority if msg.mtype in _REQUEST_TYPES else RESPONSE_PRIORITY
        )
        tr = self._trace
        if tr is not None and msg.mtype in _TRACED_TYPES:
            tr(f"core/{src}", "coh.send", mtype=msg.mtype.value, dst=dst,
               addr=msg.addr, requester=msg.requester)
        self.network.send(src, dst, msg, size_flits=size, priority=priority)

    def _make_endpoint(self, node: int) -> Callable[[Packet], None]:
        def endpoint(packet: Packet) -> None:
            msg = packet.payload
            if not isinstance(msg, CoherenceMessage):
                raise RuntimeError(f"unexpected payload at node {node}: {msg!r}")
            tr = self._trace
            if tr is not None and msg.mtype in _TRACED_TYPES:
                tr(f"core/{node}", "coh.recv", mtype=msg.mtype.value,
                   src=packet.src, addr=msg.addr, requester=msg.requester)
            if msg.mtype in _DIR_TYPES:
                self.dirs[node].handle(msg)
            elif msg.dest_is_home and msg.mtype in (
                MessageType.INV_ACK, MessageType.DATA
            ):
                # big-router-forwarded early acks and winner fail answers
                # in transit to the directory
                self.dirs[node].handle(msg)
            else:
                self.l1s[node].handle(msg)

        return endpoint
