"""Coherence protocol messages.

Message names follow the Gem5/MOESI vocabulary the paper uses in its
Figure 4 walk-through: GetS, GetX, Inv, InvAck, FwdGetX, AckCount, Data,
Unblock.  Control messages are single-flit packets; data responses carry a
cache block and are 8-flit packets (Table 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Optional


class MessageType(Enum):
    #: read request (load miss) to the home node
    GETS = "GetS"
    #: read-for-modification (atomic RMW or store miss) to the home node
    GETX = "GetX"
    #: home -> current owner: supply block to a GetS requester
    FWD_GETS = "FwdGetS"
    #: home -> current owner: transfer exclusive ownership to a new winner
    FWD_GETX = "FwdGetX"
    #: home -> transaction winner: a losing fail-fast GetX (e.g. a SWAP that
    #: will observe "occupied"); the winner answers it with a shared copy
    #: (the paper's Step 3 "forwards the GetX requests from the losers")
    FWD_FAIL = "FwdFail"
    #: block data response (shared)
    DATA = "Data"
    #: block data response granting exclusive ownership
    DATA_EXCL = "DataExcl"
    #: invalidate the target's copy; ack goes to the transaction winner
    INV = "Inv"
    #: invalidation acknowledgement
    INV_ACK = "InvAck"
    #: home -> winner: the set of cores whose InvAcks must be collected
    ACK_COUNT = "AckCount"
    #: winner -> home: transaction complete, unblock the directory entry
    UNBLOCK = "Unblock"
    #: evicting core -> home: give up a clean shared copy
    PUT_S = "PutS"
    #: evicting core -> home: write back an owned/modified copy
    PUT_M = "PutM"

    @property
    def is_data(self) -> bool:
        return self in (MessageType.DATA, MessageType.DATA_EXCL)


_txn_ids = itertools.count(1)


def next_txn_id() -> int:
    """Fresh directory transaction id (monotonic, global)."""
    return next(_txn_ids)


@dataclass
class CoherenceMessage:
    """Payload of one NoC packet in the coherence protocol."""

    mtype: MessageType
    addr: int
    #: core/node that originated the memory operation this message serves.
    requester: int
    #: immediate sender node (home, a core, or a big router).
    sender: int = -1
    #: for GETX: True when issued by an atomic RMW (lock acquire attempt).
    #: Big routers only barrier atomic GetX requests.
    is_atomic: bool = False
    #: for GETX: the RMW can fail fast (a SWAP onto an occupied lock); a
    #: losing request is answered by the winner with a shared copy instead
    #: of a serialized ownership transfer.
    fails_fast: bool = False
    #: for fail-fast GETX: the failure predicate itself, so the directory
    #: can answer a doomed request (e.g. a SWAP that would observe
    #: "occupied") with a shared copy directly, without opening a
    #: transaction — the store-conditional simply fails.
    fails_if: Optional[object] = None
    #: for GETX: the issuing L1 held a valid copy when the request left.
    #: Big routers only stop requests whose issuer has a copy to
    #: early-invalidate; stopping copy-less requests is pure overhead.
    holds_copy: bool = False
    #: for DATA answering a forwarded losing GetX: the observed value.
    fail_response: bool = False
    value: int = 0
    #: for DATA fail answers: cycle the answer was generated.
    generated_cycle: int = -1
    #: for DATA fail answers: value-only NACK — the requester must not
    #: install a copy (used when another core owns the block exclusively).
    copyless: bool = False
    #: for INV_ACK: cycle the target L1 processed the invalidation; the
    #: directory uses it to ignore prunes that predate a newer sharer add.
    ack_processed_cycle: int = -1
    #: for GETX: set once a big router stopped + converted this request.
    early_invalidated: bool = False
    #: for ACK_COUNT: cores whose InvAcks the winner must collect.
    ack_from: FrozenSet[int] = frozenset()
    #: for DATA/DATA_EXCL: whether this grants write permission.
    exclusive: bool = False
    #: for DATA_EXCL sent by a previous owner: counts as that owner's ack.
    counts_as_ack_from: Optional[int] = None
    #: for INV / INV_ACK: cycle the invalidation was created (RTT metric),
    #: the core being invalidated, and whether a big router generated it.
    inv_created_cycle: int = -1
    inv_target: int = -1
    early: bool = False
    #: big router node that generated an early INV (ack returns there first).
    via_router: Optional[int] = None
    #: for INV_ACK: True when a big router forwarded this ack to the home
    #: node's directory (rather than to a winner's L1).
    dest_is_home: bool = False
    #: for INV_ACK answering an *early* INV that arrived after its target
    #: had legitimately gained ownership: the target kept its line; the
    #: ack only releases the big router's EI entry and must not prune
    #: directory state.
    stale: bool = False
    #: directory transaction id (assigned when home starts the transaction).
    txn_id: int = 0
    #: OCOR: priority level carried by lock request packets.
    priority: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.mtype.value}(addr={self.addr:#x}, req={self.requester}, "
            f"txn={self.txn_id})"
        )


def ctrl(mtype: MessageType, addr: int, requester: int, **kw) -> CoherenceMessage:
    """Shorthand constructor for control messages."""
    return CoherenceMessage(mtype=mtype, addr=addr, requester=requester, **kw)
