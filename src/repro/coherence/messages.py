"""Coherence protocol messages.

Message names follow the Gem5/MOESI vocabulary the paper uses in its
Figure 4 walk-through: GetS, GetX, Inv, InvAck, FwdGetX, AckCount,
Unblock.  Control messages are single-flit packets; data responses carry a
cache block and are 8-flit packets (Table 1).

Fast-path representation
========================
The :class:`MessageType` Enum stays the public/serialized vocabulary, but
each member also carries a small integer ``tag`` (its position in the
declaration).  Hot dispatch — the directory and L1 message handlers, the
memory system's routing/priority/tracing decisions — indexes precomputed
per-tag tuples and bound-method tables with that tag instead of hashing
Enum members or walking ``elif`` chains.  :class:`CoherenceMessage` is a
hand-rolled ``__slots__`` class (Python 3.9 can't do ``dataclass(slots=
True)``) that stamps ``msg.tag`` at construction, and the allocation-heavy
control bursts (Inv / InvAck / AckCount fan-outs) draw instances from a
per-run free-list :class:`MessagePool`.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import List, Optional


class MessageType(Enum):
    #: read request (load miss) to the home node
    GETS = "GetS"
    #: read-for-modification (atomic RMW or store miss) to the home node
    GETX = "GetX"
    #: home -> current owner: supply block to a GetS requester
    FWD_GETS = "FwdGetS"
    #: home -> current owner: transfer exclusive ownership to a new winner
    FWD_GETX = "FwdGetX"
    #: home -> transaction winner: a losing fail-fast GetX (e.g. a SWAP that
    #: will observe "occupied"); the winner answers it with a shared copy
    #: (the paper's Step 3 "forwards the GetX requests from the losers")
    FWD_FAIL = "FwdFail"
    #: block data response (shared)
    DATA = "Data"
    #: block data response granting exclusive ownership
    DATA_EXCL = "DataExcl"
    #: invalidate the target's copy; ack goes to the transaction winner
    INV = "Inv"
    #: invalidation acknowledgement
    INV_ACK = "InvAck"
    #: home -> winner: the set of cores whose InvAcks must be collected
    ACK_COUNT = "AckCount"
    #: winner -> home: transaction complete, unblock the directory entry
    UNBLOCK = "Unblock"
    #: evicting core -> home: give up a clean shared copy
    PUT_S = "PutS"
    #: evicting core -> home: write back an owned/modified copy
    PUT_M = "PutM"

    @property
    def is_data(self) -> bool:
        return self in (MessageType.DATA, MessageType.DATA_EXCL)


#: declaration-order int encoding of the Enum; ``MessageType.X.tag`` is the
#: index into every per-tag dispatch/flag table.
MESSAGE_TYPES = tuple(MessageType)
N_MESSAGE_TYPES = len(MESSAGE_TYPES)
for _i, _member in enumerate(MESSAGE_TYPES):
    _member.tag = _i
del _i, _member

#: tag -> wire name (``MessageType.X.value``), for stats counting without
#: touching the Enum member.
VALUE_BY_TAG = tuple(m.value for m in MESSAGE_TYPES)


def _tag_flags(*members: MessageType) -> tuple:
    """A tag-indexed tuple of booleans: True for the given members."""
    flags = [False] * N_MESSAGE_TYPES
    for member in members:
        flags[member.tag] = True
    return tuple(flags)


try:
    popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - py3.9 fallback
    def popcount(x: int) -> int:
        """Number of set bits (sharer-mask cardinality)."""
        return bin(x).count("1")


def mask_to_set(mask: int) -> set:
    """The set of bit positions set in ``mask`` (compat view of a
    sharer/ack bitmask for tests, invariants and diagnostics)."""
    out = set()
    while mask:
        low = mask & -mask
        out.add(low.bit_length() - 1)
        mask ^= low
    return out


_txn_ids = itertools.count(1)


def next_txn_id() -> int:
    """Fresh directory transaction id (monotonic, process-global).

    Deprecated for simulation use: per-run ids come from
    :meth:`repro.coherence.memsystem.MemorySystem.next_txn_id`, so two
    back-to-back in-process runs see identical id streams.  This module
    -level counter is kept for API compatibility (ad-hoc tests/tools that
    need *some* unique id without a system).
    """
    return next(_txn_ids)


class CoherenceMessage:
    """Payload of one NoC packet in the coherence protocol.

    See the class docstring in this module's header for why this is a
    hand-written ``__slots__`` class; the field-by-field comments of the
    original dataclass live on the keyword parameters below.
    """

    __slots__ = (
        "mtype", "tag", "addr", "requester", "sender", "is_atomic",
        "fails_fast", "fails_if", "holds_copy", "fail_response", "value",
        "generated_cycle", "copyless", "ack_processed_cycle",
        "early_invalidated", "ack_from", "exclusive", "counts_as_ack_from",
        "inv_created_cycle", "inv_target", "early", "via_router",
        "dest_is_home", "stale", "txn_id", "priority", "_in_pool",
    )

    def __init__(
        self,
        mtype: MessageType,
        addr: int,
        #: core/node that originated the memory operation this message
        #: serves.
        requester: int,
        #: immediate sender node (home, a core, or a big router).
        sender: int = -1,
        #: for GETX: True when issued by an atomic RMW (lock acquire
        #: attempt).  Big routers only barrier atomic GetX requests.
        is_atomic: bool = False,
        #: for GETX: the RMW can fail fast (a SWAP onto an occupied lock);
        #: a losing request is answered by the winner with a shared copy
        #: instead of a serialized ownership transfer.
        fails_fast: bool = False,
        #: for fail-fast GETX: the failure predicate itself, so the
        #: directory can answer a doomed request (e.g. a SWAP that would
        #: observe "occupied") with a shared copy directly, without opening
        #: a transaction — the store-conditional simply fails.
        fails_if: Optional[object] = None,
        #: for GETX: the issuing L1 held a valid copy when the request
        #: left.  Big routers only stop requests whose issuer has a copy to
        #: early-invalidate; stopping copy-less requests is pure overhead.
        holds_copy: bool = False,
        #: for DATA answering a forwarded losing GetX: the observed value.
        fail_response: bool = False,
        value: int = 0,
        #: for DATA fail answers: cycle the answer was generated.
        generated_cycle: int = -1,
        #: for DATA fail answers: value-only NACK — the requester must not
        #: install a copy (used when another core owns the block
        #: exclusively).
        copyless: bool = False,
        #: for INV_ACK: cycle the target L1 processed the invalidation; the
        #: directory uses it to ignore prunes that predate a newer sharer
        #: add.
        ack_processed_cycle: int = -1,
        #: for GETX: set once a big router stopped + converted this request.
        early_invalidated: bool = False,
        #: for ACK_COUNT: bitmask of cores whose InvAcks the winner must
        #: collect (bit ``c`` set == core ``c`` expected).
        ack_from: int = 0,
        #: for DATA/DATA_EXCL: whether this grants write permission.
        exclusive: bool = False,
        #: for DATA_EXCL sent by a previous owner: counts as that owner's
        #: ack.
        counts_as_ack_from: Optional[int] = None,
        #: for INV / INV_ACK: cycle the invalidation was created (RTT
        #: metric), the core being invalidated, and whether a big router
        #: generated it.
        inv_created_cycle: int = -1,
        inv_target: int = -1,
        early: bool = False,
        #: big router node that generated an early INV (ack returns there
        #: first).
        via_router: Optional[int] = None,
        #: for INV_ACK: True when a big router forwarded this ack to the
        #: home node's directory (rather than to a winner's L1).
        dest_is_home: bool = False,
        #: for INV_ACK answering an *early* INV that arrived after its
        #: target had legitimately gained ownership: the target kept its
        #: line; the ack only releases the big router's EI entry and must
        #: not prune directory state.
        stale: bool = False,
        #: directory transaction id (assigned when home starts the
        #: transaction).
        txn_id: int = 0,
        #: OCOR: priority level carried by lock request packets.
        priority: int = 0,
    ):
        self.mtype = mtype
        self.tag = mtype.tag
        self.addr = addr
        self.requester = requester
        self.sender = sender
        self.is_atomic = is_atomic
        self.fails_fast = fails_fast
        self.fails_if = fails_if
        self.holds_copy = holds_copy
        self.fail_response = fail_response
        self.value = value
        self.generated_cycle = generated_cycle
        self.copyless = copyless
        self.ack_processed_cycle = ack_processed_cycle
        self.early_invalidated = early_invalidated
        self.ack_from = ack_from
        self.exclusive = exclusive
        self.counts_as_ack_from = counts_as_ack_from
        self.inv_created_cycle = inv_created_cycle
        self.inv_target = inv_target
        self.early = early
        self.via_router = via_router
        self.dest_is_home = dest_is_home
        self.stale = stale
        self.txn_id = txn_id
        self.priority = priority
        self._in_pool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.mtype.value}(addr={self.addr:#x}, req={self.requester}, "
            f"txn={self.txn_id})"
        )


class MessagePool:
    """A per-run free list for short-lived control messages.

    The Inv / InvAck / AckCount bursts of an invalidation fan-out allocate
    one :class:`CoherenceMessage` per sharer per transaction and drop it
    as soon as the destination endpoint has handled it.  The pool recycles
    those instances: :meth:`acquire` re-initializes a freed message (same
    keyword signature as the class), :meth:`release` returns one.

    Safety: a message may only be released at its *final* consumption
    point (the memory-system endpoint, after its handler ran), and never
    when fault injection is active — the ``duplicate`` fault aliases one
    payload across two packets, so recycling on the first delivery would
    corrupt the second.  ``MemorySystem`` enforces both rules; the
    ``_in_pool`` flag makes double-release a no-op.
    """

    __slots__ = ("_free", "allocated", "reused", "released")

    def __init__(self) -> None:
        self._free: List[CoherenceMessage] = []
        self.allocated = 0
        self.reused = 0
        self.released = 0

    def acquire(self, mtype: MessageType, addr: int, requester: int,
                **kw) -> CoherenceMessage:
        free = self._free
        if free:
            self.reused += 1
            msg = free.pop()
            msg.__init__(mtype, addr, requester, **kw)
            return msg
        self.allocated += 1
        return CoherenceMessage(mtype, addr, requester, **kw)

    def release(self, msg: CoherenceMessage) -> None:
        if msg._in_pool:
            return
        msg._in_pool = True
        self.released += 1
        self._free.append(msg)

    def __len__(self) -> int:
        return len(self._free)


def ctrl(mtype: MessageType, addr: int, requester: int, **kw) -> CoherenceMessage:
    """Shorthand constructor for control messages."""
    return CoherenceMessage(mtype=mtype, addr=addr, requester=requester, **kw)
