"""Declarative coherence protocols: (state, event) -> transition tables.

The paper's platform fixes a directory-based MOESI protocol (Section
3.1), but whether iNPG's critical-section win depends on *which*
protocol — or only on where invalidations are generated — is an open
ablation question.  This module turns the protocol into data: each
variant is a :class:`ProtocolSpec` holding two transition tables,

* ``l1_table``:  ``(L1State, event) -> TransitionResult`` for the core
  side (events are the deliverable :class:`MessageType` members plus the
  local pseudo-events ``Load`` / ``Store`` / ``Evict``), and
* ``dir_table``: ``(DirState, MessageType) -> TransitionResult`` for the
  home-node side,

and a small attach-time compiler that lowers a table into the fast-path
representation DESIGN.md §11 describes: the ``msg.tag``-indexed
bound-method dispatch tuple, plus per-state permission tuples
(``can_read`` / ``can_write`` / ``owns_data`` indexed by
``L1State.idx``) and the handful of protocol-variant flags the handlers
branch on (where a ``FwdGetS`` leaves the old owner, whether the home
takes over ownership when a copy is shared, whether a clean miss is
granted Exclusive).  The bitmask sharer sets, the message pool and the
scheduling of every MOESI run are untouched: compiling the MOESI table
produces exactly the pre-table dispatch, bit for bit.

Every reachable ``(state, event)`` pair must appear in a table — either
as a real transition or as the explicit :data:`UNHANDLED` marker for
pairs the protocol declares impossible.  :func:`lint_protocol` enforces
that exhaustiveness (and flags entries for states the protocol does not
use), and the rebuilt :class:`~repro.coherence.checker.ProtocolChecker`
validates observed transitions against the active table at run time:
an event hitting an ``UNHANDLED`` pair — or a state outside the
protocol's state set — raises a structured
:class:`~repro.errors.ProtocolViolation` naming the pair.

Protocol variants
=================
``moesi``
    The paper's protocol, exactly as before: a demoted owner keeps the
    block in Owned and keeps servicing FwdGetS; writebacks of O/M lines
    carry data.
``mesi``
    No O state: sharing a dirty block demotes the owner to Shared and
    the home reclaims ownership.  A GetS miss on an idle block (no
    owner, no sharers) is granted Exclusive, so a subsequent store
    upgrades silently without a GetX.
``msi``
    Neither E nor O: every first write issues a GetX, every shared copy
    of a dirty block moves ownership back to the home.

Committed values live centrally in ``MemorySystem.values`` (writeback is
pure bookkeeping), which is what lets all three variants share one
message vocabulary and one commit path.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Tuple, Union

from .messages import MessageType, N_MESSAGE_TYPES
from .states import L1State, N_L1_STATES
from . import directory as _directory_mod
from . import l1cache as _l1cache_mod

__all__ = [
    "DirState",
    "EVICT",
    "LOAD",
    "PROTOCOLS",
    "ProtocolSpec",
    "STORE",
    "TransitionResult",
    "UNHANDLED",
    "dir_state_of",
    "get_protocol",
    "lint_protocol",
]

#: local (core-initiated) pseudo-events of the L1 table; the message
#: events are the :class:`MessageType` members an L1 can receive.
LOAD = "Load"
STORE = "Store"
EVICT = "Evict"
L1_LOCAL_EVENTS = (LOAD, STORE, EVICT)

#: message types deliverable to an L1 controller.
L1_MESSAGE_EVENTS = (
    MessageType.DATA,
    MessageType.DATA_EXCL,
    MessageType.ACK_COUNT,
    MessageType.INV,
    MessageType.INV_ACK,
    MessageType.FWD_GETS,
    MessageType.FWD_GETX,
    MessageType.FWD_FAIL,
)

#: message types deliverable to a directory controller.
DIR_MESSAGE_EVENTS = (
    MessageType.GETS,
    MessageType.GETX,
    MessageType.UNBLOCK,
    MessageType.INV_ACK,
    MessageType.DATA,
    MessageType.PUT_S,
    MessageType.PUT_M,
)


class DirState(Enum):
    """Stable directory states for one block (the busy bit collapses the
    transient transaction states into one)."""

    UNOWNED = "U"    #: no owner, no sharers
    SHARED = "S"     #: sharers only, home supplies data
    OWNED = "O"      #: a core owns the block (M/E/O there)
    BUSY = "B"       #: an exclusive-ownership transaction is in flight


def dir_state_of(ent) -> DirState:
    """Classify a :class:`~repro.coherence.directory.DirEntry`."""
    if ent.busy:
        return DirState.BUSY
    if ent.owner is not None:
        return DirState.OWNED
    if ent.sharer_mask:
        return DirState.SHARED
    return DirState.UNOWNED


class _Unhandled:
    """Explicit table marker: this (state, event) pair must never occur.

    Distinct from an *absent* key (which the lint rejects): an
    ``UNHANDLED`` entry documents that the pair was considered and
    declared impossible — the checker turns an occurrence into a
    structured :class:`~repro.errors.ProtocolViolation`.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "UNHANDLED"


UNHANDLED = _Unhandled()


class TransitionResult:
    """One table entry: what an event does to a stable state.

    ``next_state`` is the primary (most common) resulting state;
    ``also`` lists the other legal outcomes of the same pair (a handler
    may stay put while a transaction is mid-flight, keep a line on the
    iNPG stale-early-Inv path, and so on).  ``action`` is a symbolic
    name of the bookkeeping/emission the compiled handler performs —
    the compiler derives permissions and variant flags from it, and the
    docs render it.  ``note`` carries the human-facing rationale.
    """

    __slots__ = ("next_state", "action", "also", "note")

    def __init__(self, next_state, action: str, *also, note: str = ""):
        self.next_state = next_state
        self.action = action
        self.also = tuple(also)
        self.note = note

    @property
    def allowed(self) -> tuple:
        """Every state this entry permits after the event."""
        return (self.next_state,) + self.also

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        extra = f" also={[s.value for s in self.also]}" if self.also else ""
        return (
            f"<{self.action}: -> {self.next_state.value}{extra}>"
        )


Entry = Union[TransitionResult, _Unhandled]

#: L1 actions that satisfy a read / a write locally (permission sources
#: for the derived predicates; see :meth:`ProtocolSpec._derive`).
_READ_HIT_ACTIONS = ("read_hit",)
_WRITE_HIT_ACTIONS = ("write_hit", "silent_upgrade")
_WRITEBACK_ACTIONS = ("evict_writeback",)

_L1_ACTIONS = frozenset(
    _READ_HIT_ACTIONS + _WRITE_HIT_ACTIONS + _WRITEBACK_ACTIONS + (
        "issue_gets", "issue_getx", "evict_clean",
        "fill", "ignore_stale", "collect_data", "collect_acks",
        "buffer_stray", "ack_inv", "supply_share", "transfer_exclusive",
        "answer_loser",
    )
)
_DIR_ACTIONS = frozenset((
    "supply_data", "forward_owner", "forward_demote", "grant_exclusive",
    "enqueue", "start_txn", "close_txn", "ignore_stale",
    "prune_early_ack", "relay_fail_answer", "relay_fail_demote",
    "relay_fail_nack", "untrack_sharer", "untrack_owner",
))


def _t(next_state, action: str, *also, note: str = "") -> TransitionResult:
    return TransitionResult(next_state, action, *also, note=note)


class ProtocolSpec:
    """One protocol variant: its tables plus everything compiled from them."""

    def __init__(
        self,
        name: str,
        l1_states: Tuple[L1State, ...],
        l1_table: Dict[Tuple[L1State, object], Entry],
        dir_table: Dict[Tuple[DirState, MessageType], Entry],
    ):
        self.name = name
        self.l1_states = tuple(l1_states)
        self.l1_table = dict(l1_table)
        self.dir_table = dict(dir_table)
        problems = lint_protocol(self)
        if problems:  # pragma: no cover - table authoring guard
            raise ValueError(
                f"protocol {name!r} table malformed:\n  " + "\n  ".join(problems)
            )
        self._derive()

    # ------------------------------------------------------------------
    # Derived metadata (satellite: predicates come from the table, not
    # from MOESI-hard-coded Enum properties)
    # ------------------------------------------------------------------
    def _derive(self) -> None:
        can_read = [False] * N_L1_STATES
        can_write = [False] * N_L1_STATES
        owns = [False] * N_L1_STATES
        for state in self.l1_states:
            load = self.l1_table[(state, LOAD)]
            store = self.l1_table[(state, STORE)]
            evict = self.l1_table[(state, EVICT)]
            can_read[state.idx] = (
                load is not UNHANDLED and load.action in _READ_HIT_ACTIONS
            )
            can_write[state.idx] = (
                store is not UNHANDLED and store.action in _WRITE_HIT_ACTIONS
            )
            owns[state.idx] = (
                evict is not UNHANDLED and evict.action in _WRITEBACK_ACTIONS
            )
        #: tag-indexed permission tuples (index with ``L1State.idx``)
        self.can_read = tuple(can_read)
        self.can_write = tuple(can_write)
        self.owns_data = tuple(owns)
        #: the state a valid line moves to when it services a FwdGetS
        #: (Owned under MOESI — the owner keeps supplying; Shared under
        #: MSI/MESI — ownership returns to the home).
        self.fwd_gets_next: L1State = self.l1_table[
            (L1State.MODIFIED, MessageType.FWD_GETS)
        ].next_state
        #: the state a writable line demotes to when answering a losing
        #: fail-fast RMW with a shared copy.
        self.fail_share_next: L1State = self.l1_table[
            (L1State.MODIFIED, MessageType.FWD_FAIL)
        ].next_state
        #: the home relinquishes/reclaims ownership whenever an owned
        #: block gets shared (MSI/MESI: no O state to park the owner in).
        self.home_takes_ownership: bool = (
            self.dir_table[(DirState.OWNED, MessageType.GETS)].action
            == "forward_demote"
        )
        #: a GetS miss on an idle block is granted Exclusive (MESI).
        self.grant_exclusive_clean: bool = (
            self.dir_table[(DirState.UNOWNED, MessageType.GETS)].action
            == "grant_exclusive"
        )
        #: state installed by a Data fill flagged ``exclusive`` (the
        #: MESI clean grant); plain fills install Shared.
        self.exclusive_fill_state: L1State = (
            L1State.EXCLUSIVE if self.grant_exclusive_clean else L1State.SHARED
        )

    # ------------------------------------------------------------------
    # Table lookups (checker API)
    # ------------------------------------------------------------------
    def l1_entry(self, state: L1State, event) -> Optional[Entry]:
        """The L1 table entry, or ``None`` when the state is not part of
        this protocol (a forged/impossible state)."""
        return self.l1_table.get((state, event))

    def dir_entry(self, state: DirState, event) -> Optional[Entry]:
        return self.dir_table.get((state, event))

    # ------------------------------------------------------------------
    # Attach-time compiler: lower the table onto a controller
    # ------------------------------------------------------------------
    def _message_dispatch(self, table, controller, handler_names) -> tuple:
        """The tag-indexed bound-method tuple for the events ``table``
        actually handles (an event with only UNHANDLED entries gets no
        handler and stays a hard dispatch error)."""
        names: List[Optional[str]] = [None] * N_MESSAGE_TYPES
        for (_state, event), entry in table.items():
            if isinstance(event, MessageType) and entry is not UNHANDLED:
                names[event.tag] = handler_names[event.tag]
        return tuple(
            getattr(controller, name) if name is not None else None
            for name in names
        )

    def compile_l1(self, l1) -> None:
        """Lower the L1 table onto one :class:`~repro.coherence.l1cache.L1Cache`."""
        l1.protocol = self
        l1._dispatch = self._message_dispatch(
            self.l1_table, l1, _l1cache_mod._HANDLER_NAMES
        )
        l1._can_read = self.can_read
        l1._can_write = self.can_write
        l1._owns = self.owns_data
        l1._fwd_gets_state = self.fwd_gets_next
        l1._fail_share_state = self.fail_share_next
        l1._excl_fill_state = self.exclusive_fill_state

    def compile_directory(self, dir_ctrl) -> None:
        """Lower the directory table onto one
        :class:`~repro.coherence.directory.DirectoryController`."""
        dir_ctrl.protocol = self
        dir_ctrl._dispatch = self._message_dispatch(
            self.dir_table, dir_ctrl, _directory_mod._HANDLER_NAMES
        )
        dir_ctrl._home_takes_ownership = self.home_takes_ownership
        dir_ctrl._grant_exclusive_clean = self.grant_exclusive_clean


# ----------------------------------------------------------------------
# Exhaustiveness lint
# ----------------------------------------------------------------------
def lint_protocol(spec: ProtocolSpec) -> List[str]:
    """Structural problems in a protocol's tables (empty == well formed).

    * every reachable ``(state, event)`` pair has an entry (a transition
      or an explicit ``UNHANDLED``);
    * no entries for states outside the protocol's state set, for
      unknown events, or with next/also states the protocol cannot hold;
    * every action name is from the known vocabulary.
    """
    problems: List[str] = []
    l1_events = L1_MESSAGE_EVENTS + L1_LOCAL_EVENTS
    l1_states = set(spec.l1_states)
    for state in spec.l1_states:
        for event in l1_events:
            if (state, event) not in spec.l1_table:
                problems.append(
                    f"L1 pair ({state.value}, {_event_name(event)}) missing"
                )
    for (state, event), entry in spec.l1_table.items():
        where = f"L1 ({state.value}, {_event_name(event)})"
        if state not in l1_states:
            problems.append(f"{where}: unreachable state {state.value}")
        if event not in l1_events:
            problems.append(f"{where}: unknown event")
        if entry is UNHANDLED:
            continue
        if entry.action not in _L1_ACTIONS:
            problems.append(f"{where}: unknown action {entry.action!r}")
        for nxt in entry.allowed:
            if nxt not in l1_states:
                problems.append(
                    f"{where}: result state {nxt.value} not in protocol"
                )
    dir_states = tuple(DirState)
    for state in dir_states:
        for event in DIR_MESSAGE_EVENTS:
            if (state, event) not in spec.dir_table:
                problems.append(
                    f"dir pair ({state.value}, {event.value}) missing"
                )
    for (state, event), entry in spec.dir_table.items():
        where = f"dir ({state.value}, {event.value})"
        if event not in DIR_MESSAGE_EVENTS:
            problems.append(f"{where}: unknown event")
        if entry is UNHANDLED:
            continue
        if entry.action not in _DIR_ACTIONS:
            problems.append(f"{where}: unknown action {entry.action!r}")
        for nxt in entry.allowed:
            if not isinstance(nxt, DirState):
                problems.append(f"{where}: result {nxt!r} is not a DirState")
    return problems


def _event_name(event) -> str:
    return event.value if isinstance(event, MessageType) else str(event)


# ----------------------------------------------------------------------
# The three protocol variants
# ----------------------------------------------------------------------
I = L1State.INVALID
S = L1State.SHARED
E = L1State.EXCLUSIVE
O = L1State.OWNED  # noqa: E741 - the protocol letter
M = L1State.MODIFIED
U_, S_, O_, B_ = (DirState.UNOWNED, DirState.SHARED, DirState.OWNED,
                  DirState.BUSY)

_DATA = MessageType.DATA
_DATA_EXCL = MessageType.DATA_EXCL
_ACK_COUNT = MessageType.ACK_COUNT
_INV = MessageType.INV
_INV_ACK = MessageType.INV_ACK
_FWD_GETS = MessageType.FWD_GETS
_FWD_GETX = MessageType.FWD_GETX
_FWD_FAIL = MessageType.FWD_FAIL
_GETS = MessageType.GETS
_GETX = MessageType.GETX
_UNBLOCK = MessageType.UNBLOCK
_PUT_S = MessageType.PUT_S
_PUT_M = MessageType.PUT_M


def _common_l1_rows(states, fwd_gets_next, fail_share_next) -> Dict:
    """The table rows every variant shares, parameterized by where a
    FwdGetS / fail-answer demotion leaves a writable line.

    Shared shape: a load/store from Invalid issues GetS/GetX and waits;
    a transaction winner collects Data-Exclusive + AckCount + InvAcks in
    whatever valid state it started from and commits to Modified; Inv
    invalidates and acks (the iNPG *early* Inv to a core that has since
    gained ownership keeps the line — the stale-ack rule); FwdGetX hands
    exclusive ownership over and kills the local copy from any state
    (the directory believed us owner, we answer even from Invalid).
    """
    table: Dict = {}
    for st in states:
        # loads/stores: permissions fall out of the *_hit actions
        table[(st, LOAD)] = (
            _t(st, "read_hit") if st is not I else _t(I, "issue_gets")
        )
        # Evicting an invalid line is impossible (_evict guards on valid).
        table[(I, EVICT)] = UNHANDLED
        if st is not I:
            table[(st, EVICT)] = _t(
                I, "evict_writeback" if st in (M, O, E) else "evict_clean"
            )
        # winner-side ack collection; commit moves to Modified
        if st in (M,):
            # one DataExcl/AckCount per transaction, consumed before the
            # commit that installs M — seeing one *in* M means a
            # duplicated/forged message.
            table[(st, _DATA_EXCL)] = UNHANDLED
            table[(st, _ACK_COUNT)] = UNHANDLED
            table[(st, _INV_ACK)] = _t(
                M, "buffer_stray",
                note="late ack of an older txn; parked in the stray buffer",
            )
        else:
            # the last-arriving piece commits synchronously, and a
            # commit immediately answers any forwarded losers — which
            # demotes the freshly-installed M to the fail-share state
            table[(st, _DATA_EXCL)] = _t(
                M, "collect_data", st, fail_share_next
            )
            table[(st, _ACK_COUNT)] = _t(
                st, "collect_acks", M, fail_share_next
            )
            table[(st, _INV_ACK)] = _t(
                st, "collect_acks", M, fail_share_next
            )
        # invalidation: ack always; iNPG early Inv to a legitimate owner
        # keeps the line (stale ack releases the big router's EI entry)
        if st in (M, O, E):
            table[(st, _INV)] = _t(
                I, "ack_inv", st,
                note="early Inv to a core that gained ownership is stale: "
                     "line kept, ack marked stale",
            )
        else:
            table[(st, _INV)] = _t(I, "ack_inv")
        # ownership transfer to a new transaction winner
        table[(st, _FWD_GETX)] = _t(I, "transfer_exclusive")
        # supplying a shared copy on the home's behalf
        if st is I:
            table[(st, _FWD_GETS)] = _t(
                I, "supply_share",
                note="copy already (early-)invalidated; still supplies the "
                     "committed value the waiting requester needs",
            )
        else:
            table[(st, _FWD_GETS)] = _t(fwd_gets_next, "supply_share")
        # answering a forwarded losing fail-fast RMW
        if st in (M, E):
            table[(st, _FWD_FAIL)] = _t(
                fail_share_next, "answer_loser", st,
                note="demotes so the next local store cannot commit "
                     "silently while the loser holds a copy; stays put "
                     "while our own txn is still collecting acks",
            )
        else:
            table[(st, _FWD_FAIL)] = _t(st, "answer_loser")
        # plain fills install Shared; stale fail answers to a line we
        # already own are value-only no-ops
        if st in (M, O, E):
            table[(st, _DATA)] = _t(st, "ignore_stale")
        elif st is I:
            table[(st, _DATA)] = _t(
                S, "fill", I,
                note="stays Invalid when the fill was dropped (Inv raced "
                     "the GetS) or the answer was a copyless NACK",
            )
        else:
            table[(st, _DATA)] = _t(S, "fill")
    # store permission is the per-variant part
    table[(I, STORE)] = _t(I, "issue_getx")
    table[(S, STORE)] = _t(S, "issue_getx")
    table[(M, STORE)] = _t(M, "write_hit")
    return table


def _common_dir_rows() -> Dict:
    """Directory rows every variant shares."""
    table: Dict = {}
    for st in (U_, S_, O_, B_):
        table[(st, _INV_ACK)] = _t(
            st, "prune_early_ack",
            note="big-router-forwarded early ack: prune the sharer, relay "
                 "to the winner if a txn still expects it",
        )
        if st is not B_:
            table[(st, _GETX)] = _t(
                B_, "start_txn", st, S_,
                note="directory_nacks may answer a doomed conditional RMW "
                     "with a shared copy instead of opening a transaction",
            )
            table[(st, _UNBLOCK)] = _t(st, "ignore_stale")
        table[(st, _PUT_S)] = _t(
            st, "untrack_sharer", U_,
            note="stale Puts (older than the core's latest sharer re-add) "
                 "are dropped",
        )
        table[(st, _PUT_M)] = _t(
            U_ if st is O_ else st, "untrack_owner", S_, O_,
        )
    table[(B_, _GETS)] = _t(B_, "enqueue")
    table[(B_, _GETX)] = _t(
        B_, "enqueue",
        note="fail-fast losers are forwarded to the in-flight winner "
             "instead (the paper's Step 3)",
    )
    table[(B_, _UNBLOCK)] = _t(
        O_, "close_txn", B_, S_, U_,
        note="draining the queue may immediately start the next txn",
    )
    table[(U_, _GETS)] = _t(S_, "supply_data")
    table[(S_, _GETS)] = _t(S_, "supply_data")
    # relaying a winner's fail answer to the losing requester
    table[(B_, _DATA)] = _t(
        B_, "relay_fail_nack",
        note="a new txn is open: the copy degrades to a value-only NACK",
    )
    table[(U_, _DATA)] = _t(S_, "relay_fail_answer")
    table[(S_, _DATA)] = _t(S_, "relay_fail_answer")
    return table


# --- MOESI: the paper's protocol, exactly as before --------------------
_MOESI_STATES = (I, S, O, M)  # E is never installed by our flows
_moesi_l1 = _common_l1_rows(_MOESI_STATES, fwd_gets_next=O,
                            fail_share_next=O)
_moesi_l1[(O, STORE)] = _t(O, "issue_getx")
_moesi_dir = _common_dir_rows()
_moesi_dir[(O_, _GETS)] = _t(
    O_, "forward_owner",
    note="owner demotes M -> O and keeps supplying data",
)
_moesi_dir[(O_, _DATA)] = _t(O_, "relay_fail_answer")

MOESI = ProtocolSpec("moesi", _MOESI_STATES, _moesi_l1, _moesi_dir)

# --- MSI: no E, no O ---------------------------------------------------
_MSI_STATES = (I, S, M)
_msi_l1 = _common_l1_rows(_MSI_STATES, fwd_gets_next=S, fail_share_next=S)
_msi_dir = _common_dir_rows()
_msi_dir[(O_, _GETS)] = _t(
    S_, "forward_demote", O_,
    note="the owner supplies the copy, demotes itself to Shared, and "
         "the home reclaims ownership (stays Owned only when the "
         "requester *is* the recorded owner refetching)",
)
_msi_dir[(O_, _DATA)] = _t(
    S_, "relay_fail_demote", O_,
    note="the answering winner demoted itself to Shared; mirror it here",
)

MSI = ProtocolSpec("msi", _MSI_STATES, _msi_l1, _msi_dir)

# --- MESI: E but no O --------------------------------------------------
_MESI_STATES = (I, S, E, M)
_mesi_l1 = _common_l1_rows(_MESI_STATES, fwd_gets_next=S, fail_share_next=S)
_mesi_l1[(E, STORE)] = _t(
    M, "silent_upgrade",
    note="the Exclusive grant's whole point: no GetX on first write",
)
# (the common rows already let DataExcl/AckCount/InvAck arrive in E:
# an E-grant can land while a GetX to the same block is in flight)
# allow the exclusive fill itself
_mesi_l1[(I, _DATA)] = _t(
    S, "fill", I, E,
    note="a Data flagged exclusive (clean-miss grant) installs E; "
         "plain fills install S; dropped/copyless fills stay I",
)
_mesi_dir = _common_dir_rows()
_mesi_dir[(O_, _GETS)] = _t(
    S_, "forward_demote", O_,
    note="as MSI: no O state to park a demoted owner in",
)
_mesi_dir[(O_, _DATA)] = _t(S_, "relay_fail_demote", O_)
_mesi_dir[(U_, _GETS)] = _t(
    O_, "grant_exclusive",
    note="idle block: the requester is recorded as owner (not sharer) "
         "and may silently upgrade E -> M",
)

MESI = ProtocolSpec("mesi", _MESI_STATES, _mesi_l1, _mesi_dir)


#: registry, keyed by the ``SystemConfig.protocol`` values.
PROTOCOLS: Dict[str, ProtocolSpec] = {
    "moesi": MOESI,
    "mesi": MESI,
    "msi": MSI,
}


def get_protocol(name: str) -> ProtocolSpec:
    """Resolve a protocol name (case-insensitive) to its spec."""
    spec = PROTOCOLS.get(str(name).lower())
    if spec is None:
        raise ValueError(
            f"unknown coherence protocol {name!r}; "
            f"choose from {sorted(PROTOCOLS)}"
        )
    return spec
