"""MOESI cache line states.

The target platform uses a directory-based MOESI protocol (Section 3.1).
Only the states actually reachable in our transaction flows are used, but
the full enum is provided for API completeness.
"""

from __future__ import annotations

from enum import Enum


class L1State(Enum):
    """Stable L1 line states."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    OWNED = "O"
    MODIFIED = "M"

    @property
    def valid(self) -> bool:
        return self is not L1State.INVALID

    @property
    def can_read(self) -> bool:
        return self.valid

    @property
    def can_write(self) -> bool:
        """Write permission without a coherence transaction."""
        return self in (L1State.MODIFIED, L1State.EXCLUSIVE)

    @property
    def owns_data(self) -> bool:
        """This cache is responsible for supplying the block."""
        return self in (L1State.MODIFIED, L1State.OWNED, L1State.EXCLUSIVE)
