"""L1 cache line states for the MSI / MESI / MOESI protocol family.

The target platform's protocol is directory-based MOESI (Section 3.1),
and that remains the default; since the table-driven refactor the
protocol is a config axis (``SystemConfig.protocol``) and the sibling
MSI / MESI variants use subsets of this enum (MSI has no E or O, MESI no
O).  The full five-state vocabulary lives here so every variant shares
one type.

Which states can read, write or must write back is a *per-protocol*
question — under MSI a Shared line must upgrade before writing and
there is no silent-upgrade E state.  The authoritative predicates are
therefore derived from the active protocol's transition table
(:meth:`repro.coherence.protocol.ProtocolSpec._derive`) and compiled
into each controller as ``L1State.idx``-indexed tuples.  The Enum
properties below are kept as the MOESI-default convenience view for
diagnostics and protocol-agnostic code; anything protocol-sensitive
must go through the compiled tuples or the spec.
"""

from __future__ import annotations

from enum import Enum


class L1State(Enum):
    """Stable L1 line states (the union over the protocol family)."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    OWNED = "O"
    MODIFIED = "M"

    @property
    def valid(self) -> bool:
        return self is not L1State.INVALID

    @property
    def can_read(self) -> bool:
        return self.valid

    @property
    def can_write(self) -> bool:
        """Write permission without a coherence transaction.

        MOESI-default view; the per-protocol answer is the compiled
        ``can_write`` tuple on each :class:`~repro.coherence.l1cache.L1Cache`.
        """
        return self in (L1State.MODIFIED, L1State.EXCLUSIVE)

    @property
    def owns_data(self) -> bool:
        """This cache is responsible for supplying the block.

        MOESI-default view; see :attr:`can_write`.
        """
        return self in (L1State.MODIFIED, L1State.OWNED, L1State.EXCLUSIVE)


#: declaration-order int encoding, mirroring ``MessageType.tag``:
#: ``L1State.X.idx`` indexes the compiled per-protocol permission tuples.
L1_STATES = tuple(L1State)
N_L1_STATES = len(L1_STATES)
for _i, _member in enumerate(L1_STATES):
    _member.idx = _i
del _i, _member
