"""System configuration, mirroring Table 1 of the paper.

All timing is expressed in CPU cycles of the 2.0 GHz cores; the NoC runs at
core frequency (as in the paper's Gem5/GARNET setup).  A single
:class:`SystemConfig` fully determines a simulation run (together with the
workload), so experiments are declarative parameter sweeps over it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class CoreConfig:
    """Processor core parameters (Table 1: Alpha 2.0 GHz out-of-order)."""

    frequency_ghz: float = 2.0
    #: cycles a thread needs to issue the next instruction of the lock FSM
    #: after a memory response arrives (models non-memory pipeline work).
    issue_latency: int = 1


@dataclass(frozen=True)
class CacheConfig:
    """L1/L2 cache parameters (Table 1)."""

    l1_size_kb: int = 32
    l1_assoc: int = 4
    l1_latency: int = 2
    l2_bank_size_mb: int = 1
    l2_assoc: int = 16
    l2_latency: int = 6
    block_bytes: int = 128
    mshrs: int = 32
    #: model finite L1 capacity with LRU eviction and PutS/PutM
    #: writebacks.  Off by default: the lock-centric workloads fit
    #: comfortably, and infinite capacity keeps runs deterministic with
    #: respect to unrelated data placement.
    model_capacity: bool = False
    #: directory-side NACKing of doomed conditional RMWs (a SWAP that
    #: would observe "occupied" gets a copy instead of a transaction).
    #: Off by default — the paper's baseline runs the full
    #: invalidate-everyone transaction for every competing test_and_set,
    #: which is precisely the cache-line bouncing its Figure 2 measures.
    #: Turning this on is a *software-transparent directory optimization*
    #: that removes most of the traffic iNPG targets (ablation knob).
    directory_nacks: bool = False

    @property
    def l1_num_sets(self) -> int:
        return (self.l1_size_kb * 1024) // (self.block_bytes * self.l1_assoc)


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip DRAM parameters (Table 1: 4 GB, 8 controllers)."""

    dram_latency: int = 100
    num_controllers: int = 8


@dataclass(frozen=True)
class NocConfig:
    """Mesh NoC parameters (Table 1: 8x8, XY routing, 2-stage routers)."""

    width: int = 8
    height: int = 8
    #: two-stage pipelined speculative router (RC/VA/SA then ST).
    router_pipeline_cycles: int = 2
    link_cycles: int = 1
    vcs_per_port: int = 6
    flits_per_vc: int = 4
    datapath_bits: int = 128
    #: separate control/data virtual networks (Table 1 has 4 VNs); when
    #: disabled, single-flit control packets queue behind data bursts —
    #: an ablation knob for the port arbitration model.
    virtual_networks: bool = True
    #: run on the detailed flit-level router model instead of the
    #: packet-level one (validation mode; ~10x slower, no iNPG support).
    flit_level: bool = False
    #: flit-level engine: ``event`` is the per-event reference router,
    #: ``vector`` the cycle-batched array fabric (``repro.noc.vecflit``,
    #: bit-exact against the event engine; requires single-cycle links),
    #: ``sharded`` the spatially-partitioned multi-process fabric
    #: (``repro.noc.shardflit``, bit-exact against ``vector``).
    flit_engine: str = "event"
    #: row-band shard count for the ``sharded`` flit engine: the mesh is
    #: split into this many contiguous row bands, each advanced by its
    #: own worker under a cycle-batched boundary-exchange barrier.
    #: ``1`` (the default, and what any other engine requires) runs the
    #: single-process path; CLIs default it from ``REPRO_SHARDS``.
    shards: int = 1
    #: fabric topology (``repro.noc.topology``): the paper's ``mesh`` by
    #: default; ``torus`` (wraparound XY, dateline VCs) and ``ring``
    #: (bidirectional, shortest direction) for the placement sweeps.
    #: The flit-level fabrics are mesh-only and refuse other values with
    #: a structured :class:`repro.errors.UnsupportedTopology`.
    topology: str = "mesh"
    #: output-port arbitration across virtual-network classes: ``rr``
    #: (strict VC priority + oldest-first, the paper's baseline) or
    #: ``wrr`` (credit-based weighted round-robin over VC classes,
    #: ``repro.noc.arbiter``).
    arbiter: str = "rr"
    #: WRR weights per VC class, by index (class ``i`` gets
    #: ``weights[i % len(weights)]``); inert unless ``arbiter == "wrr"``.
    wrr_weights: Tuple[int, ...] = (2, 1)

    def __post_init__(self) -> None:
        if self.flit_engine not in FLIT_ENGINES:
            raise ValueError(
                f"unknown flit engine {self.flit_engine!r}; "
                f"choose from {FLIT_ENGINES}"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"choose from {TOPOLOGIES}"
            )
        if self.arbiter not in ARBITERS:
            raise ValueError(
                f"unknown arbiter {self.arbiter!r}; choose from {ARBITERS}"
            )
        # JSON round-trips turn tuples into lists; normalize so configs
        # stay hashable (frozen RunSpecs embed them) and compare equal.
        weights = tuple(int(w) for w in self.wrr_weights)
        if not weights or any(w < 1 for w in weights):
            raise ValueError(
                f"wrr_weights must be positive integers, got "
                f"{self.wrr_weights!r}"
            )
        object.__setattr__(self, "wrr_weights", weights)
        shards = int(self.shards)
        if not 1 <= shards <= self.height:
            raise ValueError(
                f"shards={self.shards!r} must be between 1 and the mesh "
                f"height ({self.height}): each shard owns at least one "
                f"full row band"
            )
        object.__setattr__(self, "shards", shards)
        if shards > 1 and self.flit_engine != "sharded":
            raise ValueError(
                f"shards={shards} requires flit_engine='sharded'; the "
                f"{self.flit_engine!r} engine is single-process"
            )
    #: one cache block = one 8-flit packet; control messages are 1 flit.
    data_packet_flits: int = 8
    ctrl_packet_flits: int = 1

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinate of a node id."""
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at coordinate (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x


@dataclass(frozen=True)
class InpgConfig:
    """iNPG big-router parameters (Section 4, Table 1).

    The default deployment interleaves 32 big routers with 32 normal ones on
    the 8x8 mesh (paper Figure 3).
    """

    enabled: bool = False
    num_big_routers: int = 32
    #: number of lock-barrier entries in the locking barrier table.
    barrier_table_size: int = 16
    #: early-invalidation entries available per big router (shared pool, as
    #: Figure 6 sizes 16 lock barriers and 16 EI entries).
    ei_entries: int = 16
    #: time-to-live for an idle lock barrier, cycles (Section 4.1).
    barrier_ttl: int = 128
    #: big-router placement strategy (``repro.inpg.deployment``):
    #: ``spread`` is the paper's interleaved/evenly-strided deployment
    #: (Figure 3); ``center`` and ``perimeter`` rank nodes by total hop
    #: distance for the placement-sensitivity sweeps.
    placement: str = "spread"

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown big-router placement {self.placement!r}; "
                f"choose from {PLACEMENTS}"
            )


@dataclass(frozen=True)
class OcorConfig:
    """OCOR parameters (Table 1: 128 retries, 9 priority levels)."""

    enabled: bool = False
    retry_times: int = 128
    priority_levels: int = 9
    retries_per_level: int = 16
    #: lowest level is reserved for wakeup (post-sleep) requests.
    wakeup_level: int = 0
    #: anti-starvation aging: a queued request gains one priority level
    #: per this many waiting cycles (the paper embeds "program progress
    #: information ... to avoid starvation for low-priority requests").
    aging_cycles: int = 2000


@dataclass(frozen=True)
class OsConfig:
    """OS model parameters for the queue spin-lock sleep phase.

    Linux 4.2 QSL spins up to 128 times, then context-switches out.  The
    sleep path costs a context switch on the way out plus a wakeup (IPI +
    switch-in) on the way back; both are far larger than a spin retry.
    """

    qsl_spin_retries: int = 128
    context_switch_cycles: int = 600
    wakeup_cycles: int = 400


@dataclass(frozen=True)
class LockSpinConfig:
    """Spin-loop pacing shared by all primitives."""

    #: cycles between successive retries / polls.
    spin_interval: int = 20
    #: cycles to execute the local ADD/compare before an RMW attempt.
    local_op_cycles: int = 2
    #: raw spinning (the paper's Section 2.1: "each core repeatedly
    #: executes an atomic test_and_set"): every TAS/QSL retry is an
    #: atomic SWAP attempt generating a GetX, and losers receive fresh
    #: copies from the winner each round.  False switches to
    #: test-and-test-and-set (poll a local copy, swap only on observed
    #: free) — a common software optimization that removes most of the
    #: lock coherence traffic iNPG targets (ablation knob).
    raw_spin: bool = True


@dataclass(frozen=True)
class SystemConfig:
    """Aggregate configuration for one simulated many-core run."""

    core: CoreConfig = field(default_factory=CoreConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    inpg: InpgConfig = field(default_factory=InpgConfig)
    ocor: OcorConfig = field(default_factory=OcorConfig)
    os: OsConfig = field(default_factory=OsConfig)
    spin: LockSpinConfig = field(default_factory=LockSpinConfig)
    #: one thread per core, as in the paper.
    num_threads: int = 64
    seed: int = 2018
    #: coherence protocol variant (``repro.coherence.protocol``): the
    #: paper's directory MOESI by default; ``msi`` / ``mesi`` select the
    #: sibling transition tables for protocol ablations.
    protocol: str = "moesi"

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown coherence protocol {self.protocol!r}; "
                f"choose from {PROTOCOL_NAMES}"
            )

    def with_overrides(self, **overrides) -> "SystemConfig":
        """Return a copy with fields deep-replaced into nested sections.

        Section keyword arguments take a mapping of field overrides (or a
        ready section instance); top-level fields take plain values::

            cfg.with_overrides(noc={"topology": "torus"}, num_threads=32)
            cfg.with_overrides(inpg={"enabled": True, "placement": "center"})

        Strict like :func:`config_from_dict`: an unknown section field or
        top-level field raises ``TypeError`` instead of being dropped.
        This is the supported way to derive configs — it keeps every
        section a frozen value object (no mutation patterns) and runs all
        ``__post_init__`` validation on the rebuilt sections.
        """
        updates = {}
        for name, value in overrides.items():
            section = _SECTION_TYPES.get(name)
            if section is not None:
                if isinstance(value, section):
                    updates[name] = value
                    continue
                if not isinstance(value, dict):
                    raise TypeError(
                        f"section {name!r} takes a mapping of field "
                        f"overrides or a {section.__name__}, got "
                        f"{type(value).__name__}"
                    )
                current = getattr(self, name)
                known = {f.name for f in fields(current)}
                unknown = sorted(set(value) - known)
                if unknown:
                    raise TypeError(
                        f"unknown field(s) {unknown} for config section "
                        f"{name!r}"
                    )
                updates[name] = replace(current, **value)
            else:
                if name not in {
                    f.name for f in fields(self)
                }:
                    raise TypeError(
                        f"unknown SystemConfig field {name!r}"
                    )
                updates[name] = value
        if not updates:
            return self
        return replace(self, **updates)

    def with_mechanism(self, mechanism: str) -> "SystemConfig":
        """Return a copy configured as one of the paper's four cases.

        ``mechanism`` is one of ``original``, ``ocor``, ``inpg``,
        ``inpg+ocor`` (case-insensitive).
        """
        key = mechanism.lower().replace(" ", "")
        flags = {
            "original": (False, False),
            "ocor": (False, True),
            "inpg": (True, False),
            "inpg+ocor": (True, True),
            "ocor+inpg": (True, True),
            "both": (True, True),
        }.get(key)
        if flags is None:
            raise ValueError(f"unknown mechanism {mechanism!r}")
        inpg_on, ocor_on = flags
        return self.with_overrides(
            inpg={"enabled": inpg_on}, ocor={"enabled": ocor_on}
        )


#: the dataclass type behind each :class:`SystemConfig` section, for
#: rebuilding a config from its ``asdict`` encoding
_SECTION_TYPES = {
    "core": CoreConfig,
    "cache": CacheConfig,
    "memory": MemoryConfig,
    "noc": NocConfig,
    "inpg": InpgConfig,
    "ocor": OcorConfig,
    "os": OsConfig,
    "spin": LockSpinConfig,
}


def config_to_dict(config: SystemConfig) -> Dict:
    """JSON-compatible encoding of a config (inverse of
    :func:`config_from_dict`)."""
    return asdict(config)


def config_from_dict(payload: Dict) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its :func:`config_to_dict`
    encoding.

    Strict by design: an unknown section or field raises ``TypeError``
    rather than being silently dropped — a config that crossed a process
    or network boundary must mean exactly what it meant at the sender,
    or fingerprints would diverge.
    """
    kwargs = {}
    for name, value in payload.items():
        section = _SECTION_TYPES.get(name)
        if section is not None:
            if not isinstance(value, dict):
                raise TypeError(
                    f"config section {name!r} must be a mapping, "
                    f"got {type(value).__name__}"
                )
            kwargs[name] = section(**value)
        else:
            kwargs[name] = value
    return SystemConfig(**kwargs)


#: The four comparative cases of Section 5.1.
MECHANISMS = ("original", "ocor", "inpg", "inpg+ocor")

#: The coherence protocol family (default first); the specs themselves
#: live in ``repro.coherence.protocol``.
PROTOCOL_NAMES = ("moesi", "msi", "mesi")

#: Flit-level fabric engines (default first): the event-driven reference
#: router, the vectorized cycle-batched fabric, and the multi-process
#: row-band sharded fabric, all behind the same API.
FLIT_ENGINES = ("event", "vector", "sharded")

#: NoC topologies (default first); classes in ``repro.noc.topology``.
TOPOLOGIES = ("mesh", "torus", "ring")

#: Output-port arbitration policies (default first): strict VC priority
#: round-robin, and weighted round-robin (``repro.noc.arbiter``).
ARBITERS = ("rr", "wrr")

#: Big-router placement strategies (default first);
#: ``repro.inpg.deployment`` implements them.
PLACEMENTS = ("spread", "center", "perimeter")


def describe_axes() -> Dict[str, Dict[str, object]]:
    """One record per simulation axis, in a single convention.

    Each record names the valid ``choices`` (default first), the
    ``default``, the dotted config field that carries the axis, and the
    shared CLI flag (identical spelling on ``inpg-sim`` and
    ``inpg-experiments``; specs travel through the serve proto with the
    same values).  Re-exported by :mod:`repro.api`.
    """
    axes = {
        "protocol": ("protocol", "--protocol", PROTOCOL_NAMES),
        "flit_engine": ("noc.flit_engine", "--flit-engine", FLIT_ENGINES),
        "topology": ("noc.topology", "--topology", TOPOLOGIES),
        "arbiter": ("noc.arbiter", "--arbiter", ARBITERS),
    }
    return {
        name: {
            "choices": choices,
            "default": choices[0],
            "config_field": config_field,
            "flag": flag,
        }
        for name, (config_field, flag, choices) in axes.items()
    }
