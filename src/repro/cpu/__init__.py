"""Core/thread/OS models and the off-chip memory path."""

from .memory_model import MemoryController, MemorySubsystem, controller_nodes
from .os_model import OsModel
from .program import (
    Program,
    ProgramCore,
    acquire,
    load,
    release,
    repeat,
    rmw,
    store,
    think,
)
from .thread import WorkerThread

__all__ = [
    "MemoryController",
    "MemorySubsystem",
    "OsModel",
    "Program",
    "ProgramCore",
    "WorkerThread",
    "acquire",
    "controller_nodes",
    "load",
    "release",
    "repeat",
    "rmw",
    "store",
    "think",
]
