"""Off-chip memory path: DRAM controllers at the mesh edge.

Table 1: eight memory controllers, symmetrically connected to the middle
nodes of the top and bottom rows (Figure 3), 4 GB DRAM with up to 16
outstanding requests per controller.  The directory uses this model when
a block misses in the L2 bank: the access is queued at the nearest
controller, pays DRAM latency, and is bandwidth-limited by the
controller's outstanding-request window.

Lock lines are resident in L2 for the whole ROI in our workloads, so the
memory path mostly matters for cold misses and for capacity studies with
the finite-cache model (``repro.coherence.cachesim``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..config import MemoryConfig, NocConfig
from ..sim import Component, Simulator


def controller_nodes(noc: NocConfig, count: int) -> List[int]:
    """Controller placement: middle nodes of the top and bottom rows.

    Figure 3's layout: half the controllers attach along the top row,
    half along the bottom, centred.
    """
    per_row = max(1, count // 2)
    width = noc.width
    start = max(0, (width - per_row) // 2)
    top = [noc.node_at(start + i, 0) for i in range(min(per_row, width))]
    bottom = [
        noc.node_at(start + i, noc.height - 1)
        for i in range(min(count - len(top), width))
    ]
    return top + bottom


class MemoryController(Component):
    """One DRAM channel with a bounded outstanding-request window."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        latency: int,
        max_outstanding: int = 16,
    ):
        super().__init__(sim, f"mc.{node}")
        self.node = node
        self.latency = latency
        self.max_outstanding = max_outstanding
        self._in_flight = 0
        self._queue: List[tuple] = []
        self.requests = 0
        self.total_queue_wait = 0
        self._enqueue_cycle: Dict[int, int] = {}

    def access(self, callback: Callable[..., None], *args) -> None:
        """Perform one DRAM access; ``callback(*args)`` fires when data is
        ready."""
        self.requests += 1
        if self._in_flight < self.max_outstanding:
            self._start(callback, args)
        else:
            self._queue.append((callback, args))

    def _start(self, callback: Callable[..., None], args: tuple) -> None:
        self._in_flight += 1
        self.after(self.latency, self._done, callback, args)

    def _done(self, callback: Callable[..., None], args: tuple) -> None:
        self._in_flight -= 1
        callback(*args)
        if self._queue and self._in_flight < self.max_outstanding:
            next_cb, next_args = self._queue.pop(0)
            self._start(next_cb, next_args)

    @property
    def outstanding(self) -> int:
        return self._in_flight + len(self._queue)


class MemorySubsystem(Component):
    """All memory controllers; routes an access to the nearest one."""

    def __init__(
        self,
        sim: Simulator,
        noc: NocConfig,
        config: MemoryConfig,
    ):
        super().__init__(sim, "dram")
        self.noc = noc
        nodes = controller_nodes(noc, config.num_controllers)
        self.controllers: Dict[int, MemoryController] = {
            n: MemoryController(sim, n, config.dram_latency)
            for n in nodes
        }
        self._nearest: Dict[int, int] = {}

    def nearest_controller(self, node: int) -> int:
        """Controller node closest (Manhattan) to ``node``."""
        cached = self._nearest.get(node)
        if cached is not None:
            return cached
        x, y = self.noc.coords(node)
        best = min(
            self.controllers,
            key=lambda c: abs(self.noc.coords(c)[0] - x)
            + abs(self.noc.coords(c)[1] - y),
        )
        self._nearest[node] = best
        return best

    def access_from(self, node: int, callback: Callable[..., None],
                    *args) -> None:
        """DRAM access issued by the L2 bank at ``node``."""
        self.controllers[self.nearest_controller(node)].access(callback, *args)

    @property
    def total_requests(self) -> int:
        return sum(c.requests for c in self.controllers.values())
