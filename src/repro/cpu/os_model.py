"""Operating-system model: the queue spin-lock sleep/wake machinery.

Linux-4.2-style queue spin-lock behaviour (Section 2.1(5)): a thread that
exhausts its spin budget context-switches out and its lock request parks
in a per-lock wait queue; unlocking wakes the oldest sleeper.  The model
charges a context switch on the way out, and wake-IPI latency plus a
context switch on the way back in — the "high-overhead sleep phase" OCOR
exists to avoid.

The lost-wakeup race (lock released while a thread is mid-switch-out) is
closed the way real kernels do, by re-checking the lock word after
enqueueing: if it is already free, the thread wakes itself immediately.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Tuple, TYPE_CHECKING

from ..config import OsConfig
from ..sim import Component, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..coherence.memsystem import MemorySystem

WakeCallback = Callable[[], None]


class OsModel(Component):
    """Per-run OS scheduler state for sleeping lock waiters."""

    #: trace emitter; rebound by ``repro.obs.Observation.attach``.
    _trace = None

    def __init__(self, sim: Simulator, config: OsConfig, memsys: "MemorySystem"):
        super().__init__(sim, "os")
        self.config = config
        self.memsys = memsys
        self._wait_queues: Dict[int, Deque[Tuple[int, WakeCallback]]] = {}
        self.sleeps = 0
        self.wakeups = 0
        self.self_wakeups = 0

    def sleep(
        self,
        lock_id: int,
        lock_addr: int,
        core: int,
        on_wake: WakeCallback,
    ) -> None:
        """Park ``core`` on ``lock_id``'s wait queue.

        The caller has already paid the switch-out cost.  ``on_wake`` fires
        after the wake latency; the woken thread then pays its switch-in
        cost itself.
        """
        self.sleeps += 1
        queue = self._wait_queues.setdefault(lock_id, deque())
        queue.append((core, on_wake))
        tr = self._trace
        if tr is not None:
            tr("os", "os.sleep", core=core, lock=lock_id, queued=len(queue))
        # Lost-wakeup guard: the lock may have been freed while we were
        # switching out, with nobody left to notify us.
        if self.memsys.read(lock_addr) == 0:
            self._wake_one(lock_id, self_wake=True)

    def notify_release(self, lock_id: int) -> None:
        """The lock holder released; wake the oldest sleeper, if any."""
        self._wake_one(lock_id, self_wake=False)

    def _wake_one(self, lock_id: int, self_wake: bool) -> None:
        queue = self._wait_queues.get(lock_id)
        if not queue:
            return
        _core, on_wake = queue.popleft()
        self.wakeups += 1
        if self_wake:
            self.self_wakeups += 1
        tr = self._trace
        if tr is not None:
            tr("os", "os.wake", core=_core, lock=lock_id,
               self_wake=int(self_wake))
        self.after(self.config.wakeup_cycles, on_wake)

    def sleeping_count(self, lock_id: int) -> int:
        queue = self._wait_queues.get(lock_id)
        return len(queue) if queue else 0
