"""A small program abstraction for driving cores directly.

The benchmark workloads use the fixed parallel/acquire/CS/release loop of
the paper's Figure 1.  For finer-grained studies (and for users building
their own experiments), this module provides a tiny instruction set and
an in-order core that executes it against the coherent memory system:

    from repro.cpu.program import Program, think, load, store, rmw, \
        acquire, release, repeat

    prog = Program([
        repeat(3, [
            think(200),
            acquire(0),
            load(DATA), store(DATA, 1),
            release(0),
        ]),
    ])

Each instruction completes before the next issues (in-order, blocking),
matching how the lock FSMs use the memory system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..sim import Component, Simulator

#: instruction opcodes
THINK, LOAD, STORE, RMW, ACQUIRE, RELEASE = (
    "think", "load", "store", "rmw", "acquire", "release"
)


@dataclass(frozen=True)
class Instruction:
    op: str
    a: int = 0
    b: int = 0
    fn: Optional[Callable[[int], Tuple[int, int]]] = None


def think(cycles: int) -> Instruction:
    """Local computation for ``cycles``."""
    if cycles < 0:
        raise ValueError("think cycles must be non-negative")
    return Instruction(THINK, cycles)


def load(addr: int) -> Instruction:
    return Instruction(LOAD, addr)


def store(addr: int, value: int) -> Instruction:
    return Instruction(STORE, addr, value)


def rmw(addr: int, fn: Callable[[int], Tuple[int, int]]) -> Instruction:
    """Atomic read-modify-write: ``fn(old) -> (new, returned)``."""
    return Instruction(RMW, addr, fn=fn)


def acquire(lock_index: int) -> Instruction:
    return Instruction(ACQUIRE, lock_index)


def release(lock_index: int) -> Instruction:
    return Instruction(RELEASE, lock_index)


def repeat(times: int, body: Sequence[Instruction]) -> List[Instruction]:
    """Unrolled loop."""
    if times < 0:
        raise ValueError("repeat count must be non-negative")
    out: List[Instruction] = []
    for _ in range(times):
        out.extend(body)
    return out


def _flatten(items) -> List[Instruction]:
    out: List[Instruction] = []
    for item in items:
        if isinstance(item, Instruction):
            out.append(item)
        else:
            out.extend(_flatten(item))
    return out


@dataclass
class Program:
    """A flat instruction sequence (nested lists are flattened)."""

    instructions: List[Instruction]

    def __init__(self, instructions):
        self.instructions = _flatten(instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class ProgramCore(Component):
    """An in-order core executing a :class:`Program`.

    ``locks`` maps the ACQUIRE/RELEASE lock indices to lock primitives;
    loads/stores/RMWs go straight to the memory system.  ``on_done``
    fires when the program retires; per-instruction retirement times are
    recorded in :attr:`retired`.
    """

    def __init__(
        self,
        sim: Simulator,
        core: int,
        program: Program,
        memsys,
        locks: Sequence = (),
        on_done: Optional[Callable[[int], None]] = None,
    ):
        super().__init__(sim, f"progcore{core}")
        self.core = core
        self.program = program
        self.memsys = memsys
        self.locks = locks
        self.on_done = on_done
        self.pc = 0
        self.retired: List[Tuple[int, str]] = []
        self.last_value: Optional[int] = None
        self.done = False

    def start(self) -> None:
        self._step()

    def _retire(self, op: str, value: Optional[int] = None) -> None:
        self.retired.append((self.now, op))
        if value is not None:
            self.last_value = value
        self.pc += 1
        self._step()

    def _step(self) -> None:
        if self.pc >= len(self.program.instructions):
            self.done = True
            if self.on_done is not None:
                self.on_done(self.core)
            return
        ins = self.program.instructions[self.pc]
        if ins.op == THINK:
            self.after(ins.a, lambda: self._retire(THINK))
        elif ins.op == LOAD:
            self.memsys.load(
                self.core, ins.a, lambda v: self._retire(LOAD, v)
            )
        elif ins.op == STORE:
            self.memsys.store(
                self.core, ins.a, ins.b, lambda v: self._retire(STORE, v)
            )
        elif ins.op == RMW:
            self.memsys.rmw(
                self.core, ins.a, ins.fn,
                lambda v: self._retire(RMW, v), ll_sc=True,
            )
        elif ins.op == ACQUIRE:
            self.locks[ins.a].acquire(
                self.core, lambda: self._retire(ACQUIRE)
            )
        elif ins.op == RELEASE:
            self.locks[ins.a].release(
                self.core, lambda: self._retire(RELEASE)
            )
        else:  # pragma: no cover - constructor-validated
            raise RuntimeError(f"unknown instruction {ins.op}")
