"""Worker thread model.

A thread runs the canonical loop of the paper's Figure 1: parallel
computation, then competition for a critical section, the CS body, and
release.  Phase boundaries feed the timeline (Figure 9) and per-thread
metrics (COH / CSE accounting for Figures 8, 11, 12).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TYPE_CHECKING

from ..sim import Component, Simulator
from ..stats.metrics import ThreadMetrics
from ..stats.timeline import Timeline
from ..workloads.generator import WorkItem

if TYPE_CHECKING:  # pragma: no cover
    from ..locks.base import LockPrimitive


class WorkerThread(Component):
    """One software thread pinned to one core (as in the paper)."""

    #: trace emitter; rebound by ``repro.obs.Observation.attach``.
    _trace = None

    def __init__(
        self,
        sim: Simulator,
        thread_id: int,
        core: int,
        items: Sequence[WorkItem],
        locks: Sequence["LockPrimitive"],
        metrics: ThreadMetrics,
        timeline: Timeline,
        on_done: Callable[[int], None],
    ):
        super().__init__(sim, f"thread{thread_id}")
        self.thread_id = thread_id
        self.core = core
        self.items = list(items)
        self.locks = locks
        self.metrics = metrics
        self.timeline = timeline
        self.on_done = on_done
        self.done = False
        self._index = 0

    def start(self) -> None:
        self._next_item()

    # ------------------------------------------------------------------
    def _next_item(self) -> None:
        tr = self._trace
        if self._index >= len(self.items):
            self.done = True
            if tr is not None:
                tr(f"core/{self.core}", "thread.done",
                   thread=self.thread_id, cs_completed=self.metrics.cs_completed)
            self.on_done(self.thread_id)
            return
        item = self.items[self._index]
        self._index += 1
        if tr is not None:
            tr(f"core/{self.core}", "phase.parallel", thread=self.thread_id,
               item=self._index - 1)
        self.timeline.begin(self.thread_id, "parallel", self.now)
        start = self.now
        self.after(
            item.parallel_cycles, lambda: self._enter_competition(item, start)
        )

    def _enter_competition(self, item: WorkItem, parallel_start: int) -> None:
        self.metrics.parallel_cycles += self.now - parallel_start
        tr = self._trace
        if tr is not None:
            tr(f"core/{self.core}", "phase.coh", thread=self.thread_id,
               lock=item.lock_index)
        self.timeline.begin(self.thread_id, "coh", self.now)
        coh_start = self.now
        lock = self.locks[item.lock_index]
        lock.acquire(self.core, lambda: self._enter_cs(item, lock, coh_start))

    def _enter_cs(self, item: WorkItem, lock, coh_start: int) -> None:
        self.metrics.coh_cycles += self.now - coh_start
        tr = self._trace
        if tr is not None:
            tr(f"core/{self.core}", "phase.cse", thread=self.thread_id,
               lock=item.lock_index, coh_cycles=self.now - coh_start)
        self.timeline.begin(self.thread_id, "cse", self.now)
        cse_start = self.now
        self.after(
            item.cs_cycles, lambda: self._release(lock, cse_start)
        )

    def _release(self, lock, cse_start: int) -> None:
        lock.release(self.core, lambda: self._released(cse_start))

    def _released(self, cse_start: int) -> None:
        self.metrics.cse_cycles += self.now - cse_start
        self.metrics.cs_completed += 1
        self.timeline.end(self.thread_id, self.now)
        self._next_item()
