"""``repro.errors``: the single exception hierarchy of the reproduction.

Everything the library raises on purpose derives from :class:`ReproError`,
so callers can fence off *any* simulation/execution failure with one
``except`` clause while still discriminating the interesting cases::

    from repro import errors

    try:
        result = api.simulate(config, workload, "tas")
    except errors.LivelockDetected as err:
        print(err.stalled_threads, err.locks)
    except errors.ReproError:
        ...

Historically three of these classes lived next to the code that raised
them (``repro.system.DeadlockError``, ``repro.sim.kernel.SimulationError``,
``repro.coherence.checker.ProtocolViolation``); those import paths keep
working as aliases of the classes below.  The secondary bases
(``RuntimeError``, ``AssertionError``) are preserved so pre-existing
``except RuntimeError`` / ``except AssertionError`` handlers continue to
catch what they used to.

This module is dependency-free on purpose: it is imported by the kernel,
the coherence layer, the executor and the fault subsystem, and must never
participate in an import cycle.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "DeadlockError",
    "ExecutorError",
    "LivelockDetected",
    "ProtocolViolation",
    "ReproError",
    "RunTimeout",
    "ShardConfigError",
    "ShardWorkerError",
    "SimulationError",
    "UnsupportedFaultSite",
    "UnsupportedTopology",
]


class ReproError(Exception):
    """Base class of every intentional failure the library raises."""


class SimulationError(ReproError, RuntimeError):
    """Kernel misuse or a simulation that cannot make progress.

    (Re-homed from ``repro.sim.kernel``; ``RuntimeError`` stays a base so
    legacy handlers keep catching it.)
    """


class DeadlockError(SimulationError):
    """The ROI did not finish within the cycle budget.

    (Re-homed from ``repro.system``.  Now a :class:`SimulationError`:
    a deadlocked ROI is one way a simulation fails to make progress.)
    """


class LivelockDetected(SimulationError):
    """The liveness watchdog saw no forward progress for a full window.

    Unlike :class:`DeadlockError` (cycle budget exhausted, or the event
    queue drained with threads still pending), a livelock is *active*
    non-progress: events keep firing — spinning cores, polling loops,
    retransmissions — while the progress signature (lock acquisitions /
    releases, finished threads) stays frozen.  The structured fields
    mirror the ``repro.obs`` counters the watchdog samples.
    """

    def __init__(
        self,
        message: str = "no forward progress",
        *,
        cycle: Optional[int] = None,
        window: Optional[int] = None,
        stalled_threads: Tuple[int, ...] = (),
        locks: Optional[Dict[int, int]] = None,
    ):
        super().__init__(message)
        #: cycle the watchdog fired at
        self.cycle = cycle
        #: size of the no-progress window, cycles
        self.window = window
        #: thread ids that had not finished when the watchdog fired
        self.stalled_threads = tuple(stalled_threads)
        #: ``lock_id -> acquisitions`` at detection time
        self.locks = dict(locks or {})


class ProtocolViolation(ReproError, AssertionError):
    """A coherence invariant failed during simulation.

    (Re-homed from ``repro.coherence.checker``; ``AssertionError`` stays
    a base for backward compatibility.)

    Since the table-driven protocol refactor the checker validates
    observed transitions against the active protocol's transition table;
    a violation triggered by a specific event names the offending
    ``(state, event)`` pair in the structured fields.
    """

    def __init__(
        self,
        message: str = "coherence invariant violated",
        *,
        state: Optional[str] = None,
        event: Optional[str] = None,
        core: Optional[int] = None,
        addr: Optional[int] = None,
    ):
        super().__init__(message)
        #: the stable state the event hit (e.g. ``"M"``), if applicable
        self.state = state
        #: the event name (message type value or local pseudo-event)
        self.event = event
        #: the core / home node where the pair occurred
        self.core = core
        #: the block address involved
        self.addr = addr


class UnsupportedFaultSite(ReproError, ValueError):
    """A fault plan names sites the active network model cannot honor.

    The flit-level fabrics expose no per-router/per-link hooks, so only
    ``inject`` sites are installable there; a plan carrying router or
    link sites is refused up front — with the offending site kinds and
    the network model named — rather than silently dropped.
    (``ValueError`` stays a base so legacy handlers keep catching it.)
    """

    def __init__(
        self,
        message: str = "fault plan names unsupported sites",
        *,
        model: Optional[str] = None,
        site_kinds: Tuple[str, ...] = (),
    ):
        super().__init__(message)
        #: the refusing network model (e.g. ``"flit/vector"``)
        self.model = model
        #: the unsupported site kinds in the plan (e.g. ``("router",)``)
        self.site_kinds = tuple(site_kinds)


class UnsupportedTopology(ReproError, ValueError):
    """The selected network model cannot run the configured topology.

    The flit-level fabrics (event and vector engines) hard-wire the
    5-port mesh router (LOCAL/N/E/S/W) and XY routing; a config naming a
    non-mesh ``NocConfig.topology`` is refused up front — with the model
    and topology named — rather than silently routed as a mesh.
    (``ValueError`` stays a base so generic config-validation handlers
    keep catching it.)
    """

    def __init__(
        self,
        message: str = "topology unsupported by this network model",
        *,
        model: Optional[str] = None,
        topology: Optional[str] = None,
        supported: Tuple[str, ...] = ("mesh",),
    ):
        super().__init__(message)
        #: the refusing network model (e.g. ``"flit/vector"``)
        self.model = model
        #: the requested topology axis value (e.g. ``"torus"``)
        self.topology = topology
        #: topologies this model can run
        self.supported = tuple(supported)


class ShardConfigError(ReproError, ValueError):
    """A shard count was combined with an engine that cannot honor it.

    ``NocConfig.shards > 1`` is meaningful only on the sharded flit
    engine; forcing such a config onto the ``event`` or ``vector``
    engine (e.g. through :func:`repro.noc.vecflit.make_flit_network`'s
    explicit ``engine`` argument) is refused up front — with the engine
    and shard count named — rather than silently run single-process.
    (``ValueError`` stays a base so generic config-validation handlers
    keep catching it.)
    """

    def __init__(
        self,
        message: str = "shard count unsupported by this engine",
        *,
        engine: Optional[str] = None,
        shards: Optional[int] = None,
    ):
        super().__init__(message)
        #: the engine that cannot run sharded (e.g. ``"vector"``)
        self.engine = engine
        #: the requested shard count
        self.shards = shards


class RunTimeout(ReproError):
    """A run exhausted its wall-clock budget before finishing its ROI.

    Raised from inside the kernel's run loop (the deadline check), so it
    aborts the simulation wherever it happens to be; the executor treats
    it as a per-run failure and never caches the partial run.
    """

    def __init__(
        self,
        message: str = "wall-clock budget exhausted",
        *,
        timeout_s: Optional[float] = None,
        cycle: Optional[int] = None,
    ):
        super().__init__(message)
        self.timeout_s = timeout_s
        self.cycle = cycle


class ExecutorError(ReproError):
    """A run failed inside the executor (inline or in a pool worker).

    Carries the originating spec's identity — content-address
    ``fingerprint`` and human ``spec_label`` — plus the worker's
    formatted ``worker_traceback`` when the failure crossed a process
    boundary (a pickled exception loses its traceback, so workers ship
    the text alongside).
    """

    def __init__(
        self,
        message: str = "run failed",
        *,
        fingerprint: Optional[str] = None,
        spec_label: Optional[str] = None,
        worker_traceback: Optional[str] = None,
    ):
        super().__init__(message)
        self.fingerprint = fingerprint
        self.spec_label = spec_label
        self.worker_traceback = worker_traceback


class ShardWorkerError(ExecutorError):
    """A sharded-fabric worker process died or raised mid-run.

    The sharded flit engine (:mod:`repro.noc.shardflit`) advances each
    mesh band in its own process under a conservative-lookahead barrier;
    a worker that crashes would otherwise leave its siblings spinning
    forever.  The parent detects the death, aborts the remaining
    workers through the shared-memory abort flag, and raises this —
    an :class:`ExecutorError` so executor-level fencing catches it —
    with the failing shard identified and the worker's formatted
    traceback attached when one crossed the pipe.
    """

    def __init__(
        self,
        message: str = "shard worker failed",
        *,
        shard: Optional[int] = None,
        shards: Optional[int] = None,
        exitcode: Optional[int] = None,
        worker_traceback: Optional[str] = None,
    ):
        super().__init__(message, worker_traceback=worker_traceback)
        #: index of the failing shard (0 = topmost row band)
        self.shard = shard
        #: total shard count of the run
        self.shards = shards
        #: the worker process exit code, when it died without reporting
        self.exitcode = exitcode
