"""Declarative run orchestration: specs, caching, parallel execution.

The experiment harnesses describe *what* to simulate as a plan of
:class:`RunSpec` values; an :class:`Executor` decides *how* — deduping
identical runs, answering from the in-memory table or the persistent
:class:`ResultCache`, and fanning the rest out over worker processes.

Environment knobs: ``REPRO_JOBS`` (worker count, 0 = one per CPU) and
``REPRO_CACHE_DIR`` (cache location, default ``.repro-cache/``).
"""

from .cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    NullCache,
    ResultCache,
    default_cache_dir,
)
from .executor import (
    ExecStats,
    Executor,
    FailureRecord,
    JOBS_ENV,
    ON_ERROR_MODES,
    RunRecord,
    default_jobs,
    execute_spec,
    is_transient_error,
)
from .spec import MICROBENCH, RunSpec

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ExecStats",
    "Executor",
    "FailureRecord",
    "JOBS_ENV",
    "MICROBENCH",
    "NullCache",
    "ON_ERROR_MODES",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "default_cache_dir",
    "default_jobs",
    "execute_spec",
    "is_transient_error",
]
