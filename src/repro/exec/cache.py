"""Persistent on-disk result cache, keyed by spec fingerprint.

One JSON file per completed run under the cache directory (default
``.repro-cache/``, overridable via the ``REPRO_CACHE_DIR`` environment
variable or explicitly).  Entries are versioned with
:data:`~repro.stats.serialize.RESULT_SCHEMA_VERSION`: an entry written
under a different schema — or one that fails to parse at all — is
treated as a miss and never mis-read.

The cache stores the spec's canonical payload next to the result, so a
cache directory is self-describing and greppable; the fingerprint alone
decides hits.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from ..stats.serialize import RESULT_SCHEMA_VERSION

#: environment override for the cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default cache directory (relative to the working directory)
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


class ResultCache:
    """Filesystem-backed fingerprint -> serialized-result store."""

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[Dict]:
        """The stored result payload, or ``None`` on miss/stale schema."""
        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("schema") != RESULT_SCHEMA_VERSION:
            self.misses += 1
            return None
        result = entry.get("result")
        if not isinstance(result, dict):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(
        self,
        fingerprint: str,
        spec_payload: Dict,
        result_payload: Dict,
        meta: Optional[Dict] = None,
    ) -> None:
        """Atomically persist one run (write-to-temp + rename)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": RESULT_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "created": time.time(),
            "spec": spec_payload,
            "result": result_payload,
            "meta": meta or {},
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{fingerprint[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class NullCache:
    """Cache-shaped no-op for ``--no-cache`` runs."""

    directory = None

    def __init__(self):
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> Optional[Dict]:
        self.misses += 1
        return None

    def put(self, fingerprint, spec_payload, result_payload, meta=None):
        pass

    def __contains__(self, fingerprint: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def clear(self) -> int:
        return 0
