"""Executor: fan a run plan out over processes, behind persistent caching.

The execution pipeline for a plan (a sequence of :class:`RunSpec`):

1. dedup specs by fingerprint (Figures 11/12 submit the same 24x4
   matrix — each distinct run simulates once);
2. satisfy what it can from the in-memory result table, then from the
   on-disk :class:`~repro.exec.cache.ResultCache`;
3. execute the remainder — in-process when ``jobs == 1`` (today's
   debuggable path), else on a ``ProcessPoolExecutor`` of ``jobs``
   workers, each re-running the simulation from its spec and shipping
   the result back through the versioned serialization layer;
4. write every fresh result through to the disk cache and record
   per-run observability (wall time, simulated cycles, events/sec).

``jobs`` defaults to the ``REPRO_JOBS`` environment variable, else 1;
``jobs=0`` means one worker per CPU.

Resilience policy (new with ``repro.faults``):

* ``timeout_s`` — a per-run wall-clock budget, enforced *inside* the
  simulation kernel (``Simulator.run(deadline=...)``) so it works
  identically inline and in pool workers; a timed-out run raises
  :class:`~repro.errors.RunTimeout` and is **never cached**.
* ``retries`` / ``backoff_s`` — *transient* failures (infra errors:
  ``OSError``, a broken pool, ...) are retried with exponential backoff.
  Deterministic simulation failures (:class:`~repro.errors.ReproError`
  subclasses — deadlock, livelock, protocol violation, timeout) never
  retry: the same spec replays the same failure.
* ``on_error`` — ``"raise"`` (default) propagates the first failure
  (inline: the original exception, for backward compatibility; pool:
  an :class:`~repro.errors.ExecutorError` carrying the spec fingerprint
  and the worker's traceback text).  ``"skip"`` degrades gracefully:
  failed specs map to ``None`` in the returned dict and the failure is
  recorded in :class:`ExecStats` for the execution-summary footer.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ExecutorError, ReproError
from ..stats.metrics import RunResult
from ..stats.serialize import (
    RESULT_SCHEMA_VERSION,
    deserialize_run_result,
    serialize_run_result,
)
from .cache import NullCache, ResultCache
from .spec import RunSpec

#: environment override for the default worker count
JOBS_ENV = "REPRO_JOBS"

#: the ``on_error`` policy values
ON_ERROR_MODES = ("raise", "skip")

#: error shapes worth retrying: infrastructure, not simulation.  A
#: :class:`ReproError` is definitionally deterministic (a run is a pure
#: function of its spec) and is excluded even when it subclasses one of
#: these (``SimulationError`` is a ``RuntimeError``, for instance).
_TRANSIENT_ERRORS = (OSError, EOFError, BrokenExecutor)


def is_transient_error(error: BaseException) -> bool:
    """Would re-running the same spec plausibly succeed?"""
    if isinstance(error, ReproError):
        return False
    return isinstance(error, _TRANSIENT_ERRORS)


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (0 = one per CPU), default 1."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return resolve_jobs(jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return default_jobs()
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


# ----------------------------------------------------------------------
# Spec execution (shared by the in-process path and pool workers)
# ----------------------------------------------------------------------
def execute_spec(
    spec: RunSpec, observe=None, timeout_s: Optional[float] = None
) -> RunResult:
    """Run one simulation exactly as its spec describes it.

    ``observe`` (a :class:`repro.obs.Observation`) wires observability
    into the assembled system; it never enters the spec's fingerprint —
    traced and untraced runs of one spec are bit-exact.  ``timeout_s``
    is the executor's per-run wall-clock budget (not part of the spec
    either: it cannot change a completed run's result, only whether the
    run completes).
    """
    from ..system import ManyCoreSystem, run_benchmark

    cfg = spec.resolved_config()
    if spec.is_microbench:
        from ..workloads.generator import single_lock_workload

        home = spec.lock_homes[0] if spec.lock_homes else 53
        workload = single_lock_workload(
            num_threads=cfg.num_threads,
            home_node=home,
            **spec.microbench_params(),
        )
        system = ManyCoreSystem(
            cfg,
            workload,
            primitive=spec.primitive,
            observe=observe,
            fault_plan=spec.fault_plan,
            watchdog_cycles=spec.watchdog_cycles,
            check_protocol=spec.check_protocol,
        )
        return system.run(max_cycles=spec.max_cycles, timeout_s=timeout_s)
    return run_benchmark(
        spec.benchmark,
        mechanism=None,  # already resolved into cfg
        primitive=spec.primitive,
        config=cfg,
        seed=spec.seed,
        scale=spec.scale,
        lock_homes=spec.lock_homes,
        max_cycles=spec.max_cycles,
        observe=observe,
        fault_plan=spec.fault_plan,
        watchdog_cycles=spec.watchdog_cycles,
        check_protocol=spec.check_protocol,
        timeout_s=timeout_s,
    )


def _pool_worker(
    spec: RunSpec, timeout_s: Optional[float] = None
) -> Tuple[str, Dict, float]:
    """Subprocess entry point: run, serialize, report wall time.

    On failure the formatted traceback is attached to the exception
    (``_repro_traceback``) before it crosses the process boundary —
    pickling keeps ``__dict__``, so the parent can report *where* in the
    worker the run died, not just the exception repr.
    """
    start = time.perf_counter()
    try:
        result = execute_spec(spec, timeout_s=timeout_s)
    except BaseException as err:
        try:
            err._repro_traceback = traceback.format_exc()
        except Exception:  # exotic __slots__ exceptions: skip the extra
            pass
        raise
    wall = time.perf_counter() - start
    return spec.fingerprint, serialize_run_result(result), wall


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """Provenance of one executed (not cached) simulation."""

    fingerprint: str
    label: str
    wall_time: float
    sim_cycles: int
    sim_events: int

    @property
    def events_per_sec(self) -> float:
        return self.sim_events / self.wall_time if self.wall_time > 0 else 0.0


@dataclass
class FailureRecord:
    """Provenance of one run that failed (``on_error="skip"``)."""

    fingerprint: str
    label: str
    error_type: str
    message: str
    attempts: int = 1
    wall_time: float = 0.0

    def render(self) -> str:
        first_line = self.message.splitlines()[0] if self.message else ""
        retry = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return (
            f"  FAILED {self.label} [{self.error_type}]{retry}: "
            f"{first_line} (fp={self.fingerprint[:12]})"
        )


@dataclass
class ExecStats:
    """Counters the ``inpg-experiments`` footer reports."""

    executed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    failed: int = 0
    wall_time: float = 0.0
    sim_cycles: int = 0
    sim_events: int = 0
    records: List[RunRecord] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def requested(self) -> int:
        return (self.executed + self.memory_hits + self.disk_hits
                + self.failed)

    @property
    def cache_hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requested if self.requested else 0.0

    def record_run(self, record: RunRecord) -> None:
        self.executed += 1
        self.wall_time += record.wall_time
        self.sim_cycles += record.sim_cycles
        self.sim_events += record.sim_events
        self.records.append(record)

    def record_failure(self, record: FailureRecord) -> None:
        self.failed += 1
        self.wall_time += record.wall_time
        self.failures.append(record)

    def render_footer(
        self, jobs: int = 1, cache_dir: Optional[str] = None
    ) -> str:
        """The summary block printed after an experiments invocation."""
        lines = ["--- run execution summary ---"]
        lines.append(
            f"runs: {self.requested} requested | executed: {self.executed} | "
            f"cache hits: {self.cache_hits} "
            f"({self.disk_hits} disk, {self.memory_hits} memory) | "
            f"hit rate: {100.0 * self.hit_rate:.1f}%"
            + (f" | failed: {self.failed}" if self.failed else "")
        )
        rate = self.sim_events / self.wall_time if self.wall_time else 0.0
        lines.append(
            f"jobs: {jobs} | sim wall: {self.wall_time:.1f}s | "
            f"{self.sim_cycles:,} cycles, {self.sim_events:,} events "
            f"({rate / 1e6:.2f} Mev/s)"
        )
        if self.records:
            slowest = max(self.records, key=lambda r: r.wall_time)
            rates = [r.events_per_sec for r in self.records]
            lines.append(
                f"per-run rate: {min(rates) / 1e6:.2f}-{max(rates) / 1e6:.2f}"
                f" Mev/s | slowest: {slowest.label} "
                f"({slowest.wall_time:.1f}s)"
            )
        if self.failures:
            lines.append(f"failures ({self.failed}, on_error=skip):")
            lines.extend(record.render() for record in self.failures)
        where = cache_dir if cache_dir else "disabled"
        lines.append(f"cache: {where} (schema v{RESULT_SCHEMA_VERSION})")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
class Executor:
    """Runs :class:`RunSpec` plans with caching and optional parallelism.

    The resilience policy (``timeout_s`` / ``retries`` / ``backoff_s`` /
    ``on_error``, see the module docstring) is set at construction and
    can be overridden per :meth:`run` call.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[Union[ResultCache, NullCache]] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        observe_factory=None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.5,
        on_error: str = "raise",
    ):
        self.jobs = resolve_jobs(jobs)
        if cache is not None:
            self.cache = cache
        elif use_cache:
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = NullCache()
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.on_error = on_error
        self.stats = ExecStats()
        self._memory: Dict[str, RunResult] = {}
        #: ``spec -> Observation`` factory.  When set, every unique spec
        #: executes inline, in-process, bypassing both cache directions:
        #: disk results carry no trace ring, and traced results must not
        #: be written back where unobserved plans would pick them up.
        self.observe_factory = observe_factory
        self.observations: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        plan: Sequence[RunSpec],
        *,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        on_error: Optional[str] = None,
    ) -> Dict[RunSpec, Optional[RunResult]]:
        """Execute a plan; returns spec -> result for every input spec.

        Under ``on_error="skip"`` a failed spec maps to ``None`` and its
        failure is recorded in ``self.stats.failures``; under ``"raise"``
        (the default) every value is a :class:`RunResult`.
        """
        timeout_s = self.timeout_s if timeout_s is None else timeout_s
        retries = self.retries if retries is None else retries
        on_error = self.on_error if on_error is None else on_error
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        specs = list(plan)
        fingerprints = [spec.fingerprint for spec in specs]
        todo: Dict[str, RunSpec] = {}  # deduped fingerprint -> one spec
        for spec, fp in zip(specs, fingerprints):
            if fp in self._memory or fp in todo:
                self.stats.memory_hits += 1  # cached or deduped in-plan
            else:
                todo[fp] = spec

        if self.observe_factory is not None:
            self._run_observed(todo, timeout_s, retries, on_error)
        else:
            missing = self._load_from_disk(todo)
            if missing:
                if self.jobs > 1 and len(missing) > 1:
                    self._run_pool(missing, timeout_s, retries, on_error)
                else:
                    self._run_inline(missing, timeout_s, retries, on_error)
        return {
            spec: self._memory.get(fp)
            for spec, fp in zip(specs, fingerprints)
        }

    def run_one(self, spec: RunSpec, **policy) -> Optional[RunResult]:
        return self.run([spec], **policy)[spec]

    def observation_for(self, spec: RunSpec):
        """The Observation wired into ``spec``'s run (observed plans only)."""
        return self.observations.get(spec.fingerprint)

    def clear_memory(self) -> None:
        """Drop the in-memory result table (the disk cache survives)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def _load_from_disk(self, todo: Dict[str, RunSpec]) -> Dict[str, RunSpec]:
        missing: Dict[str, RunSpec] = {}
        for fp, spec in todo.items():
            payload = self.cache.get(fp)
            if payload is not None:
                try:
                    self._memory[fp] = deserialize_run_result(payload)
                    self.stats.disk_hits += 1
                    continue
                except (KeyError, ValueError, TypeError):
                    pass  # corrupt/stale entry: fall through and re-run
            missing[fp] = spec
        return missing

    def _store(self, spec: RunSpec, fp: str, result: RunResult,
               wall: float) -> None:
        self._memory[fp] = result
        self.stats.record_run(
            RunRecord(
                fingerprint=fp,
                label=spec.label(),
                wall_time=wall,
                sim_cycles=result.roi_cycles,
                sim_events=int(result.extra.get("sim_events", 0)),
            )
        )
        self.cache.put(
            fp,
            spec.canonical_payload(),
            serialize_run_result(result),
            meta={"wall_time": wall},
        )

    def _failure(self, spec: RunSpec, fp: str, error: BaseException,
                 attempts: int, wall: float) -> FailureRecord:
        record = FailureRecord(
            fingerprint=fp,
            label=spec.label(),
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
            wall_time=wall,
        )
        self.stats.record_failure(record)
        return record

    def _attempt_inline(
        self,
        fp: str,
        spec: RunSpec,
        timeout_s: Optional[float],
        retries: int,
        on_error: str,
        observe=None,
    ) -> None:
        """One spec through the retry/skip policy, in this process.

        Under ``on_error="raise"`` the *original* exception propagates
        (existing ``except DeadlockError`` callers keep working); the
        pool path wraps failures in :class:`ExecutorError` instead since
        there the original traceback lives in another process.
        """
        attempts = 0
        start = time.perf_counter()
        while True:
            attempts += 1
            try:
                result = execute_spec(spec, observe=observe,
                                      timeout_s=timeout_s)
            except Exception as error:
                if attempts <= retries and is_transient_error(error):
                    time.sleep(self.backoff_s * 2 ** (attempts - 1))
                    continue
                wall = time.perf_counter() - start
                if on_error == "skip":
                    self._failure(spec, fp, error, attempts, wall)
                    return
                raise
            wall = time.perf_counter() - start
            if observe is not None:
                self._memory[fp] = result
                self.observations[fp] = observe
                self.stats.record_run(
                    RunRecord(
                        fingerprint=fp,
                        label=spec.label(),
                        wall_time=wall,
                        sim_cycles=result.roi_cycles,
                        sim_events=int(result.extra.get("sim_events", 0)),
                    )
                )
            else:
                self._store(spec, fp, result, wall)
            return

    def _run_inline(self, missing: Dict[str, RunSpec],
                    timeout_s: Optional[float], retries: int,
                    on_error: str) -> None:
        for fp, spec in missing.items():
            self._attempt_inline(fp, spec, timeout_s, retries, on_error)

    def _run_observed(self, todo: Dict[str, RunSpec],
                      timeout_s: Optional[float], retries: int,
                      on_error: str) -> None:
        for fp, spec in todo.items():
            self._attempt_inline(fp, spec, timeout_s, retries, on_error,
                                 observe=self.observe_factory(spec))

    def _run_pool(self, missing: Dict[str, RunSpec],
                  timeout_s: Optional[float], retries: int,
                  on_error: str) -> None:
        workers = min(self.jobs, len(missing))
        starts = {fp: time.perf_counter() for fp in missing}
        attempts = {fp: 0 for fp in missing}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for fp, spec in missing.items():
                attempts[fp] = 1
                futures[pool.submit(_pool_worker, spec, timeout_s)] = (
                    fp, spec)
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    fp, spec = futures.pop(future)
                    error = future.exception()
                    if error is None:
                        _, payload, wall = future.result()
                        self._store(spec, fp,
                                    deserialize_run_result(payload), wall)
                        continue
                    if (attempts[fp] <= retries
                            and is_transient_error(error)):
                        time.sleep(self.backoff_s * 2 ** (attempts[fp] - 1))
                        attempts[fp] += 1
                        retry = pool.submit(_pool_worker, spec, timeout_s)
                        futures[retry] = (fp, spec)
                        pending.add(retry)
                        continue
                    wall = time.perf_counter() - starts[fp]
                    if on_error == "skip":
                        self._failure(spec, fp, error, attempts[fp], wall)
                        continue
                    for other in pending:
                        other.cancel()
                    raise ExecutorError(
                        f"worker failed for {spec.label()}: "
                        f"{type(error).__name__}: {error}",
                        fingerprint=fp,
                        spec_label=spec.label(),
                        worker_traceback=getattr(
                            error, "_repro_traceback", None),
                    ) from error
