"""Executor: fan a run plan out over processes, behind persistent caching.

The execution pipeline for a plan (a sequence of :class:`RunSpec`):

1. dedup specs by fingerprint (Figures 11/12 submit the same 24x4
   matrix — each distinct run simulates once);
2. satisfy what it can from the in-memory result table, then from the
   on-disk :class:`~repro.exec.cache.ResultCache`;
3. execute the remainder — in-process when ``jobs == 1`` (today's
   debuggable path), else on a ``ProcessPoolExecutor`` of ``jobs``
   workers, each re-running the simulation from its spec and shipping
   the result back through the versioned serialization layer;
4. write every fresh result through to the disk cache and record
   per-run observability (wall time, simulated cycles, events/sec).

``jobs`` defaults to the ``REPRO_JOBS`` environment variable, else 1;
``jobs=0`` means one worker per CPU.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..stats.metrics import RunResult
from ..stats.serialize import (
    RESULT_SCHEMA_VERSION,
    deserialize_run_result,
    serialize_run_result,
)
from .cache import NullCache, ResultCache
from .spec import RunSpec

#: environment override for the default worker count
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (0 = one per CPU), default 1."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return resolve_jobs(jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return default_jobs()
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


# ----------------------------------------------------------------------
# Spec execution (shared by the in-process path and pool workers)
# ----------------------------------------------------------------------
def execute_spec(spec: RunSpec, observe=None) -> RunResult:
    """Run one simulation exactly as its spec describes it.

    ``observe`` (a :class:`repro.obs.Observation`) wires observability
    into the assembled system; it never enters the spec's fingerprint —
    traced and untraced runs of one spec are bit-exact.
    """
    from ..system import ManyCoreSystem, run_benchmark

    cfg = spec.resolved_config()
    if spec.is_microbench:
        from ..workloads.generator import single_lock_workload

        home = spec.lock_homes[0] if spec.lock_homes else 53
        workload = single_lock_workload(
            num_threads=cfg.num_threads,
            home_node=home,
            **spec.microbench_params(),
        )
        system = ManyCoreSystem(
            cfg, workload, primitive=spec.primitive, observe=observe
        )
        return system.run(max_cycles=spec.max_cycles)
    return run_benchmark(
        spec.benchmark,
        mechanism=None,  # already resolved into cfg
        primitive=spec.primitive,
        config=cfg,
        seed=spec.seed,
        scale=spec.scale,
        lock_homes=spec.lock_homes,
        max_cycles=spec.max_cycles,
        observe=observe,
    )


def _pool_worker(spec: RunSpec) -> Tuple[str, Dict, float]:
    """Subprocess entry point: run, serialize, report wall time."""
    start = time.perf_counter()
    result = execute_spec(spec)
    wall = time.perf_counter() - start
    return spec.fingerprint, serialize_run_result(result), wall


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """Provenance of one executed (not cached) simulation."""

    fingerprint: str
    label: str
    wall_time: float
    sim_cycles: int
    sim_events: int

    @property
    def events_per_sec(self) -> float:
        return self.sim_events / self.wall_time if self.wall_time > 0 else 0.0


@dataclass
class ExecStats:
    """Counters the ``inpg-experiments`` footer reports."""

    executed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    wall_time: float = 0.0
    sim_cycles: int = 0
    sim_events: int = 0
    records: List[RunRecord] = field(default_factory=list)

    @property
    def requested(self) -> int:
        return self.executed + self.memory_hits + self.disk_hits

    @property
    def cache_hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requested if self.requested else 0.0

    def record_run(self, record: RunRecord) -> None:
        self.executed += 1
        self.wall_time += record.wall_time
        self.sim_cycles += record.sim_cycles
        self.sim_events += record.sim_events
        self.records.append(record)

    def render_footer(
        self, jobs: int = 1, cache_dir: Optional[str] = None
    ) -> str:
        """The summary block printed after an experiments invocation."""
        lines = ["--- run execution summary ---"]
        lines.append(
            f"runs: {self.requested} requested | executed: {self.executed} | "
            f"cache hits: {self.cache_hits} "
            f"({self.disk_hits} disk, {self.memory_hits} memory) | "
            f"hit rate: {100.0 * self.hit_rate:.1f}%"
        )
        rate = self.sim_events / self.wall_time if self.wall_time else 0.0
        lines.append(
            f"jobs: {jobs} | sim wall: {self.wall_time:.1f}s | "
            f"{self.sim_cycles:,} cycles, {self.sim_events:,} events "
            f"({rate / 1e6:.2f} Mev/s)"
        )
        if self.records:
            slowest = max(self.records, key=lambda r: r.wall_time)
            rates = [r.events_per_sec for r in self.records]
            lines.append(
                f"per-run rate: {min(rates) / 1e6:.2f}-{max(rates) / 1e6:.2f}"
                f" Mev/s | slowest: {slowest.label} "
                f"({slowest.wall_time:.1f}s)"
            )
        where = cache_dir if cache_dir else "disabled"
        lines.append(f"cache: {where} (schema v{RESULT_SCHEMA_VERSION})")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
class Executor:
    """Runs :class:`RunSpec` plans with caching and optional parallelism."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[Union[ResultCache, NullCache]] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        observe_factory=None,
    ):
        self.jobs = resolve_jobs(jobs)
        if cache is not None:
            self.cache = cache
        elif use_cache:
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = NullCache()
        self.stats = ExecStats()
        self._memory: Dict[str, RunResult] = {}
        #: ``spec -> Observation`` factory.  When set, every unique spec
        #: executes inline, in-process, bypassing both cache directions:
        #: disk results carry no trace ring, and traced results must not
        #: be written back where unobserved plans would pick them up.
        self.observe_factory = observe_factory
        self.observations: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def run(self, plan: Sequence[RunSpec]) -> Dict[RunSpec, RunResult]:
        """Execute a plan; returns spec -> result for every input spec."""
        specs = list(plan)
        fingerprints = [spec.fingerprint for spec in specs]
        todo: Dict[str, RunSpec] = {}  # deduped fingerprint -> one spec
        for spec, fp in zip(specs, fingerprints):
            if fp in self._memory or fp in todo:
                self.stats.memory_hits += 1  # cached or deduped in-plan
            else:
                todo[fp] = spec

        if self.observe_factory is not None:
            self._run_observed(todo)
        else:
            missing = self._load_from_disk(todo)
            if missing:
                if self.jobs > 1 and len(missing) > 1:
                    self._run_pool(missing)
                else:
                    self._run_inline(missing)
        return {
            spec: self._memory[fp] for spec, fp in zip(specs, fingerprints)
        }

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[spec]

    def observation_for(self, spec: RunSpec):
        """The Observation wired into ``spec``'s run (observed plans only)."""
        return self.observations.get(spec.fingerprint)

    def clear_memory(self) -> None:
        """Drop the in-memory result table (the disk cache survives)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def _load_from_disk(self, todo: Dict[str, RunSpec]) -> Dict[str, RunSpec]:
        missing: Dict[str, RunSpec] = {}
        for fp, spec in todo.items():
            payload = self.cache.get(fp)
            if payload is not None:
                try:
                    self._memory[fp] = deserialize_run_result(payload)
                    self.stats.disk_hits += 1
                    continue
                except (KeyError, ValueError, TypeError):
                    pass  # corrupt/stale entry: fall through and re-run
            missing[fp] = spec
        return missing

    def _store(self, spec: RunSpec, fp: str, result: RunResult,
               wall: float) -> None:
        self._memory[fp] = result
        self.stats.record_run(
            RunRecord(
                fingerprint=fp,
                label=spec.label(),
                wall_time=wall,
                sim_cycles=result.roi_cycles,
                sim_events=int(result.extra.get("sim_events", 0)),
            )
        )
        self.cache.put(
            fp,
            spec.canonical_payload(),
            serialize_run_result(result),
            meta={"wall_time": wall},
        )

    def _run_inline(self, missing: Dict[str, RunSpec]) -> None:
        for fp, spec in missing.items():
            start = time.perf_counter()
            result = execute_spec(spec)
            self._store(spec, fp, result, time.perf_counter() - start)

    def _run_observed(self, todo: Dict[str, RunSpec]) -> None:
        for fp, spec in todo.items():
            observe = self.observe_factory(spec)
            start = time.perf_counter()
            result = execute_spec(spec, observe=observe)
            wall = time.perf_counter() - start
            self._memory[fp] = result
            self.observations[fp] = observe
            self.stats.record_run(
                RunRecord(
                    fingerprint=fp,
                    label=spec.label(),
                    wall_time=wall,
                    sim_cycles=result.roi_cycles,
                    sim_events=int(result.extra.get("sim_events", 0)),
                )
            )

    def _run_pool(self, missing: Dict[str, RunSpec]) -> None:
        workers = min(self.jobs, len(missing))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_pool_worker, spec): (fp, spec)
                for fp, spec in missing.items()
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            for future in not_done:
                future.cancel()
            for future in done:
                fp, spec = futures[future]
                error = future.exception()
                if error is not None:
                    raise RuntimeError(
                        f"worker failed for {spec.label()}: {error}"
                    ) from error
                _, payload, wall = future.result()
                self._store(spec, fp, deserialize_run_result(payload), wall)
