"""RunSpec: a frozen, canonically-fingerprinted description of one run.

A :class:`RunSpec` captures *everything* that determines a simulation's
outcome — benchmark, primitive, scale, seed, lock placement, cycle
budget and the full resolved :class:`~repro.config.SystemConfig` — per
the deterministic kernel contract (:mod:`repro.sim.kernel`): a run is a
pure function of its spec.  The SHA-256 fingerprint over the canonical
JSON encoding of those fields is therefore a content address for the
result, used by both the in-memory and the on-disk caches.

Two specs that resolve to the same effective parameters share one
fingerprint even if they were phrased differently (e.g. ``config=None``
vs an explicit default config, or ``mechanism="inpg"`` vs a config with
the iNPG flags pre-baked), which is what lets Figures 11/12/13 reuse one
run matrix across invocations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional, TYPE_CHECKING, Tuple

from ..config import SystemConfig, config_from_dict, config_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.plan import FaultPlan

#: bump when the canonical payload below changes shape
SPEC_SCHEMA_VERSION = 1

#: sentinel benchmark name for the single-lock all-compete scenario
#: (paper Figure 10); ``lock_homes[0]`` is the lock's home node.
MICROBENCH = "microbench"

#: Figure 10's lock home — core (5, 6) on the 8x8 mesh.
DEFAULT_MICROBENCH_HOME = 53

#: ``single_lock_workload`` defaults, resolved into the fingerprint so a
#: spec that spells them out and one that relies on defaults coincide.
_MICROBENCH_DEFAULTS = {
    "cs_per_thread": 4,
    "cs_cycles": 100,
    "parallel_cycles": 200,
}


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one simulation.

    ``mechanism=None`` means "use ``config`` exactly as passed" (for
    callers that baked iNPG/OCOR flags in); otherwise the mechanism is
    applied on top of ``config`` (or the Table 1 defaults).

    ``benchmark=MICROBENCH`` selects the deterministic single-lock
    workload; ``cs_per_thread`` / ``cs_cycles`` / ``parallel_cycles``
    parameterize it (``None`` picks the generator defaults) and
    ``lock_homes`` pins its home node.

    The robustness knobs (``fault_plan``, ``watchdog_cycles``,
    ``check_protocol``) change what the simulation *does*, so they enter
    the canonical payload — but only when set, which keeps every
    pre-existing fingerprint (and thus every cached result) stable.
    """

    benchmark: str
    mechanism: Optional[str] = "original"
    primitive: str = "qsl"
    scale: float = 1.0
    seed: int = 2018
    lock_homes: Tuple[int, ...] = ()
    config: Optional[SystemConfig] = None
    max_cycles: int = 50_000_000
    cs_per_thread: Optional[int] = None
    cs_cycles: Optional[int] = None
    parallel_cycles: Optional[int] = None
    #: deterministic NoC fault injection (:class:`repro.faults.FaultPlan`)
    fault_plan: Optional["FaultPlan"] = None
    #: arm the liveness watchdog with this no-progress window (cycles)
    watchdog_cycles: Optional[int] = None
    #: attach the online coherence :class:`~repro.coherence.checker.ProtocolChecker`
    check_protocol: bool = False
    #: coherence protocol variant (``moesi`` / ``msi`` / ``mesi``);
    #: ``None`` keeps whatever ``config`` carries (MOESI by default)
    protocol: Optional[str] = None
    #: NoC topology (``mesh`` / ``torus`` / ``ring``); ``None`` keeps
    #: whatever ``config`` carries (the paper's mesh by default)
    topology: Optional[str] = None
    #: output-port arbiter (``rr`` / ``wrr``); ``None`` keeps whatever
    #: ``config`` carries (round-robin by default)
    arbiter: Optional[str] = None

    def __post_init__(self):
        # normalize so equal specs hash equally regardless of the
        # sequence type the caller used for lock placement
        object.__setattr__(self, "lock_homes", tuple(self.lock_homes))

    # ------------------------------------------------------------------
    @classmethod
    def microbench(
        cls,
        home_node: int = DEFAULT_MICROBENCH_HOME,
        cs_per_thread: int = 4,
        cs_cycles: int = 100,
        parallel_cycles: int = 200,
        **kwargs,
    ) -> "RunSpec":
        """The Figure 10 single-lock scenario as a spec."""
        return cls(
            benchmark=MICROBENCH,
            lock_homes=(home_node,),
            cs_per_thread=cs_per_thread,
            cs_cycles=cs_cycles,
            parallel_cycles=parallel_cycles,
            **kwargs,
        )

    @property
    def is_microbench(self) -> bool:
        return self.benchmark == MICROBENCH

    def resolved_config(self) -> SystemConfig:
        """The effective config: base (or defaults) + axes + mechanism."""
        base = self.config or SystemConfig()
        if self.protocol is not None and self.protocol != base.protocol:
            base = replace(base, protocol=self.protocol)
        noc_updates = {}
        if self.topology is not None and self.topology != base.noc.topology:
            noc_updates["topology"] = self.topology
        if self.arbiter is not None and self.arbiter != base.noc.arbiter:
            noc_updates["arbiter"] = self.arbiter
        if noc_updates:
            base = base.with_overrides(noc=noc_updates)
        if self.mechanism is None:
            return base
        return base.with_mechanism(self.mechanism)

    def microbench_params(self) -> Dict[str, int]:
        """Workload-generator kwargs with defaults resolved."""
        return {
            name: getattr(self, name) if getattr(self, name) is not None
            else default
            for name, default in _MICROBENCH_DEFAULTS.items()
        }

    # ------------------------------------------------------------------
    # Wire round-trip (the serve proto and anything else that ships
    # specs across a network or process boundary)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Lossless JSON-compatible encoding of this spec *as phrased*.

        Unlike :meth:`canonical_payload` (which resolves the mechanism
        into the config and elides defaults to keep fingerprints
        stable), this keeps every field the caller set, so
        :meth:`from_dict` rebuilds an **equal** spec — same fields, same
        fingerprint, same label.  Optional fields are present only when
        set, keeping payloads small and forward-readable.
        """
        out: Dict = {
            "benchmark": self.benchmark,
            "mechanism": self.mechanism,
            "primitive": self.primitive,
            "scale": float(self.scale),
            "seed": self.seed,
            "max_cycles": self.max_cycles,
        }
        if self.lock_homes:
            out["lock_homes"] = list(self.lock_homes)
        if self.config is not None:
            out["config"] = config_to_dict(self.config)
        for name in ("cs_per_thread", "cs_cycles", "parallel_cycles",
                     "watchdog_cycles", "protocol", "topology", "arbiter"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.check_protocol:
            out["check_protocol"] = True
        if self.fault_plan is not None and self.fault_plan.enabled:
            out["fault_plan"] = self.fault_plan.canonical_payload()
        return out

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunSpec":
        """Inverse of :meth:`to_dict` (bit-identical fingerprint)."""
        data = dict(payload)
        if "config" in data:
            data["config"] = config_from_dict(data["config"])
        if "lock_homes" in data:
            data["lock_homes"] = tuple(data["lock_homes"])
        if "fault_plan" in data:
            from ..faults.plan import FAULT_SCHEMA_VERSION, FaultPlan, FaultSite

            plan = data["fault_plan"]
            schema = plan.get("schema")
            if schema != FAULT_SCHEMA_VERSION:
                raise ValueError(
                    f"fault plan payload has schema {schema!r}, "
                    f"expected {FAULT_SCHEMA_VERSION}"
                )
            data["fault_plan"] = FaultPlan(
                sites=tuple(FaultSite(**site) for site in plan["sites"]),
                seed=plan["seed"],
            )
        return cls(**data)

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def canonical_payload(self) -> Dict:
        """Everything that determines the result, mechanism resolved."""
        payload = {
            "schema": SPEC_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "primitive": self.primitive,
            "scale": float(self.scale),
            "seed": self.seed,
            "lock_homes": list(self.lock_homes),
            "max_cycles": self.max_cycles,
            "config": asdict(self.resolved_config()),
        }
        # the default protocol is elided so every pre-protocol-axis
        # fingerprint (= cache address) and golden stays valid; a
        # non-default protocol is a different run and addresses itself
        if payload["config"].get("protocol") == "moesi":
            del payload["config"]["protocol"]
        # same treatment for the flit-engine axis: the default event
        # engine keeps pre-axis fingerprints; "vector" is bit-exact but
        # addresses itself (distinct cache entries, honest provenance)
        if payload["config"]["noc"].get("flit_engine") == "event":
            del payload["config"]["noc"]["flit_engine"]
        # shard count: 1 is the pre-sharding behaviour on every engine,
        # so it is elided to keep all legacy fingerprints; a multi-shard
        # run is bit-exact with the vector engine but addresses itself
        if payload["config"]["noc"].get("shards", 1) == 1:
            payload["config"]["noc"].pop("shards", None)
        # topology/arbiter axes, same elide-the-default convention; WRR
        # weights are inert under the default round-robin arbiter, so
        # they only address themselves when the WRR arbiter reads them
        noc = payload["config"]["noc"]
        if noc.get("topology") == "mesh":
            del noc["topology"]
        if noc.get("arbiter") == "rr":
            del noc["arbiter"]
            noc.pop("wrr_weights", None)
        # big-router placement: the paper's evenly-spread deployment is
        # the pre-axis behaviour, so the default keeps fingerprints
        if payload["config"]["inpg"].get("placement") == "spread":
            del payload["config"]["inpg"]["placement"]
        if self.is_microbench:
            payload["workload"] = self.microbench_params()
        # robustness knobs: keys exist only when active so legacy
        # fingerprints (= cache addresses) are untouched
        if self.fault_plan is not None and self.fault_plan.enabled:
            payload["faults"] = self.fault_plan.canonical_payload()
        if self.watchdog_cycles:
            payload["watchdog_cycles"] = int(self.watchdog_cycles)
        if self.check_protocol:
            payload["check_protocol"] = True
        return payload

    @property
    def fingerprint(self) -> str:
        """SHA-256 content address over the canonical payload."""
        blob = json.dumps(
            self.canonical_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable identity for logs and errors."""
        mech = self.mechanism if self.mechanism is not None else "custom-cfg"
        text = (
            f"{self.benchmark}[{mech}/{self.primitive}"
            f" scale={self.scale} seed={self.seed}"
        )
        resolved = self.resolved_config()
        if resolved.protocol != "moesi":
            text += f" protocol={resolved.protocol}"
        if resolved.noc.topology != "mesh":
            text += f" topology={resolved.noc.topology}"
        if resolved.noc.arbiter != "rr":
            text += f" arbiter={resolved.noc.arbiter}"
        if resolved.noc.shards > 1:
            text += f" shards={resolved.noc.shards}"
        if self.fault_plan is not None and self.fault_plan.enabled:
            text += f" faults={self.fault_plan.describe()}"
        return text + "]"
