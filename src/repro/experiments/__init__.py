"""Experiment harnesses: one module per table/figure in the paper.

======================  ==============================================
Module                  Paper content
======================  ==============================================
``table1_config``       Table 1 — platform configuration
``fig02_lco``           Figure 2 — LCO share per primitive
``fig07_synthesis``     Figure 7 — router synthesis accounting
``fig08_cs_chars``      Figure 8 — CS characteristics and groups
``fig09_timing_profile`` Figure 9 — freqmine phase timing profile
``fig10_rtt``           Figure 10 — Inv-Ack round-trip delays
``fig11_cs_expedition`` Figure 11 — CS expedition by mechanism
``fig12_roi``           Figure 12 — ROI finish time by mechanism
``fig13_primitives``    Figure 13 — iNPG per locking primitive
``fig14_deployment``    Figure 14 — big-router deployment sweep
``fig15_sensitivity``   Figure 15 — mesh size and table size sweep
``ablation_lco``        LCO ablation (beyond-paper knobs)
``ablation_protocol``   protocol family ablation (beyond-paper)
``ablation_topology``   topology/placement ablation (beyond-paper)
======================  ==============================================
"""

from . import (
    ablation_lco,
    ablation_protocol,
    ablation_topology,
    fig02_lco,
    fig07_synthesis,
    fig08_cs_chars,
    fig09_timing_profile,
    fig10_rtt,
    fig11_cs_expedition,
    fig12_roi,
    fig13_primitives,
    fig14_deployment,
    fig15_sensitivity,
    table1_config,
)
from .common import (
    ExperimentOptions,
    benchmarks_for,
    cached_run,
    clear_cache,
    execute,
    format_table,
    get_executor,
    resolve_options,
    run_mechanism_matrix,
    set_executor,
)
from .sweep import Sweep, SweepPoint, vary

__all__ = [
    "ExperimentOptions",
    "ablation_lco",
    "ablation_protocol",
    "ablation_topology",
    "benchmarks_for",
    "cached_run",
    "execute",
    "resolve_options",
    "get_executor",
    "run_mechanism_matrix",
    "set_executor",
    "clear_cache",
    "fig02_lco",
    "fig07_synthesis",
    "fig08_cs_chars",
    "fig09_timing_profile",
    "fig10_rtt",
    "fig11_cs_expedition",
    "fig12_roi",
    "fig13_primitives",
    "fig14_deployment",
    "fig15_sensitivity",
    "format_table",
    "Sweep",
    "SweepPoint",
    "table1_config",
    "vary",
]
