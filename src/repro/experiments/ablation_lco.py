"""Ablation: how substrate choices move the baseline LCO and iNPG's gain.

Not a paper figure — this quantifies DESIGN.md §5's central observation:
the spinning discipline (raw test_and_set vs test-and-test-and-set) and
the directory's treatment of doomed swaps (full transactions vs NACKs)
together set the size of the lock-coherence-overhead pool that iNPG can
harvest.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from ..config import CacheConfig, LockSpinConfig, SystemConfig
from ..exec import RunSpec
from .common import (
    ExperimentOptions,
    execute,
    format_table,
    resolve_options,
)

#: (label, raw_spin, directory_nacks)
VARIANTS: Tuple[Tuple[str, bool, bool], ...] = (
    ("raw spin, no NACKs (paper baseline)", True, False),
    ("raw spin, directory NACKs", True, True),
    ("TTAS, no NACKs", False, False),
    ("TTAS, directory NACKs", False, True),
)


@dataclass
class AblationRow:
    label: str
    baseline_roi: int
    baseline_lco: float
    inpg_roi: int
    inpg_gain: float


@dataclass
class AblationResult:
    rows: List[AblationRow] = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            [r.label, r.baseline_roi, 100 * r.baseline_lco, r.inpg_roi,
             100 * r.inpg_gain]
            for r in self.rows
        ]
        return format_table(
            ["baseline variant", "ROI (orig)", "LCO %", "ROI (iNPG)",
             "iNPG gain %"],
            table_rows,
            title="Ablation: baseline protocol choices vs iNPG's leverage "
                  "(64 threads, one TAS lock)",
        )


def _spec(raw_spin: bool, nacks: bool, mechanism: str) -> RunSpec:
    cfg = SystemConfig(
        spin=LockSpinConfig(raw_spin=raw_spin),
        cache=CacheConfig(directory_nacks=nacks),
    )
    return RunSpec.microbench(
        home_node=53, cs_per_thread=2, cs_cycles=100, parallel_cycles=300,
        mechanism=mechanism, primitive="tas", config=cfg,
        max_cycles=60_000_000,
    )


def run(options: "ExperimentOptions" = None) -> AblationResult:
    opts = resolve_options(options)
    result = AblationResult()
    specs = {
        (label, mech): _spec(raw_spin, nacks, mech)
        for label, raw_spin, nacks in VARIANTS
        for mech in ("original", "inpg")
    }
    results = execute(list(specs.values()), options=opts)
    for label, raw_spin, nacks in VARIANTS:
        base = results[specs[(label, "original")]]
        inpg = results[specs[(label, "inpg")]]
        if base is None or inpg is None:
            continue  # on_error="skip": drop the partial row
        result.rows.append(
            AblationRow(
                label=label,
                baseline_roi=base.roi_cycles,
                baseline_lco=base.lco_fraction,
                inpg_roi=inpg.roi_cycles,
                inpg_gain=1.0 - inpg.roi_cycles / base.roi_cycles,
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
