"""Protocol ablation: is iNPG's win MOESI-specific, or protocol-robust?

The paper's platform fixes directory MOESI (Section 3.1), which leaves
open whether the critical-section acceleration depends on the protocol
or only on *where* invalidations are generated.  This harness reruns the
Figure 12-style contention sweep (ROI finish time, Original vs iNPG)
under each protocol in the family (``repro.coherence.protocol``) and
compares the relative iNPG reduction per protocol: if the reductions
agree, the win comes from in-network packet generation, not from MOESI's
O-state forwarding behaviour.

MOESI rows reuse the cached Figure 11/12 runs (the default protocol is
elided from the run fingerprint); MSI/MESI rows are fresh simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..config import PROTOCOL_NAMES
from ..exec import RunSpec
from .common import (
    ExperimentOptions,
    arithmetic_mean,
    execute,
    format_table,
    resolve_options,
)

#: the two-case comparison each protocol reruns (the full four-mechanism
#: matrix adds nothing to the protocol question and doubles the cost)
ABLATION_MECHANISMS = ("original", "inpg")


@dataclass
class ProtocolAblationResult:
    #: ROI cycles per (protocol, benchmark, mechanism)
    roi_cycles: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    protocols: Tuple[str, ...] = PROTOCOL_NAMES

    def relative_roi(self, protocol: str, bench: str) -> Optional[float]:
        """iNPG ROI relative to Original (1.0 = no change) under one
        protocol, or ``None`` when either run failed/was skipped."""
        base = self.roi_cycles.get((protocol, bench, "original"))
        inpg = self.roi_cycles.get((protocol, bench, "inpg"))
        if not base or inpg is None:
            return None
        return inpg / base

    def benchmarks(self) -> Tuple[str, ...]:
        return tuple(sorted({b for (_p, b, _m) in self.roi_cycles}))

    def average_reduction(self, protocol: str) -> float:
        """Mean iNPG ROI reduction across benchmarks for one protocol."""
        ratios = [
            r for r in (
                self.relative_roi(protocol, b) for b in self.benchmarks()
            ) if r is not None
        ]
        return 1.0 - arithmetic_mean(ratios) if ratios else 0.0

    def spread(self) -> float:
        """Max pairwise difference of the per-protocol avg reductions —
        small spread == the iNPG win is protocol-robust."""
        reductions = [self.average_reduction(p) for p in self.protocols]
        return max(reductions) - min(reductions) if reductions else 0.0

    def render(self) -> str:
        headers = ["benchmark"] + [
            f"{proto} {col}"
            for proto in self.protocols
            for col in ("orig kcyc", "inpg %")
        ]
        rows = []
        for bench in self.benchmarks():
            row: list = [bench]
            for proto in self.protocols:
                base = self.roi_cycles.get((proto, bench, "original"))
                rel = self.relative_roi(proto, bench)
                row.append(base / 1000.0 if base else "-")
                row.append(100.0 * rel if rel is not None else "-")
            rows.append(row)
        rows.append(
            ["== average =="]
            + [
                cell
                for proto in self.protocols
                for cell in ("", 100.0 * (1.0 - self.average_reduction(proto)))
            ]
        )
        table = format_table(
            headers, rows,
            title="Protocol ablation: iNPG ROI relative to Original (100%)",
        )
        lines = [table, ""]
        for proto in self.protocols:
            lines.append(
                f"{proto}: avg iNPG ROI reduction "
                f"{100.0 * self.average_reduction(proto):.1f}%"
            )
        lines.append(
            f"spread across protocols: {100.0 * self.spread():.1f} pp "
            "(small spread == the win is where invalidations are "
            "generated, not the protocol)"
        )
        return "\n".join(lines)


def run(options: "ExperimentOptions" = None, *, scale: float = None,
        quick: bool = None) -> ProtocolAblationResult:
    opts = resolve_options(options, quick=quick, scale=scale)
    benches = opts.benchmarks()
    protocols = (
        (opts.protocol,) if opts.protocol is not None else PROTOCOL_NAMES
    )
    specs = {
        (proto, bench, mech): RunSpec(
            benchmark=bench,
            mechanism=mech,
            primitive="qsl",
            scale=opts.scale,
            protocol=proto,
        )
        for proto in protocols
        for bench in benches
        for mech in ABLATION_MECHANISMS
    }
    # one flat plan: the shared executor dedups/caches/parallelizes, and
    # the moesi rows hit the same cache entries as fig11/fig12
    results = execute(list(specs.values()), options=opts)
    out = ProtocolAblationResult(protocols=tuple(protocols))
    for key, spec in specs.items():
        result = results[spec]
        if result is not None:
            out.roi_cycles[key] = result.roi_cycles
    return out


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentOptions(quick=False)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
