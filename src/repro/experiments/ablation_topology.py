"""Topology/placement ablation: where should the big routers go?

The paper evaluates iNPG on one fabric — the 8x8 XY mesh — with the big
routers interleaved (Figure 3), and explicitly leaves placement as an
open question.  This harness reruns the Figure 12-style comparison (ROI
finish time, Original vs iNPG) on every topology of the family
(``repro.noc.topology``: mesh, torus, ring) and, per topology, under
every big-router placement strategy (``repro.inpg.deployment``: spread /
center / perimeter).  Two readings come out of the table:

* the **per-topology reduction** — does iNPG's win survive fabrics whose
  lock-request paths differ from the mesh's XY routes?
* the **placement sensitivity** — the max-min spread of the reduction
  across placements within one topology.  A large spread on the mesh
  (the center nodes see most XY traffic) versus a small one on the torus
  (every node is equally central) quantifies how much placement matters
  per fabric.

Mesh/spread rows reuse the cached Figure 11/12 runs (the default
topology and placement are elided from the run fingerprint); every other
cell is a fresh simulation that addresses itself in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..config import PLACEMENTS, TOPOLOGIES, SystemConfig
from ..exec import RunSpec
from .common import (
    ExperimentOptions,
    arithmetic_mean,
    execute,
    format_table,
    resolve_options,
)

#: the two-case comparison each (topology, placement) cell reruns
ABLATION_MECHANISMS = ("original", "inpg")

#: placement marker for Original rows (no big routers to place)
NO_PLACEMENT = "-"


@dataclass
class TopologyAblationResult:
    #: ROI cycles per (topology, placement, benchmark, mechanism);
    #: Original rows carry ``NO_PLACEMENT``
    roi_cycles: Dict[Tuple[str, str, str, str], int] = field(
        default_factory=dict
    )
    topologies: Tuple[str, ...] = TOPOLOGIES
    placements: Tuple[str, ...] = PLACEMENTS

    def benchmarks(self) -> Tuple[str, ...]:
        return tuple(sorted({b for (_t, _p, b, _m) in self.roi_cycles}))

    def relative_roi(
        self, topology: str, placement: str, bench: str
    ) -> Optional[float]:
        """iNPG ROI relative to Original (1.0 = no change) for one cell,
        or ``None`` when either run failed/was skipped."""
        base = self.roi_cycles.get(
            (topology, NO_PLACEMENT, bench, "original")
        )
        inpg = self.roi_cycles.get((topology, placement, bench, "inpg"))
        if not base or inpg is None:
            return None
        return inpg / base

    def average_reduction(self, topology: str, placement: str) -> float:
        """Mean iNPG ROI reduction across benchmarks for one cell."""
        ratios = [
            r for r in (
                self.relative_roi(topology, placement, b)
                for b in self.benchmarks()
            ) if r is not None
        ]
        return 1.0 - arithmetic_mean(ratios) if ratios else 0.0

    def placement_sensitivity(self, topology: str) -> float:
        """Max-min spread of the reduction across placements — how much
        big-router placement matters on this fabric."""
        reductions = [
            self.average_reduction(topology, p) for p in self.placements
        ]
        return max(reductions) - min(reductions) if reductions else 0.0

    def _mean_roi(
        self, topology: str, placement: str, mechanism: str
    ) -> Optional[float]:
        cycles = [
            self.roi_cycles[(topology, placement, b, mechanism)]
            for b in self.benchmarks()
            if (topology, placement, b, mechanism) in self.roi_cycles
        ]
        return arithmetic_mean(cycles) if cycles else None

    def render(self) -> str:
        headers = [
            "topology", "placement", "orig kcyc", "inpg kcyc", "inpg %",
            "reduction %",
        ]
        rows = []
        for topo in self.topologies:
            base = self._mean_roi(topo, NO_PLACEMENT, "original")
            for placement in self.placements:
                inpg = self._mean_roi(topo, placement, "inpg")
                reduction = self.average_reduction(topo, placement)
                rows.append([
                    topo,
                    placement,
                    base / 1000.0 if base else "-",
                    inpg / 1000.0 if inpg is not None else "-",
                    100.0 * (1.0 - reduction),
                    100.0 * reduction,
                ])
        table = format_table(
            headers, rows,
            title=(
                "Topology/placement ablation: iNPG ROI relative to "
                "Original (100%), averaged over benchmarks"
            ),
        )
        lines = [table, ""]
        for topo in self.topologies:
            lines.append(
                f"{topo}: placement sensitivity "
                f"{100.0 * self.placement_sensitivity(topo):.1f} pp "
                f"(max-min reduction across {'/'.join(self.placements)})"
            )
        return "\n".join(lines)


def _inpg_config(placement: str) -> Optional[SystemConfig]:
    """Config for an iNPG row; the default placement stays ``None`` so
    mesh/spread cells share fingerprints with the fig11/fig12 matrix."""
    if placement == "spread":
        return None
    return SystemConfig().with_overrides(inpg={"placement": placement})


def run(options: "ExperimentOptions" = None, *, scale: float = None,
        quick: bool = None,
        benchmarks: Optional[Tuple[str, ...]] = None,
        ) -> TopologyAblationResult:
    opts = resolve_options(options, quick=quick, scale=scale)
    benches = tuple(benchmarks) if benchmarks else opts.benchmarks()
    topologies = (
        (opts.topology,) if opts.topology is not None else TOPOLOGIES
    )
    specs: Dict[Tuple[str, str, str, str], RunSpec] = {}
    for topo in topologies:
        # the axis value enters the spec explicitly; the default mesh is
        # elided from the fingerprint so those rows stay cache-shared
        for bench in benches:
            specs[(topo, NO_PLACEMENT, bench, "original")] = RunSpec(
                benchmark=bench,
                mechanism="original",
                primitive="qsl",
                scale=opts.scale,
                topology=topo,
            )
            for placement in PLACEMENTS:
                specs[(topo, placement, bench, "inpg")] = RunSpec(
                    benchmark=bench,
                    mechanism="inpg",
                    primitive="qsl",
                    scale=opts.scale,
                    topology=topo,
                    config=_inpg_config(placement),
                )
    # one flat plan: the shared executor dedups/caches/parallelizes
    results = execute(list(specs.values()), options=opts)
    out = TopologyAblationResult(topologies=tuple(topologies))
    for key, spec in specs.items():
        result = results[spec]
        if result is not None:
            out.roi_cycles[key] = result.roi_cycles
    return out


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentOptions(quick=False)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
