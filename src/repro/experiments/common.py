"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes ``run(...) -> <FigureResult>`` returning a
structured result, plus ``main()`` that prints the same rows/series the
paper's figure reports.

Simulations are never run directly: each harness builds a plan of
:class:`~repro.exec.RunSpec` values and submits it through a shared
:class:`~repro.exec.Executor` (see :func:`execute`), which dedups
identical runs, caches results in memory and on disk (``.repro-cache/``
/ ``REPRO_CACHE_DIR``), and fans fresh work out over ``REPRO_JOBS``
worker processes.  Figures that share runs (11 and 12 use the same 24x4
matrix) therefore hit the cache instead of recomputing, within *and*
across invocations.

Scaling: the ``scale`` knob multiplies per-thread CS counts; ``quick``
restricts benchmark sweeps to a representative subset (two programs per
Figure 8 group) so the pytest-benchmark suite stays fast.  Set the
environment variable ``REPRO_FULL=1`` (or pass ``quick=False``) to sweep
all 24 programs as the paper does.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..config import MECHANISMS, SystemConfig
from ..exec import Executor, RunSpec
from ..stats.metrics import RunResult
from ..workloads.profiles import ALL_PROFILES, group_of, grouped_profiles

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.plan import FaultPlan

#: process-wide executor all harnesses share (lazily constructed so the
#: environment knobs are read at first use, not import)
_EXECUTOR: Optional[Executor] = None


def get_executor() -> Executor:
    """The shared executor (created on first use from the environment)."""
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = Executor()
    return _EXECUTOR


def set_executor(executor: Executor) -> Executor:
    """Install a configured executor (CLI flags, tests)."""
    global _EXECUTOR
    _EXECUTOR = executor
    return executor


@dataclass(frozen=True)
class ExperimentOptions:
    """The knobs every figure harness shares, in one keyword-only value.

    Historically each ``run()`` grew its own ``quick=``/``scale=``
    defaults; the unified signature is ``run(options=None, *, ...)``
    with per-figure extras staying keyword-only.  The legacy ``quick=``
    and ``scale=`` keywords completed their deprecation cycle and now
    raise a :class:`TypeError` with migration instructions (see
    :func:`resolve_options`).

    The robustness knobs ride here too, so fault campaigns and resilient
    sweeps configure ``simulate()`` / ``run_plan()`` / every ``fig*``
    harness through one path: ``fault_plan`` and ``watchdog_cycles``
    overlay onto any spec that does not set its own, while ``timeout_s``
    / ``retries`` / ``on_error`` are pure execution policy (``None`` =
    the executor's configured default).
    """

    #: representative 6-benchmark subset (False sweeps all 24 programs)
    quick: bool = True
    #: per-thread CS count multiplier
    scale: float = 1.0
    #: workload generation seed (the paper runs pin 2018)
    seed: int = 2018
    #: deterministic NoC fault injection (:class:`repro.faults.FaultPlan`)
    fault_plan: Optional["FaultPlan"] = None
    #: liveness-watchdog no-progress window (cycles); None = disarmed
    watchdog_cycles: Optional[int] = None
    #: attach the online coherence protocol checker to every run
    check_protocol: bool = False
    #: coherence protocol variant for every run that does not pin its
    #: own (``moesi`` / ``msi`` / ``mesi``); ``None`` = spec default
    protocol: Optional[str] = None
    #: NoC topology for every run that does not pin its own
    #: (``mesh`` / ``torus`` / ``ring``); ``None`` = spec default
    topology: Optional[str] = None
    #: output-port arbiter for every run that does not pin its own
    #: (``rr`` / ``wrr``); ``None`` = spec default
    arbiter: Optional[str] = None
    #: flit-level engine (``event`` / ``vector``) for every run whose
    #: config does not already run flit-level; implies
    #: ``noc.flit_level``, so mechanisms needing the packet model (iNPG)
    #: raise their usual structured errors
    flit_engine: Optional[str] = None
    #: row-band worker count for the sharded flit engine; only
    #: meaningful with ``flit_engine="sharded"`` (``NocConfig`` refuses
    #: other combinations); ``None`` = single process
    shards: Optional[int] = None
    #: per-run wall-clock budget (seconds); a timed-out run raises
    #: :class:`~repro.errors.RunTimeout` and is never cached
    timeout_s: Optional[float] = None
    #: bounded retry count for *transient* (infra) worker failures
    retries: Optional[int] = None
    #: ``"raise"`` propagates the first failure; ``"skip"`` returns
    #: partial results with failures recorded in the execution summary
    on_error: Optional[str] = None

    def benchmarks(self) -> List[str]:
        return benchmarks_for(self.quick)

    def apply_to_spec(self, spec: RunSpec) -> RunSpec:
        """Overlay the robustness knobs onto ``spec``.

        A spec's own ``fault_plan`` / ``watchdog_cycles`` /
        ``check_protocol`` always win — the overlay fills gaps only, so
        harness-built plans can pin per-run fault scenarios while the
        campaign sets the sweep-wide default.
        """
        updates = {}
        if self.fault_plan is not None and spec.fault_plan is None:
            updates["fault_plan"] = self.fault_plan
        if self.watchdog_cycles is not None and spec.watchdog_cycles is None:
            updates["watchdog_cycles"] = self.watchdog_cycles
        if self.check_protocol and not spec.check_protocol:
            updates["check_protocol"] = True
        if self.protocol is not None and spec.protocol is None:
            updates["protocol"] = self.protocol
        if self.topology is not None and spec.topology is None:
            updates["topology"] = self.topology
        if self.arbiter is not None and spec.arbiter is None:
            updates["arbiter"] = self.arbiter
        if self.flit_engine is not None:
            cfg = spec.config or SystemConfig()
            if not cfg.noc.flit_level:
                noc = {"flit_level": True, "flit_engine": self.flit_engine}
                if self.shards is not None:
                    noc["shards"] = self.shards
                updates["config"] = cfg.with_overrides(noc=noc)
        return replace(spec, **updates) if updates else spec

    def executor_policy(self) -> Dict[str, object]:
        """The per-call :meth:`repro.exec.Executor.run` policy kwargs."""
        return {
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "on_error": self.on_error,
        }


def resolve_options(
    options: Optional[ExperimentOptions] = None,
    *,
    quick: Optional[bool] = None,
    scale: Optional[float] = None,
) -> ExperimentOptions:
    """Resolve the harness options, rejecting the removed legacy kwargs.

    The ``quick=``/``scale=`` keywords went through a deprecation cycle
    (accepted with a ``DeprecationWarning`` through the previous
    releases); they now fail loudly with migration instructions.  The
    parameters stay in every ``run()`` signature so old call sites get
    this message instead of an opaque unexpected-keyword ``TypeError``.
    """
    opts = options if options is not None else ExperimentOptions()
    if quick is not None or scale is not None:
        passed = ", ".join(
            f"{name}={value!r}"
            for name, value in (("quick", quick), ("scale", scale))
            if value is not None
        )
        raise TypeError(
            f"the quick=/scale= keywords were removed after their "
            f"deprecation cycle; replace run({passed}) with "
            f"run(ExperimentOptions({passed})) "
            f"(from repro.experiments.common import ExperimentOptions)"
        )
    return opts


def execute(
    plan: Sequence[RunSpec],
    *,
    options: Optional[ExperimentOptions] = None,
) -> Dict[RunSpec, Optional[RunResult]]:
    """Run a plan through the shared executor.

    ``options`` is the harness's resolved :class:`ExperimentOptions`;
    its robustness knobs overlay onto each spec (spec wins) and its
    execution policy rides into the shared executor for this call.  The
    returned dict is keyed by the *caller's* spec objects, so harnesses
    index with the specs they built even when the overlay rewrote them.
    Under ``on_error="skip"`` failed specs map to ``None``.
    """
    opts = options if options is not None else ExperimentOptions()
    specs = list(plan)
    effective = [opts.apply_to_spec(spec) for spec in specs]
    results = get_executor().run(effective, **opts.executor_policy())
    return {orig: results[eff] for orig, eff in zip(specs, effective)}


def full_sweep_enabled() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def benchmarks_for(quick: bool) -> List[str]:
    """All 24 programs, or a representative 6 (two per group) when quick."""
    if not quick:
        return [p.name for p in ALL_PROFILES]
    groups = grouped_profiles()
    picks: List[str] = []
    for group in (1, 2, 3):
        members = groups[group]
        picks.append(members[0].name)
        picks.append(members[-1].name)
    return picks


def cached_run(
    benchmark: str,
    mechanism: str,
    primitive: str = "qsl",
    scale: float = 1.0,
    seed: int = 2018,
    config: Optional[SystemConfig] = None,
    lock_homes: Sequence[int] = (),
) -> RunResult:
    """Run (or reuse) one simulation.

    Thin convenience over a one-spec plan; sweeps should build the whole
    plan and call :func:`execute` once so independent runs parallelize.
    """
    return get_executor().run_one(
        RunSpec(
            benchmark=benchmark,
            mechanism=mechanism,
            primitive=primitive,
            scale=scale,
            seed=seed,
            config=config,
            lock_homes=tuple(lock_homes),
        )
    )


def clear_cache() -> None:
    """Drop the in-memory result table (the disk cache survives)."""
    get_executor().clear_memory()


def run_mechanism_matrix(
    benchmarks: Optional[Sequence[str]] = None,
    mechanisms: Sequence[str] = MECHANISMS,
    primitive: str = "qsl",
    scale: Optional[float] = None,
    config: Optional[SystemConfig] = None,
    *,
    options: Optional[ExperimentOptions] = None,
) -> Dict[Tuple[str, str], Optional[RunResult]]:
    """The paper's four-case comparison over a benchmark list.

    ``benchmarks``/``scale`` default from ``options`` when omitted.
    Under ``options.on_error == "skip"`` a failed run's cell is ``None``.
    """
    opts = options if options is not None else ExperimentOptions()
    if benchmarks is None:
        benchmarks = opts.benchmarks()
    if scale is None:
        scale = opts.scale
    specs = {
        (bench, mech): RunSpec(
            benchmark=bench,
            mechanism=mech,
            primitive=primitive,
            scale=scale,
            config=config,
        )
        for bench in benchmarks
        for mech in mechanisms
    }
    results = execute(list(specs.values()), options=opts)
    return {key: results[spec] for key, spec in specs.items()}


# ----------------------------------------------------------------------
# Aggregation helpers
# ----------------------------------------------------------------------
def arithmetic_mean(values: Iterable[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def by_group(benchmarks: Sequence[str]) -> Dict[int, List[str]]:
    """Partition a benchmark list by the Figure 8 groups."""
    out: Dict[int, List[str]] = {1: [], 2: [], 3: []}
    for bench in benchmarks:
        out[group_of(bench)].append(bench)
    return out


# ----------------------------------------------------------------------
# Plain-text table rendering
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
