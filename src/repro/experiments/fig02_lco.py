"""Figure 2: percentage of LCO in application running time.

The paper measures lock coherence overhead (LCO) as a fraction of runtime
for kdtree (OMP2012), facesim and fluidanimate (PARSEC) under each of the
five locking primitives on the baseline 64-core platform, finding TAS
worst, then TTL/ABQL, with MCS/QSL lowest (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..exec import RunSpec
from ..locks.factory import PRIMITIVES
from .common import (
    ExperimentOptions,
    execute,
    format_table,
    resolve_options,
)

#: paper's motivational benchmark trio
BENCHMARKS = ("kdtree", "facesim", "fluidanimate")

#: paper display names per primitive
PRIMITIVE_LABELS = {
    "tas": "TAS",
    "ticket": "TTL",
    "abql": "ABQL",
    "mcs": "MCS",
    "qsl": "QSL",
}

#: paper-reported LCO fractions for the record (Section 2.2 text)
PAPER_LCO = {
    ("kdtree", "tas"): 0.50, ("kdtree", "ticket"): 0.31,
    ("kdtree", "abql"): 0.27, ("kdtree", "mcs"): 0.14,
    ("kdtree", "qsl"): 0.17,
    ("fluidanimate", "tas"): 0.65, ("fluidanimate", "ticket"): 0.47,
    ("fluidanimate", "abql"): 0.50, ("fluidanimate", "mcs"): 0.20,
    ("fluidanimate", "qsl"): 0.25,
    ("facesim", "tas"): 0.90, ("facesim", "ticket"): 0.57,
    ("facesim", "abql"): 0.56, ("facesim", "mcs"): 0.30,
    ("facesim", "qsl"): 0.32,
}


@dataclass
class Fig2Result:
    #: measured LCO fraction per (benchmark, primitive)
    lco: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        out = []
        for bench, per_prim in self.lco.items():
            for prim, frac in per_prim.items():
                paper = PAPER_LCO.get((bench, prim))
                out.append([
                    bench,
                    PRIMITIVE_LABELS[prim],
                    100.0 * frac,
                    100.0 * paper if paper is not None else "-",
                ])
        return out

    def render(self) -> str:
        return format_table(
            ["benchmark", "primitive", "LCO % (measured)", "LCO % (paper)"],
            self.rows(),
            title="Figure 2: LCO share of application running time",
        )


def run(options: "ExperimentOptions" = None, *, scale: float = None,
        benchmarks=BENCHMARKS) -> Fig2Result:
    opts = resolve_options(options, scale=scale)
    specs = {
        (bench, prim): RunSpec(
            benchmark=bench, mechanism="original", primitive=prim,
            scale=opts.scale,
        )
        for bench in benchmarks
        for prim in PRIMITIVES
    }
    results = execute(list(specs.values()), options=opts)
    result = Fig2Result()
    for (bench, prim), spec in specs.items():
        r = results[spec]
        if r is None:
            continue  # on_error="skip": drop the partial cell
        result.lco.setdefault(bench, {})[prim] = r.lco_fraction
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
