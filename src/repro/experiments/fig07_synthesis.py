"""Figure 7: router synthesis and chip floorplan accounting.

Regenerates the module synthesis table (gate/SC/net counts, densities,
power) for the normal router, big router and packet generator, and the
whole-chip power/area summary for the default 32+32 deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import InpgConfig
from ..synthesis import (
    big_router_synthesis,
    chip_summary,
    normal_router_synthesis,
    packet_generator_gates,
    packet_generator_power_overhead,
)
from .common import ExperimentOptions, format_table


@dataclass
class Fig7Result:
    normal: object
    big: object
    generator_gates: int
    generator_power_overhead: float
    chip: Dict[str, float]

    def render(self) -> str:
        rows = [
            ["Gate count", self.normal.gates, self.big.gates,
             self.generator_gates],
            ["SC count", self.normal.standard_cells, self.big.standard_cells,
             self.big.standard_cells - self.normal.standard_cells],
            ["Net count", self.normal.nets, self.big.nets,
             self.big.nets - self.normal.nets],
            ["Dyn. power (mW)", self.normal.dynamic_power_mw,
             self.big.dynamic_power_mw,
             self.big.dynamic_power_mw - self.normal.dynamic_power_mw],
            ["SC area (mm^2)", self.normal.sc_area_mm2, self.big.sc_area_mm2,
             self.big.sc_area_mm2 - self.normal.sc_area_mm2],
            ["Cell density (%)", 100 * self.normal.cell_density,
             100 * self.big.cell_density, "-"],
        ]
        table = format_table(
            ["metric", "normal router", "big router", "packet generator"],
            rows,
            title="Figure 7a: module synthesis (modelled, TSMC 40nm constants)",
        )
        chip_rows = [[k, v] for k, v in self.chip.items()]
        chip_table = format_table(
            ["metric", "value"], chip_rows,
            title="Figure 7b/c: 64-core chip accounting (32 big + 32 normal)",
        )
        return table + "\n\n" + chip_table


def run(options: "ExperimentOptions" = None,
        table_entries: int = 16) -> Fig7Result:
    del options  # synthesis accounting: no simulation to scale
    inpg = InpgConfig(
        enabled=True, num_big_routers=32, barrier_table_size=table_entries
    )
    return Fig7Result(
        normal=normal_router_synthesis(),
        big=big_router_synthesis(table_entries),
        generator_gates=packet_generator_gates(table_entries),
        generator_power_overhead=packet_generator_power_overhead(),
        chip=chip_summary(inpg),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
