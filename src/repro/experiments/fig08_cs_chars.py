"""Figure 8: benchmark critical-section characteristics.

(a) total CS access count and average CPU cycles per CS per program;
(b) total CS time broken into competition overhead (COH) and critical
    section execution (CSE), with programs sorted ascending and split
    into Group 1 (6) / Group 2 (12) / Group 3 (6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..exec import RunSpec
from ..workloads.profiles import get_profile, group_of
from .common import (
    ExperimentOptions,
    execute,
    format_table,
    resolve_options,
)


@dataclass
class BenchCsStats:
    benchmark: str
    short_name: str
    suite: str
    total_cs: int
    avg_cycles_per_cs: float
    total_coh: int
    total_cse: int
    group: int

    @property
    def total_cs_time(self) -> int:
        return self.total_coh + self.total_cse

    @property
    def coh_share(self) -> float:
        total = self.total_cs_time
        return self.total_coh / total if total else 0.0


@dataclass
class Fig8Result:
    stats: List[BenchCsStats] = field(default_factory=list)

    def sorted_by_cs_time(self) -> List[BenchCsStats]:
        return sorted(self.stats, key=lambda s: s.total_cs_time)

    def render(self) -> str:
        rows = [
            [
                s.short_name, s.suite, s.group, s.total_cs,
                s.avg_cycles_per_cs, s.total_coh, s.total_cse,
                100.0 * s.coh_share,
            ]
            for s in self.sorted_by_cs_time()
        ]
        return format_table(
            ["program", "suite", "group", "CS count", "avg cyc/CS",
             "COH cyc", "CSE cyc", "COH %"],
            rows,
            title=(
                "Figure 8: CS characteristics (Original, QSL), ascending "
                "total CS time"
            ),
        )


def run(options: "ExperimentOptions" = None, *, scale: float = None,
        quick: bool = None) -> Fig8Result:
    opts = resolve_options(options, quick=quick, scale=scale)
    result = Fig8Result()
    specs = {
        bench: RunSpec(
            benchmark=bench, mechanism="original", primitive="qsl",
            scale=opts.scale,
        )
        for bench in opts.benchmarks()
    }
    results = execute(list(specs.values()), options=opts)
    for bench, spec in specs.items():
        profile = get_profile(bench)
        r = results[spec]
        if r is None:
            continue  # on_error="skip": drop the partial row
        result.stats.append(
            BenchCsStats(
                benchmark=bench,
                short_name=profile.short_name,
                suite=profile.suite,
                total_cs=r.cs_completed,
                avg_cycles_per_cs=r.avg_cycles_per_cs,
                total_coh=r.total_coh,
                total_cse=r.total_cse,
                group=group_of(bench),
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentOptions(quick=False)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
