"""Figure 9: execution timing profile of freqmine under the four cases.

The paper shows, for a 30,000-cycle window of the first 8 threads, the
split of CPU cycles into parallel / COH / CSE phases and the number of
critical sections completed, for Original, OCOR, iNPG and iNPG+OCOR
(paper: parallel share rises 62.1% -> 69.8% -> 73.0% -> 80.1%, CS
completed 78 -> 92 -> 96 -> 104).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..config import MECHANISMS
from ..exec import RunSpec
from .common import (
    ExperimentOptions,
    execute,
    format_table,
    resolve_options,
)

BENCHMARK = "freqmine"
WINDOW_CYCLES = 30_000
THREADS_SHOWN = tuple(range(8))

#: paper-reported values for the same figure
PAPER = {
    "original": {"parallel": 0.621, "coh": 0.283, "cse": 0.096, "cs": 78},
    "ocor": {"parallel": 0.698, "coh": 0.198, "cse": 0.104, "cs": 92},
    "inpg": {"parallel": 0.730, "coh": 0.170, "cse": 0.100, "cs": 96},
    "inpg+ocor": {"parallel": 0.801, "coh": 0.090, "cse": 0.109, "cs": 104},
}


@dataclass
class ProfileRow:
    mechanism: str
    parallel_share: float
    coh_share: float
    cse_share: float
    cs_completed: int


@dataclass
class Fig9Result:
    rows: List[ProfileRow] = field(default_factory=list)
    window: Tuple[int, int] = (0, WINDOW_CYCLES)
    #: per-mechanism ASCII Gantt of the shown threads' phases
    gantts: Dict[str, str] = field(default_factory=dict)

    def by_mechanism(self) -> Dict[str, ProfileRow]:
        return {r.mechanism: r for r in self.rows}

    def render(self) -> str:
        table_rows = []
        for r in self.rows:
            paper = PAPER[r.mechanism]
            table_rows.append([
                r.mechanism,
                100 * r.parallel_share, 100 * r.coh_share, 100 * r.cse_share,
                r.cs_completed,
                f"{100 * paper['parallel']:.1f}/{100 * paper['coh']:.1f}/"
                f"{100 * paper['cse']:.1f}",
                paper["cs"],
            ])
        table = format_table(
            ["mechanism", "parallel %", "COH %", "CSE %", "CS done",
             "paper par/coh/cse %", "paper CS"],
            table_rows,
            title=(
                f"Figure 9: freqmine timing profile, threads 0-7, first "
                f"{self.window[1]:,} cycles"
            ),
        )
        parts = [table]
        for mech, gantt in self.gantts.items():
            parts.append(f"\n{mech}:")
            parts.append(gantt)
        return "\n".join(parts)


def run(
    options: "ExperimentOptions" = None,
    *,
    scale: float = None,
    window_cycles: int = WINDOW_CYCLES,
    threads=THREADS_SHOWN,
) -> Fig9Result:
    opts = resolve_options(options, scale=scale)
    result = Fig9Result(window=(0, window_cycles))
    specs = {
        mech: RunSpec(
            benchmark=BENCHMARK, mechanism=mech, primitive="qsl",
            scale=opts.scale,
        )
        for mech in MECHANISMS
    }
    results = execute(list(specs.values()), options=opts)
    for mech in MECHANISMS:
        r = results[specs[mech]]
        if r is None:
            continue  # on_error="skip": drop the partial row
        window = (0, min(window_cycles, r.roi_cycles))
        breakdown = r.timeline.phase_breakdown(window=window, threads=threads)
        cs_done = r.timeline.cs_completed(window=window, threads=threads)
        result.rows.append(
            ProfileRow(
                mechanism=mech,
                parallel_share=breakdown["parallel"],
                coh_share=breakdown["coh"],
                cse_share=breakdown["cse"],
                cs_completed=cs_done,
            )
        )
        from ..stats.export import render_gantt

        result.gantts[mech] = render_gantt(
            r.timeline, threads=list(threads), window=window, width=72
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
