"""Figure 10: coherence Inv-Ack round-trip delay, Original vs iNPG.

The paper's microbenchmark: all 64 threads compete for one lock variable
hosted at the shared L2 bank of core (5,6); measurement runs from when
competition starts until the last thread got its critical section.

Reported: (a/c) the average Inv-Ack round-trip delay per competing core
(an 8x8 heat map) and (b/d) the round-trip delay histogram.  Paper
numbers: Original mean 39.2 / max 97 cycles with a long tail; iNPG mean
9.5 / max 15 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..config import SystemConfig
from ..exec import RunSpec
from ..stats.histogram import Histogram
from .common import (
    ExperimentOptions,
    execute,
    format_table,
    resolve_options,
)

#: the paper's lock home: core (5,6) on the 8x8 mesh
HOME_XY = (5, 6)

PAPER = {
    "original": {"mean": 39.2, "max": 97},
    "inpg": {"mean": 9.5, "max": 15},
}


@dataclass
class RttResult:
    mechanism: str
    mean_rtt: float
    max_rtt: int
    per_core: Dict[int, float]
    histogram: Histogram
    early_share: float


@dataclass
class Fig10Result:
    results: Dict[str, RttResult] = field(default_factory=dict)
    mesh_width: int = 8

    def heat_map(self, mechanism: str) -> List[List[float]]:
        """Per-core mean RTT as rows of the mesh (Figure 10a/c)."""
        per_core = self.results[mechanism].per_core
        width = self.mesh_width
        return [
            [per_core.get(y * width + x, 0.0) for x in range(width)]
            for y in range(width)
        ]

    def render(self) -> str:
        rows = []
        for mech, res in self.results.items():
            paper = PAPER.get(mech, {})
            rows.append([
                mech, res.mean_rtt, res.max_rtt,
                100.0 * res.early_share,
                paper.get("mean", "-"), paper.get("max", "-"),
            ])
        table = format_table(
            ["mechanism", "mean RTT", "max RTT", "early inv %",
             "paper mean", "paper max"],
            rows,
            title="Figure 10: Inv-Ack round-trip delay (64 threads, one "
                  "lock homed at core (5,6))",
        )
        parts = [table]
        from ..stats.export import render_mesh_heat_map

        for mech, res in self.results.items():
            parts.append(f"\n{mech} mean RTT per core (Figure 10a/c):")
            parts.append(
                render_mesh_heat_map(
                    res.per_core, self.mesh_width, self.mesh_width
                )
            )
            parts.append(f"\n{mech} RTT histogram (Figure 10b/d):")
            parts.append(res.histogram.render())
        return "\n".join(parts)


def run(options: "ExperimentOptions" = None, *, cs_per_thread: int = 2,
        cs_cycles: int = 100, parallel_cycles: int = 200,
        seed: int = None) -> Fig10Result:
    from dataclasses import replace

    from ..config import LockSpinConfig

    opts = resolve_options(options)
    if seed is None:
        seed = opts.seed
    result = Fig10Result()
    # the paper's Algorithm 1 microbenchmark: spin on a local copy
    # (Lines 1-2), SWAP on observed-free (Lines 3-4) — i.e. TTAS
    base = replace(SystemConfig(), spin=LockSpinConfig(raw_spin=False))
    home_node = base.noc.node_at(*HOME_XY)
    specs = {
        mech: RunSpec.microbench(
            home_node=home_node,
            cs_per_thread=cs_per_thread,
            cs_cycles=cs_cycles,
            parallel_cycles=parallel_cycles,
            mechanism=mech,
            primitive="tas",
            seed=seed,
            config=base,
        )
        for mech in ("original", "inpg")
    }
    results = execute(list(specs.values()), options=opts)
    for mech in ("original", "inpg"):
        r = results[specs[mech]]
        if r is None:
            continue  # on_error="skip": drop the partial side
        stats = r.coherence
        hist = Histogram(bin_width=5)
        hist.extend(r.rtt for r in stats.inv_records)
        early = sum(1 for r in stats.inv_records if r.early)
        result.results[mech] = RttResult(
            mechanism=mech,
            mean_rtt=stats.mean_inv_rtt,
            max_rtt=stats.max_inv_rtt,
            per_core=stats.inv_rtt_by_core(),
            histogram=hist,
            early_share=early / max(1, len(stats.inv_records)),
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
