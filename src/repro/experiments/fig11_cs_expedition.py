"""Figure 11: critical-section expedition by the four mechanisms.

For every program, the per-CS time (COH + CSE) of OCOR, iNPG and
iNPG+OCOR is compared against Original (normalized to 1x), aggregated by
the Figure 8 groups.  Paper: group averages rise from ~1.2-1.4x (Group 1)
to 1.6-4.0x (Group 3); across all 24 programs OCOR averages 1.45x (max
1.90x, dedup), iNPG 1.98x (max 3.48x, nab), iNPG+OCOR 2.71x (max 5.45x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import MECHANISMS
from .common import (
    ExperimentOptions,
    arithmetic_mean,
    by_group,
    format_table,
    resolve_options,
    run_mechanism_matrix,
)

PAPER_AVERAGES = {"ocor": 1.45, "inpg": 1.98, "inpg+ocor": 2.71}


@dataclass
class Fig11Result:
    #: expedition factor per (benchmark, mechanism), Original == 1.0
    expedition: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def group_averages(self) -> Dict[int, Dict[str, float]]:
        groups = by_group(list(self.expedition))
        out: Dict[int, Dict[str, float]] = {}
        for group, benches in groups.items():
            if not benches:
                continue
            out[group] = {
                mech: arithmetic_mean(
                    self.expedition[b][mech] for b in benches
                )
                for mech in MECHANISMS
            }
        return out

    def overall_average(self, mechanism: str) -> float:
        return arithmetic_mean(
            per_mech[mechanism] for per_mech in self.expedition.values()
        )

    def best(self, mechanism: str):
        bench = max(
            self.expedition, key=lambda b: self.expedition[b][mechanism]
        )
        return bench, self.expedition[bench][mechanism]

    def render(self) -> str:
        rows = []
        for bench, per_mech in sorted(self.expedition.items()):
            rows.append(
                [bench] + [per_mech[m] for m in MECHANISMS]
            )
        summary = [
            ["== average =="] + [
                self.overall_average(m) for m in MECHANISMS
            ],
        ]
        table = format_table(
            ["benchmark"] + [m for m in MECHANISMS],
            rows + summary,
            title="Figure 11: relative CS improvement (Original = 1x)",
        )
        lines = [table, ""]
        for mech, paper in PAPER_AVERAGES.items():
            mine = self.overall_average(mech)
            best_bench, best_val = self.best(mech)
            lines.append(
                f"{mech}: measured avg {mine:.2f}x (paper {paper:.2f}x), "
                f"max {best_val:.2f}x on {best_bench}"
            )
        return "\n".join(lines)


def run(options: "ExperimentOptions" = None, *, scale: float = None,
        quick: bool = None) -> Fig11Result:
    opts = resolve_options(options, quick=quick, scale=scale)
    result = Fig11Result()
    benches = opts.benchmarks()
    matrix = run_mechanism_matrix(benches, primitive="qsl", options=opts)
    for bench in benches:
        baseline = matrix[(bench, "original")]
        if baseline is None or any(
            matrix[(bench, mech)] is None for mech in MECHANISMS
        ):
            continue  # on_error="skip": drop the partial benchmark row
        result.expedition[bench] = {
            mech: matrix[(bench, mech)].cs_expedition_vs(baseline)
            for mech in MECHANISMS
        }
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentOptions(quick=False)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
