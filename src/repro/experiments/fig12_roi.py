"""Figure 12: application ROI finish time for the four mechanisms.

ROI finish time of OCOR / iNPG / iNPG+OCOR normalized to Original (100%),
aggregated by group.  Paper: across all 24 programs OCOR reduces average
ROI time by 12.3%, iNPG by 19.9%, iNPG+OCOR by 24.7%; iNPG beats OCOR by
7.8% on average and 14.7% at maximum (bt331).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..config import MECHANISMS
from .common import (
    ExperimentOptions,
    arithmetic_mean,
    by_group,
    format_table,
    resolve_options,
    run_mechanism_matrix,
)

PAPER_REDUCTION = {"ocor": 0.123, "inpg": 0.199, "inpg+ocor": 0.247}


@dataclass
class Fig12Result:
    #: relative ROI time per (benchmark, mechanism), Original == 1.0
    relative_roi: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def group_averages(self) -> Dict[int, Dict[str, float]]:
        groups = by_group(list(self.relative_roi))
        return {
            group: {
                mech: arithmetic_mean(
                    self.relative_roi[b][mech] for b in benches
                )
                for mech in MECHANISMS
            }
            for group, benches in groups.items()
            if benches
        }

    def average_reduction(self, mechanism: str) -> float:
        return 1.0 - arithmetic_mean(
            per[mechanism] for per in self.relative_roi.values()
        )

    def inpg_vs_ocor(self) -> float:
        """Average ROI improvement of iNPG over OCOR (paper: 7.8%)."""
        ratios = [
            1.0 - per["inpg"] / per["ocor"]
            for per in self.relative_roi.values()
            if per["ocor"] > 0
        ]
        return arithmetic_mean(ratios)

    def render(self) -> str:
        rows = [
            [bench] + [100.0 * per[m] for m in MECHANISMS]
            for bench, per in sorted(self.relative_roi.items())
        ]
        rows.append(
            ["== average =="]
            + [
                100.0 * arithmetic_mean(
                    per[m] for per in self.relative_roi.values()
                )
                for m in MECHANISMS
            ]
        )
        table = format_table(
            ["benchmark"] + [f"{m} %" for m in MECHANISMS],
            rows,
            title="Figure 12: ROI finish time relative to Original (100%)",
        )
        lines = [table, ""]
        for mech, paper in PAPER_REDUCTION.items():
            mine = self.average_reduction(mech)
            lines.append(
                f"{mech}: measured avg reduction {100 * mine:.1f}% "
                f"(paper {100 * paper:.1f}%)"
            )
        lines.append(
            f"iNPG over OCOR: measured {100 * self.inpg_vs_ocor():.1f}% "
            f"(paper 7.8%)"
        )
        return "\n".join(lines)


def run(options: "ExperimentOptions" = None, *, scale: float = None,
        quick: bool = None) -> Fig12Result:
    opts = resolve_options(options, quick=quick, scale=scale)
    result = Fig12Result()
    benches = opts.benchmarks()
    matrix = run_mechanism_matrix(benches, primitive="qsl", options=opts)
    for bench in benches:
        baseline = matrix[(bench, "original")]
        if baseline is None or any(
            matrix[(bench, mech)] is None for mech in MECHANISMS
        ):
            continue  # on_error="skip": drop the partial benchmark row
        result.relative_roi[bench] = {
            mech: matrix[(bench, mech)].roi_cycles / baseline.roi_cycles
            for mech in MECHANISMS
        }
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentOptions(quick=False)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
