"""Figure 13: iNPG's effectiveness with the five locking primitives.

ROI finish time reduction achieved by iNPG (over Original, same
primitive) for TAS, TTL, ABQL, QSL and MCS.  Paper averages: TAS 52.8%,
TTL 33.4%, ABQL 32.6%, QSL 19.9%, MCS 16.5% — the heavier the lock
competition traffic a primitive generates, the more iNPG helps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..exec import RunSpec
from ..locks.factory import PRIMITIVES
from .common import (
    ExperimentOptions,
    arithmetic_mean,
    execute,
    format_table,
    resolve_options,
)

PAPER_REDUCTION = {
    "tas": 0.528, "ticket": 0.334, "abql": 0.326, "qsl": 0.199, "mcs": 0.165,
}
LABELS = {"tas": "TAS", "ticket": "TTL", "abql": "ABQL",
          "mcs": "MCS", "qsl": "QSL"}


@dataclass
class Fig13Result:
    #: ROI reduction by iNPG per (benchmark, primitive)
    reduction: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average_reduction(self, primitive: str) -> float:
        return arithmetic_mean(
            per[primitive] for per in self.reduction.values()
        )

    def render(self) -> str:
        rows = []
        for bench, per in sorted(self.reduction.items()):
            rows.append([bench] + [100.0 * per[p] for p in PRIMITIVES])
        rows.append(
            ["== average =="]
            + [100.0 * self.average_reduction(p) for p in PRIMITIVES]
        )
        rows.append(
            ["== paper =="]
            + [100.0 * PAPER_REDUCTION[p] for p in PRIMITIVES]
        )
        return format_table(
            ["benchmark"] + [f"{LABELS[p]} %" for p in PRIMITIVES],
            rows,
            title="Figure 13: ROI finish time reduction by iNPG, per "
                  "locking primitive",
        )


def run(options: "ExperimentOptions" = None, *, scale: float = None,
        quick: bool = None) -> Fig13Result:
    opts = resolve_options(options, quick=quick, scale=scale)
    result = Fig13Result()
    benches = opts.benchmarks()
    specs = {
        (bench, prim, mech): RunSpec(
            benchmark=bench, mechanism=mech, primitive=prim, scale=opts.scale
        )
        for bench in benches
        for prim in PRIMITIVES
        for mech in ("original", "inpg")
    }
    results = execute(list(specs.values()), options=opts)
    for bench in benches:
        result.reduction[bench] = {}
        for prim in PRIMITIVES:
            base = results[specs[(bench, prim, "original")]]
            inpg = results[specs[(bench, prim, "inpg")]]
            if base is None or inpg is None:
                continue  # on_error="skip": drop the partial cell
            result.reduction[bench][prim] = (
                1.0 - inpg.roi_cycles / base.roi_cycles
            )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentOptions(quick=False)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
