"""Figure 14: sensitivity to big-router deployment (0/4/16/32/64).

CS expedition (COH + CSE, normalized to Original = 0 big routers) as the
number of evenly-distributed big routers grows.  Paper: expedition grows
with router count, with marginal gains from 32 to 64 — hence 32 big
routers is the chosen default for the 64-core CMP.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

from ..config import SystemConfig
from ..exec import RunSpec
from .common import (
    ExperimentOptions,
    arithmetic_mean,
    execute,
    format_table,
    resolve_options,
)

DEPLOYMENTS = (0, 4, 16, 32, 64)


@dataclass
class Fig14Result:
    #: CS expedition factor per (benchmark, big-router count)
    expedition: Dict[str, Dict[int, float]] = field(default_factory=dict)
    deployments: Sequence[int] = DEPLOYMENTS

    def average(self, count: int) -> float:
        return arithmetic_mean(
            per[count] for per in self.expedition.values()
        )

    def render(self) -> str:
        rows = [
            [bench] + [per[c] for c in self.deployments]
            for bench, per in sorted(self.expedition.items())
        ]
        rows.append(
            ["== average =="]
            + [self.average(c) for c in self.deployments]
        )
        return format_table(
            ["benchmark"] + [f"{c} BRs" for c in self.deployments],
            rows,
            title="Figure 14: CS expedition vs big router deployment "
                  "(Original = 1x)",
        )


def run(options: "ExperimentOptions" = None, *, scale: float = None,
        quick: bool = None,
        deployments: Sequence[int] = DEPLOYMENTS) -> Fig14Result:
    opts = resolve_options(options, quick=quick, scale=scale)
    scale = opts.scale
    result = Fig14Result(deployments=deployments)
    base_cfg = SystemConfig()
    benches = opts.benchmarks()
    specs = {
        (bench, "baseline"): RunSpec(
            benchmark=bench, mechanism="original", primitive="qsl",
            scale=scale, config=base_cfg,
        )
        for bench in benches
    }
    for count in deployments:
        if count == 0:
            continue
        cfg = replace(
            base_cfg, inpg=replace(
                base_cfg.inpg, enabled=True, num_big_routers=count
            )
        )
        for bench in benches:
            specs[(bench, count)] = RunSpec(
                benchmark=bench, mechanism="inpg", primitive="qsl",
                scale=scale, config=cfg,
            )
    results = execute(list(specs.values()), options=opts)
    for bench in benches:
        baseline = results[specs[(bench, "baseline")]]
        if baseline is None:
            continue  # on_error="skip": nothing to normalize against
        result.expedition[bench] = {}
        for count in deployments:
            if count == 0:
                result.expedition[bench][0] = 1.0
                continue
            r = results[specs[(bench, count)]]
            if r is None:
                continue  # on_error="skip": drop the partial point
            result.expedition[bench][count] = r.cs_expedition_vs(baseline)
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentOptions(quick=False)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
