"""Figure 15: sensitivity to NoC dimension and barrier table size.

iNPG's average ROI reduction across benchmarks as the mesh scales
(2x2, 4x4, 8x8, 16x16) and as the locking barrier table holds 4, 16 or
64 lock barriers / EI entries.  Paper: reduction grows with the mesh
(4.7% at 2x2, 19.9% at 8x8, 57.5% at 16x16); a 4-entry table throttles
iNPG on large meshes while >16 entries add little — hence 16 is the
default.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from ..config import NocConfig, SystemConfig
from ..exec import RunSpec
from .common import (
    ExperimentOptions,
    arithmetic_mean,
    execute,
    format_table,
    resolve_options,
)

MESH_DIMS = (2, 4, 8, 16)
TABLE_SIZES = (4, 16, 64)

PAPER_BY_DIM = {2: 0.047, 8: 0.199, 16: 0.575}


@dataclass
class Fig15Result:
    #: average ROI reduction per (mesh dim, table size)
    reduction: Dict[Tuple[int, int], float] = field(default_factory=dict)
    dims: Sequence[int] = MESH_DIMS
    table_sizes: Sequence[int] = TABLE_SIZES

    def render(self) -> str:
        rows = []
        for dim in self.dims:
            row: List[object] = [f"{dim}x{dim}"]
            for size in self.table_sizes:
                row.append(100.0 * self.reduction[(dim, size)])
            paper = PAPER_BY_DIM.get(dim)
            row.append(100.0 * paper if paper is not None else "-")
            rows.append(row)
        return format_table(
            ["mesh"] + [f"{s}-entry table %" for s in self.table_sizes]
            + ["paper (16-entry) %"],
            rows,
            title="Figure 15: iNPG avg ROI reduction vs NoC dimension and "
                  "locking barrier table size",
        )


def run(
    options: "ExperimentOptions" = None,
    *,
    scale: float = None,
    quick: bool = None,
    dims: Sequence[int] = MESH_DIMS,
    table_sizes: Sequence[int] = TABLE_SIZES,
) -> Fig15Result:
    opts = resolve_options(options, quick=quick, scale=scale)
    scale = opts.scale
    result = Fig15Result(dims=dims, table_sizes=table_sizes)
    benches = opts.benchmarks()
    specs = {}
    for dim in dims:
        num_nodes = dim * dim
        base_cfg = SystemConfig(
            noc=NocConfig(width=dim, height=dim),
            num_threads=num_nodes,
        )
        for bench in benches:
            specs[(dim, "baseline", bench)] = RunSpec(
                benchmark=bench, mechanism="original", primitive="qsl",
                scale=scale, config=base_cfg,
            )
        for size in table_sizes:
            cfg = replace(
                base_cfg,
                inpg=replace(
                    base_cfg.inpg,
                    enabled=True,
                    num_big_routers=num_nodes // 2,
                    barrier_table_size=size,
                    ei_entries=size,
                ),
            )
            for bench in benches:
                specs[(dim, size, bench)] = RunSpec(
                    benchmark=bench, mechanism="inpg", primitive="qsl",
                    scale=scale, config=cfg,
                )
    results = execute(list(specs.values()), options=opts)
    for dim in dims:
        for size in table_sizes:
            reductions = []
            for bench in benches:
                baseline = results[specs[(dim, "baseline", bench)]]
                r = results[specs[(dim, size, bench)]]
                if baseline is None or r is None:
                    continue  # on_error="skip": drop the partial sample
                reductions.append(
                    1.0 - r.roi_cycles / baseline.roi_cycles
                )
            if reductions:
                result.reduction[(dim, size)] = arithmetic_mean(reductions)
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentOptions(quick=False)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
