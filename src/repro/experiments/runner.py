"""CLI for regenerating the paper's tables and figures.

Usage::

    inpg-experiments list
    inpg-experiments table1
    inpg-experiments fig10
    inpg-experiments all --quick
    inpg-experiments fig12 --full --jobs 8   # sweep all 24 programs, parallel
    inpg-experiments fig11 --no-cache        # force re-simulation

Every simulation goes through the shared :mod:`repro.exec` executor:
``--jobs`` (or ``REPRO_JOBS``) controls how many worker processes fan
out over the run plan, and results persist in ``--cache-dir`` (or
``REPRO_CACHE_DIR``, default ``.repro-cache/``) so a second invocation
answers from the cache.  A summary footer reports executed vs cached
runs, simulated cycles and events/sec.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..cli import (
    axes_parent,
    execution_parent,
    executor_from_args,
    footer_cache_dir,
    resolve_shards,
)
from . import (
    ablation_lco,
    ablation_protocol,
    ablation_topology,
    common,
    fig02_lco,
    fig07_synthesis,
    fig08_cs_chars,
    fig09_timing_profile,
    fig10_rtt,
    fig11_cs_expedition,
    fig12_roi,
    fig13_primitives,
    fig14_deployment,
    fig15_sensitivity,
    table1_config,
)

#: experiment name -> module; every module's ``run()`` takes the unified
#: ``ExperimentOptions`` (figures with nothing to sweep ignore it)
EXPERIMENTS = {
    "ablation": ablation_lco,
    "protocols": ablation_protocol,
    "topologies": ablation_topology,
    "table1": table1_config,
    "fig2": fig02_lco,
    "fig7": fig07_synthesis,
    "fig8": fig08_cs_chars,
    "fig9": fig09_timing_profile,
    "fig10": fig10_rtt,
    "fig11": fig11_cs_expedition,
    "fig12": fig12_roi,
    "fig13": fig13_primitives,
    "fig14": fig14_deployment,
    "fig15": fig15_sensitivity,
}


def run_one(name: str, options: common.ExperimentOptions) -> str:
    return EXPERIMENTS[name].run(options).render()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="inpg-experiments",
        description="Regenerate the iNPG paper's tables and figures.",
        parents=[execution_parent(), axes_parent()],
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which table/figure to regenerate",
    )
    sweep = parser.add_mutually_exclusive_group()
    sweep.add_argument(
        "--full", action="store_true",
        help="sweep all 24 benchmark programs (slow)",
    )
    sweep.add_argument(
        "--quick", action="store_true",
        help="representative 6-benchmark subset (default)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default 1.0)",
    )
    parser.add_argument(
        "--check-protocol", action="store_true",
        help="attach the online coherence protocol checker to every run "
             "(checked runs cache separately from unchecked ones)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="retry count for transient (infra) worker failures, with "
             "exponential backoff",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip"), default="raise",
        help="'skip' degrades gracefully: failed runs are recorded in "
             "the execution summary and the sweep returns partial "
             "results (default: raise)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="observe every run (counters + structured trace); forces "
             "inline, uncached execution",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the combined Chrome trace-event JSON here "
             "(implies --trace; default trace.json)",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    shards = resolve_shards(args)
    if shards > 1 and args.flit_engine != "sharded":
        print("error: --shards > 1 requires --flit-engine sharded "
              f"(got {args.flit_engine or 'packet-level default'})",
              file=sys.stderr)
        return 2
    traced = args.trace or args.trace_out is not None
    observe_factory = None
    if traced:
        from ..obs import Observation

        observe_factory = lambda spec: Observation(label=spec.label())  # noqa: E731
    executor = common.set_executor(
        executor_from_args(
            args,
            retries=args.retries,
            on_error=args.on_error,
            observe_factory=observe_factory,
        )
    )
    options = common.ExperimentOptions(
        quick=not args.full,
        scale=args.scale,
        protocol=args.protocol,
        topology=args.topology,
        arbiter=args.arbiter,
        flit_engine=args.flit_engine,
        shards=shards if shards > 1 else None,
        check_protocol=args.check_protocol,
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        print(f"=== {name} ===")
        print(run_one(name, options))
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    if traced:
        from ..obs import write_chrome_trace

        out = args.trace_out or "trace.json"
        runs = [obs.chrome_run() for obs in executor.observations.values()]
        write_chrome_trace(out, runs)
        print(f"trace: {len(runs)} observed runs -> {out}\n")
    print(executor.stats.render_footer(jobs=executor.jobs,
                                       cache_dir=footer_cache_dir(executor)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
