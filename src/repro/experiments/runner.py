"""CLI for regenerating the paper's tables and figures.

Usage::

    inpg-experiments list
    inpg-experiments table1
    inpg-experiments fig10
    inpg-experiments all --quick
    inpg-experiments fig12 --full     # sweep all 24 programs
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    ablation_lco,
    fig02_lco,
    fig07_synthesis,
    fig08_cs_chars,
    fig09_timing_profile,
    fig10_rtt,
    fig11_cs_expedition,
    fig12_roi,
    fig13_primitives,
    fig14_deployment,
    fig15_sensitivity,
    table1_config,
)

#: experiment name -> (module, takes quick kwarg)
EXPERIMENTS = {
    "ablation": (ablation_lco, False),
    "table1": (table1_config, False),
    "fig2": (fig02_lco, False),
    "fig7": (fig07_synthesis, False),
    "fig8": (fig08_cs_chars, True),
    "fig9": (fig09_timing_profile, False),
    "fig10": (fig10_rtt, False),
    "fig11": (fig11_cs_expedition, True),
    "fig12": (fig12_roi, True),
    "fig13": (fig13_primitives, True),
    "fig14": (fig14_deployment, True),
    "fig15": (fig15_sensitivity, True),
}


def run_one(name: str, quick: bool) -> str:
    module, takes_quick = EXPERIMENTS[name]
    if takes_quick:
        result = module.run(quick=quick)
    else:
        result = module.run()
    return result.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="inpg-experiments",
        description="Regenerate the iNPG paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="sweep all 24 benchmark programs (slow)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="representative 6-benchmark subset (default)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    quick = not args.full
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        print(f"=== {name} ===")
        print(run_one(name, quick))
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
