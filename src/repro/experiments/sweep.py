"""Generic configuration sweeps with replication.

The figure harnesses hand-roll their specific sweeps; this module offers
the general tool for users: a cartesian sweep over configuration editors
with optional multi-seed replication and mean/spread aggregation.

Example::

    from repro.experiments.sweep import Sweep, vary

    sweep = Sweep(
        benchmark="freqmine",
        primitive="qsl",
        axes={
            "mechanism": vary("original", "inpg"),
            "big_routers": vary(16, 32, configure=set_big_routers),
        },
        seeds=(1, 2, 3),
    )
    for point in sweep.run():
        print(point.coordinates, point.mean("roi_cycles"))
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..exec import RunSpec
from ..stats.metrics import RunResult
from .common import ExperimentOptions, execute

#: axis configurator: (config, value) -> config
Configurator = Callable[[SystemConfig, object], SystemConfig]


@dataclass(frozen=True)
class Axis:
    values: Tuple[object, ...]
    configure: Optional[Configurator] = None


def vary(*values: object, configure: Optional[Configurator] = None) -> Axis:
    """Declare one sweep axis."""
    if not values:
        raise ValueError("an axis needs at least one value")
    return Axis(values=tuple(values), configure=configure)


def _apply(config: SystemConfig, name: str, value, axis: Axis) -> SystemConfig:
    if axis.configure is not None:
        return axis.configure(config, value)
    if name == "mechanism":
        return config.with_mechanism(str(value))
    raise ValueError(
        f"axis {name!r} needs a configure= function "
        f"(only 'mechanism' is built in)"
    )


@dataclass
class SweepPoint:
    """One coordinate of the sweep with its replicated results."""

    coordinates: Dict[str, object]
    results: List[RunResult] = field(default_factory=list)

    def values(self, metric: str) -> List[float]:
        return [r.summary()[metric] for r in self.results]

    def mean(self, metric: str) -> float:
        vals = self.values(metric)
        return sum(vals) / len(vals)

    def stderr(self, metric: str) -> float:
        vals = self.values(metric)
        if len(vals) < 2:
            return 0.0
        mean = sum(vals) / len(vals)
        var = sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
        return math.sqrt(var / len(vals))


@dataclass
class Sweep:
    benchmark: str
    axes: Dict[str, Axis]
    primitive: str = "qsl"
    seeds: Sequence[int] = (2018,)
    scale: float = 1.0
    base_config: Optional[SystemConfig] = None

    def points(self) -> Iterable[Dict[str, object]]:
        names = list(self.axes)
        for combo in itertools.product(
            *(self.axes[n].values for n in names)
        ):
            yield dict(zip(names, combo))

    def run(
        self, options: Optional[ExperimentOptions] = None
    ) -> List[SweepPoint]:
        """Build the whole plan first, then execute it as one batch so
        the executor can cache-dedup and parallelize across the sweep.

        ``options`` carries the robustness knobs (fault plan, watchdog,
        timeout/retry/on_error policy); under ``on_error="skip"`` a
        failed replication is simply absent from its point's results
        (the shared executor's stats record the failure).
        """
        out: List[SweepPoint] = []
        plan: List[Tuple[SweepPoint, RunSpec]] = []
        for coords in self.points():
            config = self.base_config or SystemConfig()
            for name, value in coords.items():
                config = _apply(config, name, value, self.axes[name])
            point = SweepPoint(coordinates=dict(coords))
            out.append(point)
            for seed in self.seeds:
                plan.append((
                    point,
                    RunSpec(
                        benchmark=self.benchmark,
                        mechanism=None,  # already baked into config
                        primitive=self.primitive,
                        config=config,
                        seed=seed,
                        scale=self.scale,
                    ),
                ))
        results = execute([spec for _, spec in plan], options=options)
        for point, spec in plan:
            result = results[spec]
            if result is not None:
                point.results.append(result)
        return out
