"""Table 1: simulation platform configuration.

Prints the configured platform exactly as the paper's Table 1 lays it
out, sourced from the live :class:`~repro.config.SystemConfig` defaults
so any drift between documentation and code is impossible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from .common import ExperimentOptions, format_table


@dataclass
class Table1Result:
    config: SystemConfig

    def rows(self):
        c = self.config
        return [
            ["Core", f"{c.num_threads} cores",
             f"Alpha-style {c.core.frequency_ghz} GHz out-of-order"],
            ["L1-Cache", f"{c.noc.num_nodes} banks",
             f"private, {c.cache.l1_size_kb} KB/core, {c.cache.l1_assoc}-way, "
             f"{c.cache.block_bytes} B blocks, {c.cache.l1_latency}-cycle, "
             f"{c.cache.mshrs} MSHRs"],
            ["L2-Cache", f"{c.noc.num_nodes} banks",
             f"shared, {c.cache.l2_bank_size_mb} MB/bank, "
             f"{c.cache.l2_assoc}-way, {c.cache.l2_latency}-cycle"],
            ["Memory", f"{c.memory.num_controllers} controllers",
             f"{c.memory.dram_latency}-cycle DRAM"],
            ["NoC", f"{c.noc.num_nodes} nodes",
             f"{c.noc.width}x{c.noc.height} mesh, XY routing, "
             f"{c.noc.router_pipeline_cycles}-stage routers, "
             f"{c.noc.vcs_per_port} VCs/port, {c.noc.datapath_bits}-bit "
             f"datapath, {c.noc.data_packet_flits}-flit data packets"],
            ["Coherence", "directory", "MOESI, blocks interleaved by address"],
            ["OCOR", "-",
             f"{c.ocor.retry_times} retries, {c.ocor.priority_levels} "
             f"priority levels ({c.ocor.retries_per_level} retries/level), "
             f"lowest level for wakeups"],
            ["iNPG", "-",
             f"{c.inpg.num_big_routers} big routers interleaved, "
             f"{c.inpg.barrier_table_size}-entry locking barrier table, "
             f"TTL {c.inpg.barrier_ttl} cycles"],
            ["QSL", "-",
             f"{c.os.qsl_spin_retries} spin retries, context switch "
             f"{c.os.context_switch_cycles} cycles, wakeup "
             f"{c.os.wakeup_cycles} cycles"],
        ]

    def render(self) -> str:
        return format_table(
            ["item", "amount", "description"],
            self.rows(),
            title="Table 1: simulation platform configuration",
        )


def run(options: "ExperimentOptions" = None,
        config: SystemConfig = None) -> Table1Result:
    del options  # configuration table: nothing to sweep or scale
    return Table1Result(config=config or SystemConfig())


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
