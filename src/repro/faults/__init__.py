"""``repro.faults``: deterministic fault injection + resilient detection.

The iNPG mechanism is a race against transient NoC state — barrier-table
TTLs expiring, Inv/InvAck reordering in flight, loser-GetX conversion —
and the interesting correctness bugs only show under delayed, reordered,
duplicated or lost messages.  This package makes those scenarios
first-class and *reproducible*:

* :class:`FaultPlan` / :class:`FaultSite` — a frozen, fingerprinted
  description of what to break (drop / duplicate / corrupt-tag / delay),
  where (router / link / injection), when (cycle window), and how often
  (seeded per-packet rate).  Plans ride inside
  :class:`~repro.exec.RunSpec` and participate in the result-cache key.
* :class:`FaultInjector` — realizes a plan against a built network with
  zero cost when absent (instance-level wrappers on exactly the faulted
  sites).
* :class:`LivenessWatchdog` — no-progress-in-N-cycles detection,
  raising a structured :class:`~repro.errors.LivelockDetected`.
* :mod:`repro.faults.campaign` — the ``inpg-faults`` CLI: sweep fault
  plans against a baseline run and report which faults were *detected*
  (watchdog / checker / deadlock / crash) versus *silent* (run completed
  with diverging results) versus *benign*.

Quickstart::

    from repro import api

    plan = api.FaultPlan.parse("drop:1/Inv#3000..", seed=7)
    spec = api.RunSpec.microbench(primitive="tas",
                                  fault_plan=plan, watchdog_cycles=20_000)
    try:
        api.run_plan([spec], cache=False)
    except api.errors.LivelockDetected as err:
        print(err.stalled_threads)
"""

from .injector import FaultInjector
from .plan import (
    FAULT_KINDS,
    FAULT_SCHEMA_VERSION,
    FaultPlan,
    FaultSite,
    parse_site,
    split_sites,
)
from .watchdog import LivenessWatchdog

__all__ = [
    "FAULT_KINDS",
    "FAULT_SCHEMA_VERSION",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "LivenessWatchdog",
    "parse_site",
    "split_sites",
]
