"""``inpg-faults``: fault-injection campaigns with detected-vs-silent report.

A campaign takes one baseline scenario (the Figure 10 microbench by
default, or any benchmark), a list of fault plans, and runs every
``(scenario, plan)`` pair through the resilient executor with the
liveness watchdog armed and ``on_error="skip"``.  Each faulted run is
classified against the fault-free baseline:

* **detected** — the run failed with a structured error; the error class
  names the detector (``LivelockDetected`` = watchdog,
  ``DeadlockError`` = cycle-budget/queue-drain detection,
  ``ProtocolViolation`` = coherence checker, ``RunTimeout`` =
  wall-clock budget).
* **silent-divergence** — the run *completed* but its results differ
  from the baseline (wrong cycles / packet counts): the fault corrupted
  the execution and nothing noticed.  These are the interesting ones.
* **benign** — the run completed bit-identical to the baseline even
  though faults fired (e.g. a delayed packet that was off the critical
  path).
* **no-faults-fired** — the plan never matched a packet (wrong window,
  wrong message type); the campaign flags it so a typo'd plan does not
  masquerade as benign.

Examples::

    inpg-faults                                   # default campaign, microbench
    inpg-faults --faults 'drop:1/Inv#2000..' --watchdog 20000
    inpg-faults kdtree --scale 0.25 --faults 'delay:0.3+32' 'drop:0.02'
    inpg-faults --json campaign.json              # machine-readable artifact
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Dict, List, Optional

from ..cli import execution_parent, footer_cache_dir
from ..config import LockSpinConfig, SystemConfig
from ..exec import Executor, RunSpec
from ..locks.factory import PRIMITIVES, canonical_primitive
from .plan import FaultPlan

#: campaign swept when ``--faults`` is not given: one plan per fault
#: kind, including the drop-every-Inv scenario the watchdog must catch.
DEFAULT_CAMPAIGN = (
    "drop:1/Inv#2000..",
    "drop:0.05",
    "delay:0.25+32",
    "duplicate:0.1",
    "corrupt:0.02",
    "drop:0.5@inject",
)

#: error class -> which detection layer caught the fault
DETECTORS = {
    "LivelockDetected": "liveness watchdog",
    "DeadlockError": "deadlock detection",
    "ProtocolViolation": "protocol checker",
    "RunTimeout": "wall-clock budget",
}


def classify(
    plan: FaultPlan,
    result,
    baseline,
    failure=None,
) -> Dict[str, object]:
    """One campaign row: outcome + the evidence behind it."""
    row: Dict[str, object] = {
        "plan": plan.describe(),
        "plan_fingerprint": plan.fingerprint,
    }
    if failure is not None:
        row["outcome"] = "detected"
        row["error"] = failure.error_type
        row["detector"] = DETECTORS.get(failure.error_type,
                                        "run failure")
        row["message"] = failure.message.splitlines()[0]
        return row
    fired = sum(
        int(result.extra.get(f"faults/{name}", 0))
        for name in ("dropped", "duplicated", "corrupted", "delayed")
    )
    row["faults_fired"] = fired
    row["roi_cycles"] = result.roi_cycles
    same = (result.roi_cycles == baseline.roi_cycles
            and result.network_packets == baseline.network_packets)
    if fired == 0:
        row["outcome"] = "no-faults-fired"
    elif same:
        row["outcome"] = "benign"
    else:
        row["outcome"] = "silent-divergence"
        row["baseline_roi_cycles"] = baseline.roi_cycles
        row["delta_roi_cycles"] = result.roi_cycles - baseline.roi_cycles
    return row


def run_campaign(
    benchmark: str = "microbench",
    plans: Optional[List[FaultPlan]] = None,
    *,
    primitive: str = "qsl",
    mechanism: str = "original",
    scale: float = 1.0,
    seed: int = 2018,
    fault_seed: int = 0,
    watchdog_cycles: int = 50_000,
    timeout_s: Optional[float] = None,
    max_cycles: int = 5_000_000,
    raw_spin: bool = False,
    threads: int = 64,
    home: int = 53,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    cache_dir=None,
    remote: Optional[str] = None,
) -> Dict[str, object]:
    """Run one campaign; returns the JSON-safe report payload.

    The baseline runs *without* faults or watchdog (so it stays
    bit-exact with the repository goldens); each plan then runs the same
    spec with the plan installed and the watchdog armed.
    """
    if plans is None:
        plans = [FaultPlan.parse(text, seed=fault_seed)
                 for text in DEFAULT_CAMPAIGN]
    config = SystemConfig(spin=LockSpinConfig(raw_spin=raw_spin))
    if benchmark == "microbench":
        config = replace(config.with_mechanism(mechanism),
                         num_threads=threads)
        base_spec = RunSpec.microbench(
            home_node=home, mechanism=None, config=config,
            primitive=primitive, seed=seed, max_cycles=max_cycles,
        )
    else:
        base_spec = RunSpec(
            benchmark=benchmark, mechanism=None,
            config=config.with_mechanism(mechanism),
            primitive=primitive, scale=scale, seed=seed,
            max_cycles=max_cycles,
        )
    faulted = [
        replace(base_spec, fault_plan=plan, watchdog_cycles=watchdog_cycles)
        for plan in plans
    ]

    if remote:
        from ..serve.client import RemoteExecutor

        executor = RemoteExecutor(remote, timeout_s=timeout_s,
                                  on_error="skip")
    else:
        executor = Executor(jobs=jobs, use_cache=use_cache,
                            cache_dir=cache_dir, timeout_s=timeout_s,
                            on_error="skip")
    baseline = executor.run_one(base_spec)
    if baseline is None:
        # even the fault-free baseline failed: report and bail
        failure = executor.stats.failures[-1]
        raise SystemExit(
            f"baseline run failed ({failure.error_type}): "
            f"{failure.message.splitlines()[0]}"
        )
    results = executor.run(faulted)
    failures = {rec.fingerprint: rec for rec in executor.stats.failures}

    rows = [
        classify(plan, results[spec], baseline,
                 failure=failures.get(spec.fingerprint))
        for plan, spec in zip(plans, faulted)
    ]
    outcomes: Dict[str, int] = {}
    for row in rows:
        outcomes[row["outcome"]] = outcomes.get(row["outcome"], 0) + 1
    return {
        "benchmark": benchmark,
        "primitive": primitive,
        "mechanism": mechanism,
        "baseline": {
            "roi_cycles": baseline.roi_cycles,
            "network_packets": baseline.network_packets,
            "fingerprint": base_spec.fingerprint,
        },
        "watchdog_cycles": watchdog_cycles,
        "rows": rows,
        "outcomes": outcomes,
        "footer": executor.stats.render_footer(
            jobs=executor.jobs,
            cache_dir=footer_cache_dir(executor),
        ),
    }


def render_report(report: Dict[str, object]) -> str:
    lines = [
        f"fault campaign: {report['benchmark']} "
        f"[{report['mechanism']}/{report['primitive']}] | "
        f"baseline roi={report['baseline']['roi_cycles']:,} cycles, "
        f"{report['baseline']['network_packets']:,} packets | "
        f"watchdog={report['watchdog_cycles']:,} cycles",
        "",
    ]
    width = max((len(r["plan"]) for r in report["rows"]), default=4)
    for row in report["rows"]:
        outcome = row["outcome"]
        detail = ""
        if outcome == "detected":
            detail = f"{row['error']} via {row['detector']}"
        elif outcome == "silent-divergence":
            detail = (f"{row['faults_fired']:,} faults fired, "
                      f"roi {row['delta_roi_cycles']:+,} cycles")
        elif outcome == "benign":
            detail = f"{row['faults_fired']:,} faults fired, bit-identical"
        lines.append(
            f"  {row['plan']:<{width}}  {outcome:<18} {detail}"
        )
    lines.append("")
    summary = ", ".join(
        f"{count} {name}" for name, count in sorted(report["outcomes"].items())
    )
    lines.append(f"outcomes: {summary}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="inpg-faults",
        description="Sweep deterministic NoC fault plans against a "
                    "baseline run and report detected vs silent outcomes.",
        parents=[execution_parent()],
    )
    parser.add_argument("benchmark", nargs="?", default="microbench",
                        help="benchmark name or 'microbench' (default)")
    parser.add_argument("--faults", nargs="+", default=None, metavar="PLAN",
                        help="fault plan strings (each is one campaign "
                             "row), e.g. 'drop:1/Inv#2000..'; default: a "
                             "representative plan per fault kind")
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--primitive", default="qsl",
                        help=f"one of {PRIMITIVES} (or paper alias TTL)")
    parser.add_argument("--mechanism", default="original")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--threads", type=int, default=64,
                        help="microbench: competing threads")
    parser.add_argument("--home", type=int, default=53,
                        help="microbench: lock home node")
    parser.add_argument("--watchdog", type=int, default=50_000,
                        metavar="CYCLES",
                        help="liveness-watchdog no-progress window "
                             "(default 50000)")
    parser.add_argument("--max-cycles", type=int, default=5_000_000,
                        help="per-run cycle budget (default 5M; smaller "
                             "than simulate()'s so stuck runs fail fast)")
    parser.add_argument("--spin", choices=("ttas", "raw"), default="ttas",
                        help="lock spin mode; 'ttas' (default) polls the "
                             "local copy, which turns lost invalidations "
                             "into watchdog-detectable livelock")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the full report as JSON")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    plans = None
    if args.faults:
        plans = [FaultPlan.parse(text, seed=args.fault_seed)
                 for text in args.faults]
    report = run_campaign(
        args.benchmark,
        plans,
        primitive=canonical_primitive(args.primitive),
        mechanism=args.mechanism,
        scale=args.scale,
        seed=args.seed,
        fault_seed=args.fault_seed,
        watchdog_cycles=args.watchdog,
        timeout_s=args.timeout,
        max_cycles=args.max_cycles,
        raw_spin=args.spin == "raw",
        threads=args.threads,
        home=args.home,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        remote=args.remote,
    )
    print(render_report(report))
    print()
    print(report["footer"])
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"\nreport -> {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
