"""Deterministic, seeded fault injection for the NoC datapath.

The :class:`FaultInjector` realizes a :class:`~repro.faults.plan.FaultPlan`
against a built network.  Installation is *surgical*: only the routers,
links and injection points the plan names pay anything — a faulted router
gets an instance-level ``accept`` wrapper, a faulted link gets its
pre-bound grant handler wrapped, and injection sites rebind the network's
class-level ``_fault_inject = None`` guard (the same zero-cost pattern as
the ``repro.obs`` ``_trace`` emitters).  A run without a plan executes
byte-identical code to one built before this module existed.

Determinism: fault decisions draw from the plan's own
:func:`repro.sim.make_rng` stream (seeded by ``plan.seed``, label
``"faults"``), never from workload RNGs, and the kernel's event order is
deterministic — so one ``(spec, plan)`` pair replays the exact same
drops/delays/duplicates/corruptions every time.

Fault semantics at a site (evaluated in plan order; first ``drop`` or
``delay`` consumes the packet, ``corrupt``/``duplicate`` fall through):

* ``drop`` — the packet vanishes; ``network.packets_dropped`` and the
  injector's ``dropped`` counter record it.
* ``delay`` — the packet re-enters the datapath ``extra_delay`` cycles
  later (modelling transient link backpressure / retransmission).
* ``corrupt`` — the destination *tag* is rewritten to a random node: the
  packet misroutes and is delivered to the wrong endpoint, which is the
  detection layers' problem to notice.
* ``duplicate`` — a clone (fresh pid, same payload) enters the datapath
  alongside the original, exercising at-least-once delivery hazards
  (double InvAcks, replayed GetX, ...).
"""

from __future__ import annotations

from typing import Callable, Tuple

from ..errors import UnsupportedFaultSite
from ..noc.packet import Packet
from ..sim import make_rng
from .plan import FaultPlan, FaultSite, split_sites

#: continuation signature: re-enter the normal datapath with this packet
Forward = Callable[[Packet], None]


class FaultInjector:
    """Applies one :class:`FaultPlan` to one network instance."""

    #: trace emitter; rebound by ``repro.obs.Observation.attach``.
    _trace = None

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = make_rng(plan.seed, "faults")
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.delayed = 0
        self._sim = None
        self._network = None
        self._num_nodes = 0
        self.installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, network) -> "FaultInjector":
        """Wire this plan's sites into ``network`` (packet- or flit-level).

        The flit-level fabric models no per-router hooks, so it accepts
        only ``inject`` sites; router/link sites there raise.
        """
        if self.installed:
            raise ValueError("fault injector is already installed")
        wildcard, per_router, per_link, inject = split_sites(self.plan)
        self._sim = network.sim
        self._network = network
        self._num_nodes = network.mesh.num_nodes
        routers = getattr(network, "routers", None) or {}
        if routers:
            faulted = False
            for node, router in routers.items():
                sites = tuple(wildcard) + tuple(per_router.get(node, ()))
                if sites:
                    self._wrap_router(router, sites)
                    faulted = True
            if faulted:
                # grant handlers captured each neighbour's ``accept`` at
                # construction; re-wire so they see the fault wrappers.
                for router in routers.values():
                    router.wire()
            for (src, dst), sites in per_link.items():
                router = routers.get(src)
                if router is None or dst not in router._grant_handlers:
                    raise ValueError(f"no link {src}->{dst} in this mesh")
                self._wrap_link(router, dst, tuple(sites))
        elif wildcard or per_router or per_link:
            kinds = []
            if wildcard or per_router:
                kinds.append("router")
            if per_link:
                kinds.append("link")
            model = getattr(network, "fault_model_name", "flit")
            raise UnsupportedFaultSite(
                f"the {model} fabric supports only 'inject' fault sites "
                f"(plan names {'/'.join(kinds)} sites)",
                model=model, site_kinds=tuple(kinds),
            )
        if inject:
            network._fault_inject = self._make_inject_hook(tuple(inject))
        self.installed = True
        return self

    def _wrap_router(self, router, sites: Tuple[FaultSite, ...]) -> None:
        clean = router.accept  # bound class method, captured pre-wrap
        component = f"router/{router.node}"

        def faulted_accept(
            packet: Packet,
            _apply=self._apply, _sites=sites, _clean=clean, _c=component,
        ) -> None:
            if _apply(_sites, packet, _clean, _c):
                return
            _clean(packet)

        router.accept = faulted_accept

    def _wrap_link(self, router, neighbor: int,
                   sites: Tuple[FaultSite, ...]) -> None:
        component = f"link/{router.node}->{neighbor}"

        def wrap(orig: Forward) -> Forward:
            def faulted_grant(
                packet: Packet,
                _apply=self._apply, _sites=sites, _orig=orig, _c=component,
            ) -> None:
                if _apply(_sites, packet, _orig, _c):
                    return
                _orig(packet)

            return faulted_grant

        router.wrap_link(neighbor, wrap)

    def _make_inject_hook(self, sites: Tuple[FaultSite, ...]):
        def inject_hook(
            packet: Packet, forward: Forward,
            _apply=self._apply, _sites=sites,
        ) -> bool:
            return _apply(_sites, packet, forward, "inject")

        return inject_hook

    # ------------------------------------------------------------------
    # The fault filter
    # ------------------------------------------------------------------
    def _apply(
        self,
        sites: Tuple[FaultSite, ...],
        packet: Packet,
        forward: Forward,
        component: str,
    ) -> bool:
        """Run ``packet`` through ``sites``; True = consumed by faults."""
        cycle = self._sim.cycle
        rng = self.rng
        for site in sites:
            if not site.active(cycle):
                continue
            if site.message is not None and not site.matches_payload(
                packet.payload
            ):
                continue
            if site.rate < 1.0 and rng.random() >= site.rate:
                continue
            kind = site.kind
            if kind == "drop":
                self.dropped += 1
                self._network.packets_dropped += 1
                tr = self._trace
                if tr is not None:
                    tr(component, "fault.drop", src=packet.src,
                       dst=packet.dst, flits=packet.size_flits)
                return True
            if kind == "delay":
                self.delayed += 1
                tr = self._trace
                if tr is not None:
                    tr(component, "fault.delay", src=packet.src,
                       dst=packet.dst, extra=site.extra_delay)
                self._sim.schedule(site.extra_delay, forward, packet)
                return True
            if kind == "corrupt":
                new_dst = rng.randrange(self._num_nodes)
                self.corrupted += 1
                tr = self._trace
                if tr is not None:
                    tr(component, "fault.corrupt", src=packet.src,
                       dst=packet.dst, new_dst=new_dst)
                packet.dst = new_dst
                continue
            # duplicate
            clone = self._clone(packet)
            self.duplicated += 1
            self._network.packets_injected += 1
            tr = self._trace
            if tr is not None:
                tr(component, "fault.duplicate", src=packet.src,
                   dst=packet.dst, clone_pid=clone.pid)
            forward(clone)
        return False

    def _clone(self, packet: Packet) -> Packet:
        clone = Packet(
            src=packet.src,
            dst=packet.dst,
            payload=packet.payload,
            size_flits=packet.size_flits,
            priority=packet.priority,
            vnet=packet.vnet,
            origin=packet.origin,
        )
        clone.injected_cycle = self._sim.cycle
        return clone

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def faults_fired(self) -> int:
        return self.dropped + self.duplicated + self.corrupted + self.delayed

    def counters(self) -> dict:
        """The injector's counters (folded into ``result.extra`` under
        ``faults/`` and registered as ``faults/*`` obs gauges)."""
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
        }
