"""Declarative fault plans: *what* to break, *where*, and *when*.

A :class:`FaultPlan` is a frozen, canonically-fingerprinted value — the
fault-space analogue of :class:`~repro.exec.RunSpec`.  It names a set of
:class:`FaultSite` entries, each describing one fault process:

* ``kind`` — ``drop`` (the packet vanishes), ``duplicate`` (a cloned
  packet enters the datapath alongside the original), ``corrupt`` (the
  destination tag is rewritten to a random node), or ``delay`` (the
  packet sits for ``extra_delay`` extra cycles);
* ``where`` — ``"*"`` (every router entry), ``"router:N"`` (packets
  entering router ``N``), ``"link:A->B"`` (packets crossing the A→B
  link), or ``"inject"`` (packets at network injection — the only site
  type the flit-level fabric supports);
* ``rate`` — per-packet-event firing probability, drawn from the plan's
  own seeded RNG stream so fault decisions never perturb workload
  randomness;
* ``begin`` / ``end`` — the active cycle window (``end=None`` = forever);
* ``message`` — optionally restrict to one coherence message type by its
  wire name (``"Inv"``, ``"GetX"``, ``"Data"`` …), enabling campaigns
  like *drop every Inv in this window*.

Plans participate in :class:`~repro.exec.RunSpec` fingerprints (a faulted
run is a different content address), and the same ``(seed, plan)`` pair
replays the exact same fault decisions — fault campaigns are as
deterministic as fault-free runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: the supported fault processes
FAULT_KINDS = ("drop", "duplicate", "corrupt", "delay")

#: bump when the canonical payload below changes shape
FAULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FaultSite:
    """One fault process at one site of the NoC."""

    kind: str
    rate: float = 1.0
    where: str = "*"
    begin: int = 0
    end: Optional[int] = None
    #: extra cycles a ``delay`` fault holds the packet
    extra_delay: int = 8
    #: restrict to one coherence message type (wire name, e.g. ``"Inv"``)
    message: Optional[str] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate {self.rate} outside [0, 1]")
        if self.begin < 0:
            raise ValueError(f"fault window begins before cycle 0: {self.begin}")
        if self.end is not None and self.end <= self.begin:
            raise ValueError(
                f"empty fault window [{self.begin}, {self.end})"
            )
        if self.kind == "delay" and self.extra_delay < 1:
            raise ValueError("delay faults need extra_delay >= 1")
        _parse_where(self.where)  # validate eagerly

    # ------------------------------------------------------------------
    def active(self, cycle: int) -> bool:
        """Is this site live at ``cycle``?"""
        if cycle < self.begin:
            return False
        return self.end is None or cycle < self.end

    def matches_payload(self, payload: object) -> bool:
        """Does ``payload`` pass this site's message-type filter?"""
        if self.message is None:
            return True
        mtype = getattr(payload, "mtype", None)
        return mtype is not None and mtype.value == self.message

    def payload(self) -> Dict:
        out: Dict = {
            "kind": self.kind,
            "rate": float(self.rate),
            "where": self.where,
            "begin": self.begin,
        }
        if self.end is not None:
            out["end"] = self.end
        if self.kind == "delay":
            out["extra_delay"] = self.extra_delay
        if self.message is not None:
            out["message"] = self.message
        return out

    def describe(self) -> str:
        """Compact one-token rendering (inverse of :func:`parse_site`)."""
        text = f"{self.kind}:{self.rate:g}"
        if self.message is not None:
            text += f"/{self.message}"
        if self.where != "*":
            text += f"@{self.where}"
        if self.kind == "delay":
            text += f"+{self.extra_delay}"
        if self.begin or self.end is not None:
            text += f"#{self.begin}..{'' if self.end is None else self.end}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault sites — the unit fault campaigns sweep."""

    sites: Tuple[FaultSite, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "sites", tuple(self.sites))

    @property
    def enabled(self) -> bool:
        """An empty plan is indistinguishable from no plan at all."""
        return bool(self.sites)

    # ------------------------------------------------------------------
    def canonical_payload(self) -> Dict:
        return {
            "schema": FAULT_SCHEMA_VERSION,
            "seed": self.seed,
            "sites": [site.payload() for site in self.sites],
        }

    @property
    def fingerprint(self) -> str:
        blob = json.dumps(
            self.canonical_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        if not self.sites:
            return "none"
        return ",".join(site.describe() for site in self.sites)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the CLI fault syntax into a plan.

        Comma-separated sites, each
        ``kind[:rate][/Message][@where][+delay][#begin..end]``::

            drop:0.01                      # drop 1% of packets at every router
            drop:1/Inv#2000..4000          # drop every Inv in a cycle window
            delay:0.2@router:53+16         # delay 20% entering router 53
            corrupt:0.001@link:3->4        # misroute 0.1% crossing link 3->4
            duplicate:0.05@inject          # duplicate 5% at injection
        """
        sites = [parse_site(tok) for tok in text.split(",") if tok.strip()]
        return cls(sites=tuple(sites), seed=seed)


# ----------------------------------------------------------------------
# Site syntax
# ----------------------------------------------------------------------
def parse_site(token: str) -> FaultSite:
    """Parse one ``kind[:rate][/Message][@where][+delay][#a..b]`` token."""
    text = token.strip()
    kw: Dict = {}
    if "#" in text:
        text, _, window = text.partition("#")
        lo, sep, hi = window.partition("..")
        if not sep:
            raise ValueError(f"bad fault window {window!r} (want a..b)")
        kw["begin"] = int(lo) if lo else 0
        kw["end"] = int(hi) if hi else None
    if "+" in text:
        text, _, delay = text.partition("+")
        kw["extra_delay"] = int(delay)
    if "@" in text:
        text, _, where = text.partition("@")
        kw["where"] = where
    if "/" in text:
        text, _, message = text.partition("/")
        kw["message"] = message
    kind, sep, rate = text.partition(":")
    if sep:
        kw["rate"] = float(rate)
    return FaultSite(kind=kind, **kw)


def _parse_where(where: str) -> Tuple[str, object]:
    """Validate and decompose a ``where`` expression.

    Returns ``("*", None)``, ``("inject", None)``, ``("router", node)``
    or ``("link", (src, dst))``.
    """
    if where in ("*", "inject"):
        return where, None
    scheme, sep, rest = where.partition(":")
    if scheme == "router" and sep:
        return "router", int(rest)
    if scheme == "link" and sep and "->" in rest:
        src, _, dst = rest.partition("->")
        return "link", (int(src), int(dst))
    raise ValueError(
        f"unknown fault site {where!r} "
        "(want '*', 'inject', 'router:N' or 'link:A->B')"
    )


def split_sites(
    plan: FaultPlan,
) -> Tuple[List[FaultSite], Dict[int, List[FaultSite]],
           Dict[Tuple[int, int], List[FaultSite]], List[FaultSite]]:
    """Partition a plan's sites by site class for installation.

    Returns ``(router_wildcard, per_router, per_link, inject)``.
    """
    wildcard: List[FaultSite] = []
    routers: Dict[int, List[FaultSite]] = {}
    links: Dict[Tuple[int, int], List[FaultSite]] = {}
    inject: List[FaultSite] = []
    for site in plan.sites:
        scheme, arg = _parse_where(site.where)
        if scheme == "*":
            wildcard.append(site)
        elif scheme == "inject":
            inject.append(site)
        elif scheme == "router":
            routers.setdefault(arg, []).append(site)
        else:
            links.setdefault(arg, []).append(site)
    return wildcard, routers, links, inject
