"""Liveness watchdog: turn silent non-progress into a structured error.

A deadlocked run eventually surfaces as
:class:`~repro.errors.DeadlockError` (queue drained or cycle budget
exhausted), but a *livelocked* run — spinning cores, polling loops,
retry storms — burns events forever while nothing completes, and under
fault injection that is the common failure shape: drop one Inv and the
poller whose copy was never invalidated spins on stale data until the
cycle budget runs out, millions of cycles later.

The :class:`LivenessWatchdog` samples a progress signature every
``period`` cycles — total lock acquisitions + releases and finished
threads, the same quantities the ``repro.obs`` registry exposes as
``locks/*`` and ``threads/done`` gauges — and raises
:class:`~repro.errors.LivelockDetected` (with the stalled thread ids and
per-lock acquisition counts) the moment a full window passes without the
signature moving.

Scheduling the periodic sample consumes kernel sequence numbers, so an
armed watchdog changes the run's total event count but *not* the
delivered-packet stream or any protocol decision (ties between
pre-existing events keep their relative FIFO order).  It therefore
defaults off; fault campaigns arm it explicitly.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import LivelockDetected


class LivenessWatchdog:
    """No-progress-in-N-cycles detector for one assembled system."""

    def __init__(self, sim, system, period: int):
        if period <= 0:
            raise ValueError(f"watchdog period must be positive, got {period}")
        self.sim = sim
        self.system = system
        self.period = int(period)
        self.ticks = 0
        self._last: Optional[Tuple[int, int, int]] = None

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Take the baseline sample and start the periodic check."""
        self._last = self._signature()
        self.sim.schedule(self.period, self._tick)

    def _signature(self) -> Tuple[int, int, int]:
        system = self.system
        acquisitions = sum(lock.acquisitions for lock in system.locks)
        releases = sum(lock.releases for lock in system.locks)
        done = sum(1 for thread in system.threads if thread.done)
        return (acquisitions, releases, done)

    def _tick(self) -> None:
        system = self.system
        if system._remaining == 0:
            return  # ROI finished; the kernel is already stopping
        self.ticks += 1
        signature = self._signature()
        if signature == self._last:
            stalled = tuple(
                thread.thread_id for thread in system.threads
                if not thread.done
            )
            locks = {
                lock.lock_id: lock.acquisitions for lock in system.locks
            }
            cycle = self.sim.cycle
            raise LivelockDetected(
                f"no forward progress in {self.period} cycles "
                f"(cycle {cycle}): {len(stalled)} threads stalled, "
                f"lock acquisitions frozen at {signature[0]} "
                f"(benchmark={system.workload.benchmark}, "
                f"primitive={system.primitive})\n" + system.diagnose(),
                cycle=cycle,
                window=self.period,
                stalled_threads=stalled,
                locks=locks,
            )
        self._last = signature
        self.sim.schedule(self.period, self._tick)
