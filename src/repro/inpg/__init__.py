"""iNPG: in-network packet generation (the paper's core contribution)."""

from .barrier_table import EIEntry, EIPhase, LockBarrier, LockingBarrierTable
from .big_router import BigRouter
from .deployment import evenly_spread_nodes, interleaved_nodes
from .report import BigRouterReport, RouterActivity, collect_report

__all__ = [
    "BigRouter",
    "BigRouterReport",
    "EIEntry",
    "EIPhase",
    "LockBarrier",
    "LockingBarrierTable",
    "RouterActivity",
    "collect_report",
    "evenly_spread_nodes",
    "interleaved_nodes",
]
