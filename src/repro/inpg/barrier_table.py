"""The locking barrier table inside a big router (paper Figure 6).

Each *lock barrier* entry holds the memory address of a lock variable and a
time-to-live (TTL).  Under a barrier, each stopped GetX request gets an
*early invalidation* (EI) entry tracking four phases:

    Inv generated -> GetX forwarded -> InvAck received -> InvAck forwarded

An EI entry is freed once all four phases complete.  The barrier's TTL
(default 128 cycles) counts down only while the barrier has no EI entries
and resets whenever one is created; the barrier is deleted when the TTL
reaches zero.  When the table is full, GetX requests pass through as in a
normal router (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from ..sim import Event, Simulator


class EIPhase(Enum):
    """Lifecycle phases of an early-invalidation entry (Figure 6)."""

    INV_GENERATED = "Inv"
    GETX_FORWARDED = "GetXFwd"
    INVACK_RECEIVED = "InvAck"
    ACK_FORWARDED = "AckFwd"


@dataclass
class EIEntry:
    """Tracks one stopped GetX / early invalidation."""

    core: int
    phase: EIPhase = EIPhase.INV_GENERATED


@dataclass
class LockBarrier:
    """A temporary barrier for one lock address."""

    addr: int
    created_cycle: int
    ei: Dict[int, EIEntry] = field(default_factory=dict)
    _expiry: Optional[Event] = None


class LockingBarrierTable:
    """The barrier + EI storage of one big router.

    ``capacity`` bounds the number of concurrent lock barriers and
    ``ei_capacity`` the number of EI entries across all barriers (the
    paper sizes both at 16 by default).
    """

    #: trace emitter + owning-router component label; both rebound by
    #: ``repro.obs.Observation.attach``.
    _trace = None
    _component = "big"

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 16,
        ei_capacity: int = 16,
        ttl: int = 128,
    ):
        if capacity < 1 or ei_capacity < 1:
            raise ValueError("barrier table capacities must be positive")
        self.sim = sim
        self.capacity = capacity
        self.ei_capacity = ei_capacity
        self.ttl = ttl
        self.barriers: Dict[int, LockBarrier] = {}
        self.barriers_created = 0
        self.barriers_expired = 0
        self.ei_created = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_barrier(self, addr: int) -> bool:
        return addr in self.barriers

    @property
    def ei_in_use(self) -> int:
        return sum(len(b.ei) for b in self.barriers.values())

    @property
    def is_full(self) -> bool:
        return len(self.barriers) >= self.capacity

    # ------------------------------------------------------------------
    # Barrier lifecycle
    # ------------------------------------------------------------------
    def create_barrier(self, addr: int) -> bool:
        """Create a barrier for ``addr``; False when the table is full."""
        if addr in self.barriers:
            return True
        if self.is_full:
            return False
        barrier = LockBarrier(addr=addr, created_cycle=self.sim.cycle)
        self.barriers[addr] = barrier
        self.barriers_created += 1
        tr = self._trace
        if tr is not None:
            tr(self._component, "barrier.setup", addr=addr,
               live=len(self.barriers))
        self._arm_ttl(barrier)
        return True

    def _arm_ttl(self, barrier: LockBarrier) -> None:
        if barrier._expiry is not None:
            barrier._expiry.cancel()
        barrier._expiry = self.sim.schedule_cancellable(
            self.ttl, self._expire, barrier.addr
        )

    def _disarm_ttl(self, barrier: LockBarrier) -> None:
        if barrier._expiry is not None:
            barrier._expiry.cancel()
            barrier._expiry = None

    def _expire(self, addr: int) -> None:
        barrier = self.barriers.get(addr)
        if barrier is None or barrier.ei:
            return
        del self.barriers[addr]
        self.barriers_expired += 1
        tr = self._trace
        if tr is not None:
            tr(self._component, "barrier.expire", addr=addr,
               age=self.sim.cycle - barrier.created_cycle)

    # ------------------------------------------------------------------
    # Early-invalidation entries
    # ------------------------------------------------------------------
    def try_stop(self, addr: int, core: int) -> bool:
        """Allocate an EI entry for a stopped GetX from ``core``.

        Returns False (pass the request through) when there is no barrier,
        the EI pool is exhausted, or an entry for this (addr, core) pair is
        already in flight.
        """
        barrier = self.barriers.get(addr)
        if barrier is None:
            return False
        if core in barrier.ei:
            return False
        if self.ei_in_use >= self.ei_capacity:
            return False
        barrier.ei[core] = EIEntry(core=core)
        self.ei_created += 1
        tr = self._trace
        if tr is not None:
            tr(self._component, "barrier.hit", addr=addr, core=core,
               ei_in_use=self.ei_in_use)
        # an EI entry resets and suspends the TTL countdown
        self._disarm_ttl(barrier)
        return True

    def mark_getx_forwarded(self, addr: int, core: int) -> None:
        entry = self._entry(addr, core)
        if entry is not None:
            entry.phase = EIPhase.GETX_FORWARDED

    def mark_ack_received(self, addr: int, core: int) -> None:
        entry = self._entry(addr, core)
        if entry is not None:
            entry.phase = EIPhase.INVACK_RECEIVED

    def mark_ack_forwarded(self, addr: int, core: int) -> None:
        """Final phase: frees the EI entry; may restart the barrier TTL."""
        barrier = self.barriers.get(addr)
        if barrier is None:
            return
        entry = barrier.ei.pop(core, None)
        if entry is not None:
            entry.phase = EIPhase.ACK_FORWARDED
        if not barrier.ei:
            self._arm_ttl(barrier)

    def _entry(self, addr: int, core: int) -> Optional[EIEntry]:
        barrier = self.barriers.get(addr)
        if barrier is None:
            return None
        return barrier.ei.get(core)
