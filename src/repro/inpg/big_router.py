"""The iNPG "big" router: a normal router plus a packet generator.

Behaviour (Sections 3.3 and 4.1):

* The first atomic GetX for a lock address that this router transfers
  creates a temporary *lock barrier* and travels on (it may become the
  transaction winner at the home node).
* A subsequent atomic GetX for a barriered address is *stopped*: the big
  router generates an early invalidation (Inv) straight to the issuing
  core's L1 and forwards the request itself to the home node (the paper's
  GetX -> FwdGetX conversion; we tag the in-flight message
  ``early_invalidated`` — it is queued at the home like any losing GetX).
* The invalidated core acknowledges back to this router, which relays the
  InvAck to the home node (phase AckFwd); the home prunes the sharer and,
  if a transaction is in flight, relays the ack to the winner.
* When the barrier table is full, GetX requests pass through unmodified.

Plain (non-atomic) stores and every other message type are never touched:
the router behaves exactly like a normal router for them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..coherence.messages import CoherenceMessage, MessageType
from ..noc.packet import Packet
from ..noc.router import CONTINUE, STOPPED, Router
from ..sim import Simulator
from .barrier_table import LockingBarrierTable

if TYPE_CHECKING:  # pragma: no cover
    from ..config import InpgConfig
    from ..noc.network import Network

#: int-encoded message tags; inspect() runs per packet per big router hop
_INV_ACK_TAG = MessageType.INV_ACK.tag
_GETX_TAG = MessageType.GETX.tag
_INV_VALUE = MessageType.INV.value


class BigRouter(Router):
    """A router with in-network packet generation capability."""

    is_big = True

    #: trace emitter; rebound by ``repro.obs.Observation.attach``.
    _trace = None

    def __init__(
        self, sim: Simulator, node: int, network: "Network", inpg: "InpgConfig"
    ):
        super().__init__(sim, node, network)
        self.table = LockingBarrierTable(
            sim,
            capacity=inpg.barrier_table_size,
            ei_capacity=inpg.ei_entries,
            ttl=inpg.barrier_ttl,
        )
        self.invs_generated = 0
        self.getx_stopped = 0
        self.acks_forwarded = 0
        self._memsys_cache = None

    # ------------------------------------------------------------------
    @property
    def _memsys(self):
        # inspect() runs for every packet entering a big router; resolve
        # the memory system once instead of a getattr per packet.
        memsys = self._memsys_cache
        if memsys is None:
            memsys = getattr(self.network, "memsys", None)
            if memsys is None:
                raise RuntimeError(
                    "BigRouter requires network.memsys to be attached"
                )
            self._memsys_cache = memsys
        return memsys

    def inspect(self, packet: Packet) -> str:
        msg = packet.payload
        if msg.__class__ is not CoherenceMessage and not isinstance(
            msg, CoherenceMessage
        ):
            return CONTINUE
        tag = msg.tag
        if (
            tag == _INV_ACK_TAG
            and msg.early
            and msg.via_router == self.node
            and packet.dst == self.node
        ):
            self._forward_early_ack(packet, msg)
            return STOPPED
        if (
            tag == _GETX_TAG
            and msg.is_atomic
            and msg.holds_copy
            and not msg.early_invalidated
            and packet.dst != self.node
        ):
            return self._on_lock_getx(packet, msg)
        return CONTINUE

    # ------------------------------------------------------------------
    # GetX barrier logic
    # ------------------------------------------------------------------
    def _on_lock_getx(self, packet: Packet, msg: CoherenceMessage) -> str:
        stats = self._memsys.stats
        if not self.table.has_barrier(msg.addr):
            if not self.table.create_barrier(msg.addr):
                stats.barrier_table_overflows += 1
            return CONTINUE
        if not self.table.try_stop(msg.addr, msg.requester):
            stats.barrier_table_overflows += 1
            return CONTINUE
        # Stop the request: generate the early invalidation...
        self.getx_stopped += 1
        stats.getx_stopped += 1
        self._generate_inv(msg)
        # ...and forward the (converted) request toward the home node.
        msg.early_invalidated = True
        self.table.mark_getx_forwarded(msg.addr, msg.requester)
        self.forward_now(packet)
        return STOPPED

    def _generate_inv(self, msg: CoherenceMessage) -> None:
        self.invs_generated += 1
        stats = self._memsys.stats
        stats.early_invs_generated += 1
        tr = self._trace
        if tr is not None:
            tr(f"big/{self.node}", "inpg.early_inv", addr=msg.addr,
               target=msg.requester, n=self.invs_generated)
        inv = self._memsys.msg_pool.acquire(
            MessageType.INV,
            msg.addr,
            -1,
            sender=self.node,
            inv_target=msg.requester,
            inv_created_cycle=self.now,
            early=True,
            via_router=self.node,
        )
        stats.count(_INV_VALUE)
        packet = Packet(
            src=self.node,
            dst=msg.requester,
            payload=inv,
            size_flits=self.network.config.ctrl_packet_flits,
        )
        self.network.reinject(self.node, packet)

    # ------------------------------------------------------------------
    # InvAck relay
    # ------------------------------------------------------------------
    def _forward_early_ack(self, packet: Packet, msg: CoherenceMessage) -> None:
        self.acks_forwarded += 1
        tr = self._trace
        if tr is not None:
            tr(f"big/{self.node}", "inpg.ack_fwd", addr=msg.addr,
               from_core=msg.inv_target, n=self.acks_forwarded)
        self.network.consume(packet)
        self.table.mark_ack_received(msg.addr, msg.inv_target)
        # The Inv-Ack round trip completes here: this router generated the
        # Inv and has now received the ack (Figure 10's measurement).
        self._memsys.stats.inv_completed(
            msg.inv_target, msg.inv_created_cycle, self.now, early=True
        )
        home = self._memsys.home_of(msg.addr)
        msg.dest_is_home = True
        msg.sender = self.node
        self.table.mark_ack_forwarded(msg.addr, msg.inv_target)
        forwarded = Packet(
            src=self.node,
            dst=home,
            payload=msg,
            size_flits=self.network.config.ctrl_packet_flits,
        )
        self.network.reinject(self.node, forwarded)
