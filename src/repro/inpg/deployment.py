"""Big-router placement strategies.

The paper's default deploys 32 big routers interleaved with 32 normal ones
on the 8x8 mesh (Figure 3) and sweeps 0/4/16/32/64 big routers distributed
evenly on the chip (Section 5.2.6).
"""

from __future__ import annotations

from typing import FrozenSet

from ..noc.topology import Mesh


def interleaved_nodes(mesh: Mesh) -> FrozenSet[int]:
    """Checkerboard pattern: every other tile hosts a big router (Fig. 3)."""
    nodes = set()
    for node in range(mesh.num_nodes):
        x, y = mesh.coords(node)
        if (x + y) % 2 == 1:
            nodes.add(node)
    return frozenset(nodes)


def evenly_spread_nodes(mesh: Mesh, count: int) -> FrozenSet[int]:
    """``count`` big routers distributed evenly over the mesh.

    * 0 -> none (the Original setup);
    * N/2 -> the checkerboard interleaving of Figure 3;
    * N -> every router is big;
    * otherwise, evenly strided sampling of the row-major node order,
      offset to avoid clustering at the mesh border.
    """
    total = mesh.num_nodes
    if count < 0 or count > total:
        raise ValueError(f"cannot place {count} big routers on {total} nodes")
    if count == 0:
        return frozenset()
    if count == total:
        return frozenset(range(total))
    if count * 2 == total:
        return interleaved_nodes(mesh)
    stride = total / count
    return frozenset(int(stride / 2 + i * stride) for i in range(count))
