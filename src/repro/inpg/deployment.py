"""Big-router placement strategies.

The paper's default deploys 32 big routers interleaved with 32 normal ones
on the 8x8 mesh (Figure 3) and sweeps 0/4/16/32/64 big routers distributed
evenly on the chip (Section 5.2.6) — but leaves *where* to put them as an
open question.  The strategies here make that a swept axis
(``InpgConfig.placement``), and all of them work on any
:class:`~repro.noc.topology.Topology` (the addressing scheme is shared;
``center``/``perimeter`` rank nodes by the topology's own hop metric):

* ``spread`` — :func:`evenly_spread_nodes`, the paper's deployment;
* ``center`` — the most central nodes (minimal total hop distance);
* ``perimeter`` — the least central nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import InpgConfig
    from ..noc.topology import Mesh, Topology


def interleaved_nodes(mesh: "Mesh") -> FrozenSet[int]:
    """Checkerboard pattern: every other tile hosts a big router (Fig. 3)."""
    nodes = set()
    for node in range(mesh.num_nodes):
        x, y = mesh.coords(node)
        if (x + y) % 2 == 1:
            nodes.add(node)
    return frozenset(nodes)


def evenly_spread_nodes(mesh: Mesh, count: int) -> FrozenSet[int]:
    """``count`` big routers distributed evenly over the mesh.

    * 0 -> none (the Original setup);
    * N/2 -> the checkerboard interleaving of Figure 3;
    * N -> every router is big;
    * otherwise, evenly strided sampling of the row-major node order,
      offset to avoid clustering at the mesh border.
    """
    total = mesh.num_nodes
    if count < 0 or count > total:
        raise ValueError(f"cannot place {count} big routers on {total} nodes")
    if count == 0:
        return frozenset()
    if count == total:
        return frozenset(range(total))
    if count * 2 == total:
        return interleaved_nodes(mesh)
    stride = total / count
    return frozenset(int(stride / 2 + i * stride) for i in range(count))


def _centrality_order(topo: "Topology") -> list:
    """Node ids by ascending total hop distance to all nodes (ties by id).

    On the mesh this ranks the geometric center first; on the torus every
    node is equally central and the order degenerates to node id; on the
    ring it likewise collapses to id order — placement differences then
    come purely from the spread pattern, which is the observation the
    ``topologies`` ablation quantifies.
    """
    total = topo.num_nodes
    cost = [
        (sum(topo.hop_distance(node, other) for other in range(total)), node)
        for node in range(total)
    ]
    return [node for _, node in sorted(cost)]


def central_nodes(topo: "Topology", count: int) -> FrozenSet[int]:
    """The ``count`` most central nodes of the topology."""
    if count < 0 or count > topo.num_nodes:
        raise ValueError(
            f"cannot place {count} big routers on {topo.num_nodes} nodes"
        )
    return frozenset(_centrality_order(topo)[:count])


def perimeter_nodes(topo: "Topology", count: int) -> FrozenSet[int]:
    """The ``count`` least central nodes of the topology."""
    if count < 0 or count > topo.num_nodes:
        raise ValueError(
            f"cannot place {count} big routers on {topo.num_nodes} nodes"
        )
    if count == 0:
        return frozenset()
    return frozenset(_centrality_order(topo)[-count:])


def place_big_routers(topo: "Topology", inpg: "InpgConfig") -> FrozenSet[int]:
    """Resolve ``InpgConfig`` (count + placement strategy) to node ids."""
    count = min(inpg.num_big_routers, topo.num_nodes)
    if inpg.placement == "spread":
        return evenly_spread_nodes(topo, count)
    if inpg.placement == "center":
        return central_nodes(topo, count)
    if inpg.placement == "perimeter":
        return perimeter_nodes(topo, count)
    raise ValueError(f"unknown placement {inpg.placement!r}")
