"""Big-router activity reports.

Aggregates per-router iNPG statistics from a finished
:class:`~repro.system.ManyCoreSystem` run: how many lock barriers each
big router created, how many GetX it stopped, early-invalidation volume,
and table pressure — the numbers behind the paper's choice of a 16-entry
locking barrier table (Figure 15's discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..system import ManyCoreSystem


@dataclass
class RouterActivity:
    node: int
    barriers_created: int
    barriers_expired: int
    ei_created: int
    getx_stopped: int
    acks_forwarded: int

    @property
    def was_active(self) -> bool:
        return self.barriers_created > 0 or self.getx_stopped > 0


@dataclass
class BigRouterReport:
    routers: List[RouterActivity] = field(default_factory=list)
    table_overflows: int = 0

    @property
    def total_stopped(self) -> int:
        return sum(r.getx_stopped for r in self.routers)

    @property
    def total_barriers(self) -> int:
        return sum(r.barriers_created for r in self.routers)

    @property
    def active_routers(self) -> int:
        return sum(1 for r in self.routers if r.was_active)

    def hottest(self, count: int = 5) -> List[RouterActivity]:
        return sorted(
            self.routers, key=lambda r: r.getx_stopped, reverse=True
        )[:count]

    def render(self) -> str:
        lines = [
            f"big routers: {len(self.routers)} deployed, "
            f"{self.active_routers} active",
            f"lock barriers created: {self.total_barriers}, "
            f"GetX stopped: {self.total_stopped}, "
            f"table overflows: {self.table_overflows}",
            "hottest routers (by stopped GetX):",
        ]
        for r in self.hottest():
            lines.append(
                f"  node {r.node:>3}: stopped={r.getx_stopped:<6} "
                f"barriers={r.barriers_created:<6} "
                f"expired={r.barriers_expired:<6} ei={r.ei_created}"
            )
        return "\n".join(lines)


def collect_report(system: "ManyCoreSystem") -> BigRouterReport:
    """Build a report from a (finished) system's big routers."""
    report = BigRouterReport(
        table_overflows=system.memsys.stats.barrier_table_overflows
    )
    for node, router in sorted(system.network.routers.items()):
        if not getattr(router, "is_big", False):
            continue
        table = router.table
        report.routers.append(
            RouterActivity(
                node=node,
                barriers_created=table.barriers_created,
                barriers_expired=table.barriers_expired,
                ei_created=table.ei_created,
                getx_stopped=router.getx_stopped,
                acks_forwarded=router.acks_forwarded,
            )
        )
    return report
