"""The five locking primitives evaluated in the paper (Section 2.1)."""

from .abql import AbqlLock
from .barrier import SenseBarrier
from .base import AddressSpace, LockPrimitive
from .factory import PRIMITIVES, canonical_primitive, make_lock
from .mcs import McsLock
from .qsl import QueueSpinLock
from .tas import TasLock
from .ticket import TicketLock

__all__ = [
    "AbqlLock",
    "AddressSpace",
    "LockPrimitive",
    "McsLock",
    "PRIMITIVES",
    "QueueSpinLock",
    "SenseBarrier",
    "TasLock",
    "TicketLock",
    "canonical_primitive",
    "make_lock",
]
