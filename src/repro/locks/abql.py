"""Array-based queuing lock (ABQL), Section 2.1(3) [2, 16].

Each competing core spins on its *own* slot of a flag array (one cache
block per slot, interleaved across L2 banks), so a release invalidates
only the next waiter's block instead of every spinner's copy.  Slot
assignment uses an atomic fetch-and-increment on a tail counter homed with
the lock, which is where the contended GetX bursts (and hence iNPG's
leverage) appear.
"""

from __future__ import annotations

from typing import Dict, List

from .base import AcquireCallback, AddressSpace, LockPrimitive, ReleaseCallback

MUST_WAIT = 0
HAS_LOCK = 1


class AbqlLock(LockPrimitive):
    """Anderson-style array lock with one block per waiting slot."""

    name = "abql"

    def __init__(self, sim, memsys, addr_space: AddressSpace, lock_id, home_node,
                 config, num_slots: int = 0):
        super().__init__(sim, memsys, addr_space, lock_id, home_node, config)
        mesh_nodes = memsys.network.mesh.num_nodes
        self.num_slots = num_slots or config.num_threads
        #: the base ``self.addr`` block is the tail counter.
        self.slot_addrs: List[int] = [
            addr_space.block((home_node + 1 + i) % mesh_nodes)
            for i in range(self.num_slots)
        ]
        self._my_slot: Dict[int, int] = {}
        # slot 0 initially holds the lock token (pre-ROI initialization).
        memsys.values[self.slot_addrs[0]] = HAS_LOCK

    def acquire(self, core: int, callback: AcquireCallback) -> None:
        def take_slot(old: int):
            return old + 1, old

        def on_slot(old: int) -> None:
            slot = old % self.num_slots
            self._my_slot[core] = slot
            self._wait_for_token(core, self.slot_addrs[slot], callback)

        # Alpha fetch-and-increment: an LL/SC retry loop in hardware
        self.memsys.rmw(core, self.addr, take_slot, on_slot, ll_sc=True)

    def _wait_for_token(self, core: int, slot_addr: int,
                        callback: AcquireCallback) -> None:
        """Wait on our own slot via the line monitor, then claim it.

        The waiter holds a tracked shared copy of its slot block and
        sleeps until the releaser's token-passing store invalidates it;
        seeing the token, an atomic claim takes ownership of the block.
        """
        def claim() -> None:
            self.memsys.rmw(
                core,
                slot_addr,
                lambda old: (old, old),
                on_claimed,
                fails_if=lambda v: v != HAS_LOCK,
            )

        def on_claimed(value: int) -> None:
            if value == HAS_LOCK:
                self._acquired(core, callback)
            else:
                wait()

        def wait() -> None:
            self._monitored_spin(
                core,
                slot_addr,
                passes=lambda v: v == HAS_LOCK,
                on_pass=lambda _: claim(),
            )

        wait()

    def _acquired(self, core: int, callback: AcquireCallback) -> None:
        self._note_acquire(core)
        callback()

    def release(self, core: int, callback: ReleaseCallback) -> None:
        slot = self._my_slot.get(core)
        if slot is None:
            raise RuntimeError(f"core {core} releasing ABQL without a slot")
        next_slot = (slot + 1) % self.num_slots

        def on_reset(_old: int) -> None:
            self.memsys.store(
                core, self.slot_addrs[next_slot], HAS_LOCK, on_passed
            )

        def on_passed(_old: int) -> None:
            self._note_release(core)
            del self._my_slot[core]
            callback()

        # reset our slot, then pass the token to the next slot
        self.memsys.store(core, self.slot_addrs[slot], MUST_WAIT, on_reset)
