"""Sense-reversing centralized barrier.

PARSEC programs synchronize with barriers as well as locks (the paper
excludes blackscholes precisely because it *only* uses barriers,
footnote 4).  This is the classic sense-reversing construction on the
coherent memory system: arrivals fetch-and-decrement a counter; the last
arrival resets the counter and flips the shared *sense* word, releasing
everyone spinning (via line monitors) on their local copy.

It composes from the same primitives as the locks — LL/SC
fetch-and-decrement, plain store for the sense flip, monitored local
spinning — so all its coherence traffic (one RMW per arrival, one
invalidation storm per episode on the sense line) is real.
"""

from __future__ import annotations

from typing import Callable, Dict, TYPE_CHECKING

from ..config import SystemConfig
from ..sim import Component, Simulator
from .base import AddressSpace

if TYPE_CHECKING:  # pragma: no cover
    from ..coherence.memsystem import MemorySystem

ArriveCallback = Callable[[], None]


class SenseBarrier(Component):
    """A reusable barrier for ``parties`` participants."""

    def __init__(
        self,
        sim: Simulator,
        memsys: "MemorySystem",
        addr_space: AddressSpace,
        barrier_id: int,
        home_node: int,
        config: SystemConfig,
        parties: int,
    ):
        super().__init__(sim, f"barrier{barrier_id}")
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self.memsys = memsys
        self.config = config
        self.parties = parties
        #: arrival counter and the sense word, in separate blocks (the
        #: counter is RMW-contended; the sense line is read-shared)
        self.counter_addr = addr_space.block(home_node)
        self.sense_addr = addr_space.block(home_node)
        memsys.values[self.counter_addr] = parties
        memsys.values[self.sense_addr] = 0
        self.episodes = 0
        #: each core tracks the sense it is waiting to see
        self._local_sense: Dict[int, int] = {}

    def arrive(self, core: int, callback: ArriveCallback) -> None:
        """Arrive at the barrier; ``callback`` fires when it opens."""
        target_sense = 1 - self._local_sense.get(core, 0)
        self._local_sense[core] = target_sense

        def on_decrement(old: int) -> None:
            if old == 1:
                # last arrival: reset the counter, then flip the sense
                self.memsys.store(
                    core, self.counter_addr, self.parties,
                    lambda _v: self.memsys.store(
                        core, self.sense_addr, target_sense, on_released
                    ),
                )
            else:
                self._wait_for_sense(core, target_sense, callback)

        def on_released(_v: int) -> None:
            self.episodes += 1
            callback()

        self.memsys.rmw(
            core, self.counter_addr,
            lambda old: (old - 1, old), on_decrement, ll_sc=True,
        )

    def _wait_for_sense(
        self, core: int, target_sense: int, callback: ArriveCallback
    ) -> None:
        def check() -> None:
            self.memsys.load(core, self.sense_addr, on_value)

        def on_value(value: int) -> None:
            if value == target_sense:
                callback()
            else:
                self.memsys.monitor_invalidation(
                    core, self.sense_addr, check
                )

        check()
