"""Lock primitive base class and spin-loop helper.

Every primitive of Section 2.1 is implemented as a callback state machine
over the coherent memory system: acquires and releases issue loads, plain
stores and atomic RMWs against real cache lines, so all lock-coherence
traffic (GetS/GetX bursts, invalidation storms, ownership chains) emerges
from the protocol rather than being modelled analytically.

Address placement: the primary lock variable lives in a block homed at the
lock's ``home_node`` (the paper pins its Figure 10 microbenchmark lock at
core (5,6)); auxiliary structures are placed per primitive (e.g. MCS queue
nodes at their owning core's node, ABQL slot array interleaved).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from ..config import SystemConfig
from ..sim import Component, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..coherence.memsystem import MemorySystem

AcquireCallback = Callable[[], None]
ReleaseCallback = Callable[[], None]
#: per-poll priority supplier (OCOR hooks in here); args: core id
PriorityFn = Callable[[int], int]


class AddressSpace:
    """Allocates distinct cache blocks with chosen home nodes."""

    def __init__(self, memsys: "MemorySystem"):
        self.memsys = memsys
        self._next_index: Dict[int, int] = {}

    def block(self, home_node: int) -> int:
        """A fresh block-aligned address homed at ``home_node``."""
        index = self._next_index.get(home_node, 0)
        self._next_index[home_node] = index + 1
        return self.memsys.addr_for_home(home_node, index)


class LockPrimitive(Component):
    """Abstract spin lock bound to one simulated lock instance."""

    name = "base"

    #: rebound to the tracer's ``emit`` by ``Observation.attach``; the
    #: guarded call sites below cost one None test when tracing is off.
    _trace = None

    def __init__(
        self,
        sim: Simulator,
        memsys: "MemorySystem",
        addr_space: AddressSpace,
        lock_id: int,
        home_node: int,
        config: SystemConfig,
    ):
        super().__init__(sim, f"lock{lock_id}")
        self.memsys = memsys
        self.lock_id = lock_id
        self.home_node = home_node
        self.config = config
        self.addr = addr_space.block(home_node)
        self.acquisitions = 0
        self.releases = 0
        #: previous holder / its release cycle, for handoff tracing
        self._last_holder: Optional[int] = None
        self._last_release_cycle: Optional[int] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def acquire(self, core: int, callback: AcquireCallback) -> None:
        raise NotImplementedError

    def release(self, core: int, callback: ReleaseCallback) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Accounting (every primitive funnels its acquire/release commits
    # through these, giving the tracer one place to see lock handoffs)
    # ------------------------------------------------------------------
    def _note_acquire(self, core: int) -> None:
        """Count a committed acquisition; trace acquire + handoff edges."""
        self.acquisitions += 1
        tr = self._trace
        if tr is not None:
            component = f"lock/{self.lock_id}"
            tr(component, "lock.acquire", core=core, n=self.acquisitions)
            last = self._last_holder
            if last is not None and last != core:
                gap = (
                    self.now - self._last_release_cycle
                    if self._last_release_cycle is not None
                    else 0
                )
                tr(component, "lock.handoff",
                   from_core=last, to_core=core, gap=gap)
        self._last_holder = core

    def _note_release(self, core: int) -> None:
        """Count a committed release; trace the release edge."""
        self.releases += 1
        self._last_release_cycle = self.now
        tr = self._trace
        if tr is not None:
            tr(f"lock/{self.lock_id}", "lock.release", core=core)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _spin_until(
        self,
        core: int,
        addr: int,
        passes: Callable[[int], bool],
        on_pass: Callable[[int], None],
        priority: int = 0,
        on_poll: Optional[Callable[[], None]] = None,
    ) -> None:
        """Poll ``addr`` every ``spin_interval`` cycles until ``passes``.

        Polls hit the local L1 copy while it stays valid; an invalidation
        (the lock holder's release, or a new winner's acquisition) turns
        the next poll into a GetS refetch — exactly the spin-lock traffic
        pattern of Section 3.2.
        """
        interval = self.config.spin.spin_interval

        def poll() -> None:
            self.memsys.load(core, addr, on_value, priority=priority)

        def on_value(value: int) -> None:
            if on_poll is not None:
                on_poll()
            if passes(value):
                on_pass(value)
            else:
                self.after(interval, poll)

        poll()

    def _monitored_spin(
        self,
        core: int,
        addr: int,
        passes: Callable[[int], bool],
        on_pass: Callable[[int], None],
        priority: int = 0,
    ) -> None:
        """Spin via the L1 line monitor instead of timed polling.

        Reads the line once; while the condition fails, arms the hardware
        invalidation monitor (LL-monitor / MWAIT) and re-reads only when
        coherence takes the copy away.  Identical network behaviour to
        timed local polling (valid-line polls never leave the core), but
        without burning simulator events on them.
        """

        def check() -> None:
            self.memsys.load(core, addr, on_value, priority=priority)

        def on_value(value: int) -> None:
            if passes(value):
                on_pass(value)
            else:
                self.memsys.monitor_invalidation(core, addr, check)

        check()

    def _after_local_op(self, fn: Callable[[], None]) -> None:
        """Model the core-local ALU work between load and RMW (Line 3)."""
        self.after(self.config.spin.local_op_cycles, fn)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(id={self.lock_id}, addr={self.addr:#x})"
