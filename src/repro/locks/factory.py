"""Lock primitive factory — the five primitives of the paper."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..config import SystemConfig
from ..sim import Simulator
from .abql import AbqlLock
from .base import AddressSpace, LockPrimitive
from .mcs import McsLock
from .qsl import QueueSpinLock
from .tas import TasLock
from .ticket import TicketLock

if TYPE_CHECKING:  # pragma: no cover
    from ..coherence.memsystem import MemorySystem
    from ..cpu.os_model import OsModel

#: primitive names as used throughout the paper's figures
PRIMITIVES = ("tas", "ticket", "abql", "mcs", "qsl")

#: paper aliases
_ALIASES = {
    "tas": "tas",
    "ttl": "ticket",
    "ticket": "ticket",
    "abql": "abql",
    "mcs": "mcs",
    "qsl": "qsl",
}


def canonical_primitive(name: str) -> str:
    """Resolve a primitive name or paper alias (e.g. TTL) to canonical form."""
    key = name.lower()
    if key not in _ALIASES:
        raise ValueError(f"unknown lock primitive {name!r}; use one of {PRIMITIVES}")
    return _ALIASES[key]


def make_lock(
    primitive: str,
    sim: Simulator,
    memsys: "MemorySystem",
    addr_space: AddressSpace,
    lock_id: int,
    home_node: int,
    config: SystemConfig,
    os_model: Optional["OsModel"] = None,
) -> LockPrimitive:
    """Instantiate one lock of the requested primitive."""
    kind = canonical_primitive(primitive)
    if kind == "tas":
        return TasLock(sim, memsys, addr_space, lock_id, home_node, config)
    if kind == "ticket":
        return TicketLock(sim, memsys, addr_space, lock_id, home_node, config)
    if kind == "abql":
        return AbqlLock(
            sim, memsys, addr_space, lock_id, home_node, config,
            num_slots=config.num_threads,
        )
    if kind == "mcs":
        return McsLock(
            sim, memsys, addr_space, lock_id, home_node, config,
            num_cores=memsys.network.mesh.num_nodes,
        )
    if kind == "qsl":
        if os_model is None:
            raise ValueError("QSL requires an OS model for its sleep phase")
        return QueueSpinLock(
            sim, memsys, addr_space, lock_id, home_node, config, os_model
        )
    raise AssertionError(kind)
