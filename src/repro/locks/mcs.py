"""Mellor-Crummey & Scott (MCS) lock, Section 2.1(4) [26].

Per-core queue nodes eliminate cache-line bouncing: each waiter spins on
the ``locked`` flag of its own queue node (a block homed at its own tile),
and a releasing core pokes exactly its successor.  The only globally
contended line is the tail pointer, hit once per acquisition with an
atomic swap — which is why MCS shows the lowest LCO in Figure 2 and the
smallest (but still positive) iNPG gain in Figure 13.

Queue node encoding (one block per core): ``((next_id + 1) << 1) | locked``
where next_id + 1 == 0 means "no successor".
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import AcquireCallback, AddressSpace, LockPrimitive, ReleaseCallback

NIL = 0  # encoded "no successor" / "queue empty"


def encode(next_id_plus1: int, locked: int) -> int:
    return (next_id_plus1 << 1) | locked


def next_of(value: int) -> int:
    """Successor core id, or -1 when none."""
    return (value >> 1) - 1


def is_locked(value: int) -> bool:
    return bool(value & 1)


class McsLock(LockPrimitive):
    """Queue-based spin lock with per-core local spinning."""

    name = "mcs"

    def __init__(self, sim, memsys, addr_space: AddressSpace, lock_id, home_node,
                 config, num_cores: int = 0):
        super().__init__(sim, memsys, addr_space, lock_id, home_node, config)
        cores = num_cores or memsys.network.mesh.num_nodes
        #: ``self.addr`` is the tail pointer; qnodes live at their core.
        self.qnode_addrs: Dict[int, int] = {
            core: addr_space.block(core) for core in range(cores)
        }

    # ------------------------------------------------------------------
    def acquire(self, core: int, callback: AcquireCallback) -> None:
        qnode = self.qnode_addrs[core]

        def init_qnode(_old: int):
            return encode(NIL, 1), _old

        def on_init(_old: int) -> None:
            # Alpha atomic exchange: an LL/SC retry loop in hardware
            self.memsys.rmw(core, self.addr, swap_tail, on_prev, ll_sc=True)

        def swap_tail(old: int):
            return core + 1, old

        def on_prev(old: int) -> None:
            prev = old - 1
            if old == NIL:
                self._note_acquire(core)
                callback()
                return
            # link into the predecessor's qnode, then spin locally
            prev_qnode = self.qnode_addrs[prev]
            self.memsys.rmw(
                core,
                prev_qnode,
                lambda v: (encode(core + 1, 1 if is_locked(v) else 0), v),
                lambda _v: self._spin_local(core, qnode, callback),
                is_atomic=False,
            )

        self.memsys.rmw(core, qnode, init_qnode, on_init, is_atomic=False)

    def _spin_local(self, core: int, qnode: int, callback: AcquireCallback) -> None:
        self._monitored_spin(
            core,
            qnode,
            passes=lambda v: not is_locked(v),
            on_pass=lambda _: self._acquired(core, callback),
        )

    def _acquired(self, core: int, callback: AcquireCallback) -> None:
        self._note_acquire(core)
        callback()

    # ------------------------------------------------------------------
    def release(self, core: int, callback: ReleaseCallback) -> None:
        qnode = self.qnode_addrs[core]

        def on_qnode(value: int) -> None:
            successor = next_of(value)
            if successor >= 0:
                self._unlock_successor(core, successor, callback)
                return
            # no known successor: try to swing the tail back to nil
            self.memsys.rmw(core, self.addr, cas_tail_to_nil, on_cas, ll_sc=True)

        def cas_tail_to_nil(old: int):
            if old == core + 1:
                return NIL, 1  # success
            return old, 0  # someone is enqueueing behind us

        def on_cas(success: int) -> None:
            if success:
                self._note_release(core)
                callback()
                return
            # wait for the in-flight successor to link itself in
            self._monitored_spin(
                core,
                qnode,
                passes=lambda v: next_of(v) >= 0,
                on_pass=lambda v: self._unlock_successor(
                    core, next_of(v), callback
                ),
            )

        self.memsys.load(core, qnode, on_qnode)

    def _unlock_successor(
        self, core: int, successor: int, callback: ReleaseCallback
    ) -> None:
        succ_qnode = self.qnode_addrs[successor]

        def clear_locked(v: int):
            return encode(v >> 1, 0), v

        def on_done(_v: int) -> None:
            self._note_release(core)
            callback()

        self.memsys.rmw(core, succ_qnode, clear_locked, on_done, is_atomic=False)


def _unused(*_a) -> None:  # pragma: no cover
    pass
