"""Queue spin-lock (QSL), Section 2.1(5) — the Linux 4.2 default.

Two-phase acquisition: a bounded spin phase (128 retries by default,
test-and-test-and-set polling with atomic SWAP attempts on observed-free),
then a sleep phase — the thread context-switches out and parks in the OS
wait queue until the holder's release wakes it.

OCOR hooks in here: while spinning, each poll decrements the thread's
remaining-times-of-retry (RTR), and the thread's lock request packets
carry the corresponding priority (small RTR -> high priority, so threads
about to pay the expensive sleep path win first).  Requests from freshly
woken threads carry the single lowest priority level.

Reproduction note: the paper configures QSL's spin phase "as MCS"; we use
the retry-counted TTAS spin that OCOR's RTR mechanism is defined over
(Linux qspinlock's pre-queue pending spin), which preserves the spin/sleep
trade-off and the retry accounting both OCOR and Figure 9 depend on.  The
pure MCS primitive is evaluated separately (Figure 13).
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from ..ocor.priority import spin_priority, wakeup_priority
from .base import AcquireCallback, AddressSpace, LockPrimitive, ReleaseCallback

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.os_model import OsModel

FREE = 0
OCCUPIED = 1


class QueueSpinLock(LockPrimitive):
    """Spin-then-sleep lock with OS wait queue and OCOR priorities."""

    name = "qsl"

    def __init__(self, sim, memsys, addr_space: AddressSpace, lock_id, home_node,
                 config, os_model: "OsModel"):
        super().__init__(sim, memsys, addr_space, lock_id, home_node, config)
        self.os_model = os_model
        self.spin_budget = config.os.qsl_spin_retries
        self.ocor_enabled = config.ocor.enabled
        self.acquired_spinning = 0
        self.acquired_after_sleep = 0

    # ------------------------------------------------------------------
    def _priority(self, rtr: int, just_woken: bool) -> int:
        if not self.ocor_enabled:
            return 0
        if just_woken:
            return wakeup_priority(self.config.ocor)
        return spin_priority(rtr, self.config.ocor)

    def acquire(self, core: int, callback: AcquireCallback) -> None:
        self._spin_phase(core, callback, rtr=self.spin_budget, just_woken=False)

    def _spin_phase(
        self, core: int, callback: AcquireCallback, rtr: int, just_woken: bool
    ) -> None:
        state = {"rtr": rtr, "woken": just_woken}
        interval = self.config.spin.spin_interval
        raw = self.config.spin.raw_spin

        def poll() -> None:
            if state["rtr"] <= 0:
                self._go_to_sleep(core, callback)
                return
            prio = self._priority(state["rtr"], state["woken"])
            if raw:
                # every retry is an atomic SWAP attempt carrying the RTR
                # priority — exactly the packets OCOR prioritizes
                state["rtr"] -= 1
                attempt_swap(prio)
            else:
                self.memsys.load(core, self.addr, on_value, priority=prio)

        def on_value(value: int) -> None:
            state["rtr"] -= 1
            if value == FREE:
                self._after_local_op(
                    lambda: attempt_swap(
                        self._priority(state["rtr"], state["woken"])
                    )
                )
            else:
                state["woken"] = False
                self.after(interval, poll)

        def attempt_swap(prio: int) -> None:
            self.memsys.rmw(
                core,
                self.addr,
                lambda old: (OCCUPIED, old),
                on_old,
                priority=prio,
                fails_if=lambda v: v != FREE,
            )

        def on_old(old: int) -> None:
            if old == FREE:
                self._note_acquire(core)
                if state["woken"]:
                    self.acquired_after_sleep += 1
                else:
                    self.acquired_spinning += 1
                callback()
            else:
                state["woken"] = False
                self.after(interval, poll)

        poll()

    def _go_to_sleep(self, core: int, callback: AcquireCallback) -> None:
        switch = self.config.os.context_switch_cycles

        def parked() -> None:
            self.os_model.sleep(self.lock_id, self.addr, core, on_wake)

        def on_wake() -> None:
            # wake latency was charged by the OS model; pay the switch-in
            self.after(
                switch,
                lambda: self._spin_phase(
                    core, callback, rtr=self.spin_budget, just_woken=True
                ),
            )

        # pay the switch-out, then park
        self.after(switch, parked)

    # ------------------------------------------------------------------
    def release(self, core: int, callback: ReleaseCallback) -> None:
        def on_done(_old: int) -> None:
            self._note_release(core)
            self.os_model.notify_release(self.lock_id)
            callback()

        self.memsys.store(core, self.addr, FREE, on_done)
