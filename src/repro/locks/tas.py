"""Test-and-set lock (TAS), Section 2.1(1) and Algorithm 1.

Test-and-test-and-set variant, exactly the paper's Algorithm 1: spin on a
local copy of the lock until it reads 0 (Lines 1-2), then attempt an atomic
SWAP of 1 into it (Lines 3-4).  Every waiting core attacks the single
shared lock word, so each release triggers a full GetX burst — the
heaviest LCO of all primitives (Figure 2).
"""

from __future__ import annotations

from .base import AcquireCallback, LockPrimitive, ReleaseCallback

FREE = 0
OCCUPIED = 1


class TasLock(LockPrimitive):
    """Spin lock with atomic test_and_set acquisition.

    Default (``raw_spin``): the paper's Section 2.1(1) — every retry is
    an atomic test_and_set, so each waiting core continually attacks the
    shared lock word with exclusive requests; losers receive fresh copies
    from each round's winner (Figure 4 Step 4) and retry.  With
    ``raw_spin=False`` the lock becomes test-and-test-and-set: spin on a
    local copy (Algorithm 1 Lines 1-2) and swap only on observed-free.
    """

    name = "tas"

    def acquire(self, core: int, callback: AcquireCallback) -> None:
        if self.config.spin.raw_spin:
            self._attempt_swap(core, callback)
        else:
            self._spin_phase(core, callback)

    def _spin_phase(self, core: int, callback: AcquireCallback) -> None:
        self._monitored_spin(
            core,
            self.addr,
            passes=lambda v: v == FREE,
            on_pass=lambda _: self._attempt_swap(core, callback),
        )

    def _attempt_swap(self, core: int, callback: AcquireCallback) -> None:
        def do_swap() -> None:
            self.memsys.rmw(
                core,
                self.addr,
                _swap_in_one,
                on_old_value,
                fails_if=lambda v: v != FREE,
            )

        def on_old_value(old: int) -> None:
            if old == FREE:
                self._note_acquire(core)
                callback()
            else:
                # lost the race (Line 5 BENZ fails): retry
                self.after(self.config.spin.spin_interval, retry)

        def retry() -> None:
            if self.config.spin.raw_spin:
                self._attempt_swap(core, callback)
            else:
                self._spin_phase(core, callback)

        self._after_local_op(do_swap)

    def release(self, core: int, callback: ReleaseCallback) -> None:
        def on_done(_old: int) -> None:
            self._note_release(core)
            callback()

        self.memsys.store(core, self.addr, FREE, on_done)


def _swap_in_one(old: int):
    """SWAP R2, 0(R1) with R2 == 1: store 1, return the previous value."""
    return OCCUPIED, old
