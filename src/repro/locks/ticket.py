"""The ticket lock (TTL), Section 2.1(2), after Reed & Kanodia [31].

Two counters — a *request* (next-ticket) counter and a *release*
(now-serving) counter — packed, as in real implementations, into one cache
line: the lock word encodes ``(next_ticket << 16) | now_serving``.  A core
takes a ticket with an atomic fetch-and-increment on the high half, then
spins until the low half equals its ticket.  Releasing increments the low
half (an ordinary store in hardware; same cache line, so it still
invalidates every spinner's copy).
"""

from __future__ import annotations

from typing import Dict

from .base import AcquireCallback, LockPrimitive, ReleaseCallback

_SERVING_MASK = 0xFFFF
_TICKET_SHIFT = 16


def next_ticket(value: int) -> int:
    return value >> _TICKET_SHIFT


def now_serving(value: int) -> int:
    return value & _SERVING_MASK


def pack(ticket: int, serving: int) -> int:
    return ((ticket & _SERVING_MASK) << _TICKET_SHIFT) | (serving & _SERVING_MASK)


class TicketLock(LockPrimitive):
    """FIFO spin lock with a ticket/serving counter pair."""

    name = "ticket"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._my_ticket: Dict[int, int] = {}

    def acquire(self, core: int, callback: AcquireCallback) -> None:
        def take_ticket(old: int):
            new = pack(next_ticket(old) + 1, now_serving(old))
            return new, old

        def on_ticket(old: int) -> None:
            ticket = next_ticket(old)
            self._my_ticket[core] = ticket
            if now_serving(old) == ticket:
                self._note_acquire(core)
                callback()
                return
            self._wait_turn(core, ticket, callback)

        # Alpha fetch-and-increment: an LL/SC retry loop in hardware
        self.memsys.rmw(core, self.addr, take_ticket, on_ticket, ll_sc=True)

    def _wait_turn(self, core: int, ticket: int, callback: AcquireCallback) -> None:
        """Wait until ``now_serving == ticket``, then claim the lock line.

        Waiting is an LL + line-monitor loop: hold a tracked shared copy,
        sleep until coherence invalidates it, re-fetch and re-check.  Once
        our ticket comes up, an atomic *claim* (an SC that changes nothing
        but takes exclusive ownership) serializes the handoff through the
        home node.
        """
        def not_my_turn(v: int) -> bool:
            return now_serving(v) != ticket

        def claim() -> None:
            self.memsys.rmw(
                core,
                self.addr,
                lambda old: (old, old),  # claim: take ownership, no change
                on_claimed,
                fails_if=not_my_turn,
            )

        def on_claimed(value: int) -> None:
            if now_serving(value) == ticket:
                self._acquired(core, callback)
            else:
                wait()

        def wait() -> None:
            self._monitored_spin(
                core,
                self.addr,
                passes=lambda v: now_serving(v) == ticket,
                on_pass=lambda _: claim(),
            )

        wait()

    def _acquired(self, core: int, callback: AcquireCallback) -> None:
        self._note_acquire(core)
        callback()

    def release(self, core: int, callback: ReleaseCallback) -> None:
        ticket = self._my_ticket.get(core)
        if ticket is None:
            raise RuntimeError(f"core {core} releasing a ticket it never took")

        def bump_serving(old: int):
            new = pack(next_ticket(old), (ticket + 1) & _SERVING_MASK)
            return new, old

        def on_done(_old: int) -> None:
            self._note_release(core)
            del self._my_ticket[core]
            callback()

        # the release counter update is an ordinary store in hardware
        self.memsys.rmw(core, self.addr, bump_serving, on_done, is_atomic=False)
