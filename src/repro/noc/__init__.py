"""Network-on-chip substrate: mesh, XY routing, routers, fabric.

Two fidelity levels: the packet-granularity :class:`Network` used by the
full system, and the flit-level validation model in
:mod:`repro.noc.flitsim`.  Synthetic traffic patterns and load sweeps
live in :mod:`repro.noc.traffic`.
"""

from .flitsim import FlitNetwork, FlitPacket, FlitRouter
from .network import Network
from .packet import Packet
from .port import OutputPort
from .router import CONTINUE, STOPPED, Router
from .topology import Mesh
from .traffic import (
    PATTERNS,
    TrafficResult,
    latency_load_curve,
    run_packet_traffic,
)

__all__ = [
    "CONTINUE",
    "FlitNetwork",
    "FlitPacket",
    "FlitRouter",
    "Mesh",
    "Network",
    "OutputPort",
    "PATTERNS",
    "Packet",
    "Router",
    "STOPPED",
    "TrafficResult",
    "latency_load_curve",
    "run_packet_traffic",
]
