"""Network-on-chip substrate: mesh, XY routing, routers, fabric.

Two fidelity levels: the packet-granularity :class:`Network` used by the
full system, and the flit-level validation model — itself available as
two bit-exact engines, the event-driven reference
(:mod:`repro.noc.flitsim`) and the cycle-batched vector engine
(:mod:`repro.noc.vecflit`); :func:`make_flit_network` selects one by
name.  Synthetic traffic patterns and load sweeps live in
:mod:`repro.noc.traffic`.
"""

from .flitsim import FlitNetwork, FlitPacket, FlitRouter
from .network import Network
from .packet import Packet
from .port import OutputPort
from .router import CONTINUE, STOPPED, Router
from .topology import Mesh
from .traffic import (
    PATTERNS,
    TrafficResult,
    latency_load_curve,
    run_packet_traffic,
)
from .vecflit import (
    HAS_NUMPY,
    VectorFlitFabric,
    VectorFlitNetwork,
    make_flit_network,
)

__all__ = [
    "CONTINUE",
    "FlitNetwork",
    "FlitPacket",
    "FlitRouter",
    "HAS_NUMPY",
    "Mesh",
    "Network",
    "OutputPort",
    "PATTERNS",
    "Packet",
    "Router",
    "STOPPED",
    "TrafficResult",
    "VectorFlitFabric",
    "VectorFlitNetwork",
    "latency_load_curve",
    "make_flit_network",
    "run_packet_traffic",
]
