"""Network-on-chip substrate: topologies, routing, routers, fabric.

Two fidelity levels: the packet-granularity :class:`Network` used by the
full system (any :class:`Topology`: mesh, torus, ring — selected by the
``NocConfig.topology`` axis via :func:`make_topology`), and the
flit-level validation model — itself available as three bit-exact
mesh-only engines, the event-driven reference (:mod:`repro.noc.flitsim`),
the cycle-batched vector engine (:mod:`repro.noc.vecflit`) and the
row-band sharded multi-process engine (:mod:`repro.noc.shardflit`);
:func:`make_flit_network` selects one by name.  Output-port arbitration
is selectable per the ``NocConfig.arbiter`` axis (:class:`OutputPort`
round-robin or :mod:`repro.noc.arbiter` weighted round-robin).
Synthetic traffic patterns and load sweeps live in
:mod:`repro.noc.traffic`.
"""

from .arbiter import WeightedRoundRobinArbiter, WrrOutputPort
from .flitsim import FlitNetwork, FlitPacket, FlitRouter
from .network import Network
from .packet import Packet
from .port import OutputPort
from .router import CONTINUE, STOPPED, Router
from .topology import (
    TOPOLOGY_CLASSES,
    Mesh,
    Ring,
    Topology,
    Torus,
    make_topology,
)
from .traffic import (
    PATTERNS,
    TrafficResult,
    latency_load_curve,
    run_packet_traffic,
)
from .shardflit import ShardedFlitFabric, ShardedFlitNetwork
from .vecflit import (
    HAS_NUMPY,
    VectorFlitFabric,
    VectorFlitNetwork,
    make_flit_network,
)

__all__ = [
    "CONTINUE",
    "FlitNetwork",
    "FlitPacket",
    "FlitRouter",
    "HAS_NUMPY",
    "Mesh",
    "Network",
    "OutputPort",
    "PATTERNS",
    "Packet",
    "Ring",
    "Router",
    "STOPPED",
    "ShardedFlitFabric",
    "ShardedFlitNetwork",
    "TOPOLOGY_CLASSES",
    "Topology",
    "Torus",
    "TrafficResult",
    "VectorFlitFabric",
    "VectorFlitNetwork",
    "WeightedRoundRobinArbiter",
    "WrrOutputPort",
    "latency_load_curve",
    "make_flit_network",
    "make_topology",
    "run_packet_traffic",
]
