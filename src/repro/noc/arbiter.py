"""Weighted round-robin output-port arbitration.

The default :class:`~repro.noc.port.OutputPort` arbitrates with a single
heap ordered ``(vnet, priority, age)``: control traffic (vnet 0) always
preempts queued data bursts.  That is strict VC priority, which is the
right model for the paper's baseline but starves data under sustained
control storms.

:class:`WrrOutputPort` replaces the strict-priority stage between VC
classes with credit-based weighted round-robin: each ``vnet`` class owns
a queue and a weight; the active class may win up to ``weight``
consecutive grants before the arbiter rotates to the next backlogged
class (ascending class id, wrapping).  Within a class, arbitration is
unchanged — OCOR priority first where enabled, then oldest-first.

Weights come from ``NocConfig.wrr_weights`` and map to classes by index
(class ``i`` gets ``weights[i % len(weights)]``), so the default
``(2, 1)`` reads: two control grants per data grant under full backlog,
and dateline-escalated classes (vnet 2/3, torus/ring) inherit the same
pattern.  The port is selected by the ``NocConfig.arbiter`` axis; the
default ``"rr"`` path in :mod:`repro.noc.port` is untouched.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..sim import Simulator
from .packet import Packet
from .port import OutputPort

#: per-class queue key: (negated priority, arrival cycle, tie-break seq)
_ClassKey = Tuple[int, int, int]


class WeightedRoundRobinArbiter:
    """Credit-based WRR over virtual-network classes.

    Deterministic by construction: rotation order is ascending class id,
    credits refill to the class weight when a class becomes active, and
    within a class requests pop in ``(priority, age, seq)`` order.
    """

    __slots__ = (
        "priority_aware",
        "_weights",
        "_queues",
        "_seq",
        "_active",
        "_credits",
        "pending",
    )

    def __init__(
        self, weights: Tuple[int, ...], priority_aware: bool = False
    ):
        weights = tuple(int(w) for w in weights)
        if not weights or any(w < 1 for w in weights):
            raise ValueError(
                f"WRR weights must be positive integers, got {weights!r}"
            )
        self.priority_aware = priority_aware
        self._weights = weights
        #: class id -> heap of (key, packet, on_granted)
        self._queues: Dict[
            int, List[Tuple[_ClassKey, Packet, Callable[[Packet], None]]]
        ] = {}
        self._seq = 0
        self._active: Optional[int] = None
        self._credits = 0
        self.pending = 0

    def weight_of(self, vnet: int) -> int:
        return self._weights[vnet % len(self._weights)]

    def push(
        self, packet: Packet, on_granted: Callable[[Packet], None], now: int
    ) -> None:
        priority = packet.priority if self.priority_aware else 0
        key = (-priority, now, self._seq)
        self._seq += 1
        queue = self._queues.get(packet.vnet)
        if queue is None:
            queue = self._queues[packet.vnet] = []
        heapq.heappush(queue, (key, packet, on_granted))
        self.pending += 1

    def pop(
        self,
    ) -> Optional[Tuple[int, Packet, Callable[[Packet], None]]]:
        """Grant the next request: ``(arrival_cycle, packet, on_granted)``.

        Returns ``None`` when nothing is queued.
        """
        if self.pending == 0:
            return None
        cls = self._active
        if cls is None or self._credits <= 0 or not self._queues.get(cls):
            cls = self._next_class(cls)
            self._active = cls
            self._credits = self.weight_of(cls)
        self._credits -= 1
        key, packet, on_granted = heapq.heappop(self._queues[cls])
        self.pending -= 1
        return key[1], packet, on_granted

    def _next_class(self, after: Optional[int]) -> int:
        backlogged = sorted(c for c, q in self._queues.items() if q)
        if after is not None:
            for cls in backlogged:
                if cls > after:
                    return cls
        return backlogged[0]


class WrrOutputPort(OutputPort):
    """An :class:`OutputPort` arbitrating across VC classes with WRR.

    Statistics contracts are identical to the base port (``packets_sent``,
    ``flits_sent``, ``total_wait_cycles``, ``peak_queue_depth``), so the
    ``repro.obs`` registry aggregates both kinds transparently.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        priority_aware: bool = False,
        weights: Tuple[int, ...] = (2, 1),
    ):
        super().__init__(sim, name, priority_aware)
        self._arbiter = WeightedRoundRobinArbiter(weights, priority_aware)

    def request(
        self, packet: Packet, on_granted: Callable[[Packet], None]
    ) -> None:
        arbiter = self._arbiter
        if not self._busy and arbiter.pending == 0:
            # same uncontended fast path (and stats invariant) as the base
            if self._peak_queue_depth == 0:
                self._peak_queue_depth = 1
            self._grant(packet, on_granted)
            return
        arbiter.push(packet, on_granted, self.now)
        if arbiter.pending > self._peak_queue_depth:
            self._peak_queue_depth = arbiter.pending

    def _grant_next(self) -> None:
        granted = self._arbiter.pop()
        if granted is None:
            self._busy = False
            return
        arrival, packet, on_granted = granted
        self.total_wait_cycles += self.now - arrival
        self._grant(packet, on_granted)

    @property
    def queue_depth(self) -> int:
        return self._arbiter.pending
