"""Flit-level fabric adapter: the full system on the detailed NoC.

Exposes the flit-level model (:mod:`repro.noc.flitsim`) behind the same
interface the coherence layer uses (``send`` / ``register_endpoint`` /
statistics), so a :class:`~repro.system.ManyCoreSystem` can be assembled
on it for high-fidelity validation runs::

    cfg = SystemConfig(noc=NocConfig(flit_level=True))

Limitations (by design — this is a validation mode):

* **No iNPG.**  Big-router packet inspection hooks exist only in the
  packet-level model; enabling iNPG with ``flit_level`` raises.
* **No priority arbitration / virtual-network classes** — the flit model
  arbitrates round-robin per physical router, so OCOR's packet
  priorities are ignored (its home-queue ordering still applies).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import NocConfig
from ..sim import Component, Simulator
from .flitsim import FlitNetwork, FlitPacket
from .packet import Packet
from .topology import Mesh

EndpointHandler = Callable[[Packet], None]


class FlitFabric(Component):
    """Network-interface-compatible wrapper over :class:`FlitNetwork`."""

    #: injection-site fault filter ``(packet, forward) -> consumed``;
    #: rebound by ``repro.faults.FaultInjector.install``.  The flit model
    #: has no per-router hooks, so ``inject`` is the only site type the
    #: fabric supports (router/link sites raise at install time).
    _fault_inject = None
    #: names this model in structured fault-refusal errors
    fault_model_name = "flit/event"

    def __init__(self, sim: Simulator, config: NocConfig,
                 priority_arbitration: bool = False):
        super().__init__(sim, "flitfabric")
        self.config = config
        self.fabric = FlitNetwork(sim, config)
        self.mesh: Mesh = self.fabric.mesh
        self.priority_arbitration = priority_arbitration
        self._endpoints: Dict[int, EndpointHandler] = {}
        self.fabric.on_delivery = self._on_delivery
        self.packets_injected = 0
        self.packets_delivered = 0
        self.packets_consumed = 0
        #: packets consumed by fault injection (never entered the fabric)
        self.packets_dropped = 0
        self.total_latency = 0
        #: kept for interface parity with Network
        self.memsys = None
        self.routers: Dict[int, object] = {}

    # ------------------------------------------------------------------
    def register_endpoint(self, node: int, handler: EndpointHandler) -> None:
        if node in self._endpoints:
            raise ValueError(f"endpoint for node {node} already registered")
        self._endpoints[node] = handler

    def send(
        self,
        src: int,
        dst: int,
        payload: object,
        size_flits: int = 1,
        priority: int = 0,
        origin: Optional[int] = None,
    ) -> Packet:
        """Inject a coherence message as a flit-level packet."""
        shadow = Packet(
            src=src, dst=dst, payload=payload, size_flits=size_flits,
            priority=priority, origin=origin if origin is not None else src,
        )
        shadow.injected_cycle = self.now
        self.packets_injected += 1
        fi = self._fault_inject
        if fi is not None:
            if not fi(shadow, self._inject):
                self._inject(shadow)
            return shadow
        self.fabric.send(src, dst, size_flits, payload=shadow)
        return shadow

    def _inject(self, shadow: Packet) -> None:
        """Enter the flit fabric (faulted injection continuation — ``dst``
        may have been corrupted, so re-read it from the shadow packet)."""
        self.fabric.send(shadow.src, shadow.dst, shadow.size_flits,
                         payload=shadow)

    def _on_delivery(self, flit_packet: FlitPacket) -> None:
        shadow: Packet = flit_packet.payload
        shadow.delivered_cycle = self.now
        self.packets_delivered += 1
        self.total_latency += shadow.latency
        handler = self._endpoints.get(shadow.dst)
        if handler is None:
            raise RuntimeError(f"no endpoint registered at node {shadow.dst}")
        handler(shadow)

    # ------------------------------------------------------------------
    # interface parity
    # ------------------------------------------------------------------
    def reinject(self, router_node: int, packet: Packet) -> None:
        raise RuntimeError(
            "iNPG (in-network packet generation) requires the packet-level "
            "network model; disable flit_level or iNPG"
        )

    def consume(self, packet: Packet) -> None:  # pragma: no cover
        self.packets_consumed += 1

    def big_router_nodes(self) -> list:
        return []

    @property
    def mean_latency(self) -> float:
        if self.packets_delivered == 0:
            return 0.0
        return self.total_latency / self.packets_delivered

    @property
    def in_flight(self) -> int:
        return (self.packets_injected - self.packets_delivered
                - self.packets_dropped)
