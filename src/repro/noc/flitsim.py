"""Flit-level NoC model for validating the packet-level timing.

The main simulator uses a packet-granularity router model (pipeline
latency + per-port serialization + queueing).  This module implements the
paper's baseline router in full detail — the 2-stage speculative pipeline
of Peh & Dally [29] with per-input virtual-channel buffers and
credit-based flow control — so the packet model's latency behaviour can
be validated against it (``benchmarks/bench_noc_validation.py``).

Model summary
=============
* 5 physical ports per router (N/E/S/W/Local), ``vcs_per_port`` VCs per
  port, ``flits_per_vc`` buffer slots per VC.
* Stage 1: route computation + VC allocation + switch allocation
  (speculative, in parallel); stage 2: switch traversal.  A flit that
  wins SA traverses in the next cycle; the head flit allocates the VC.
* Credit-based backpressure: a flit may only traverse to the next router
  if the target VC has a free slot; credits return when flits leave.
* One flit per port per cycle on the crossbar output (wormhole).

This model is cycle-ticked (routers with work schedule themselves), so
it is slower than the packet model — use it for validation, not sweeps.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..config import NocConfig
from ..errors import UnsupportedTopology
from ..sim import Component, Simulator
from .topology import Mesh

#: port indices
LOCAL, NORTH, EAST, SOUTH, WEST = range(5)
_PORT_NAMES = ("local", "north", "east", "south", "west")

_flit_packets = itertools.count()


class FlitPacket:
    """A packet decomposed into flits (slotted: one per injected packet)."""

    __slots__ = ("src", "dst", "length", "payload", "pid",
                 "injected_cycle", "delivered_cycle")

    def __init__(self, src: int, dst: int, length: int,
                 payload: object = None):
        self.src = src
        self.dst = dst
        self.length = length
        self.payload = payload
        self.pid = next(_flit_packets)
        self.injected_cycle = -1
        self.delivered_cycle = -1

    @property
    def latency(self) -> int:
        return self.delivered_cycle - self.injected_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlitPacket(pid={self.pid}, {self.src}->{self.dst}, "
                f"len={self.length})")


class Flit:
    """One flit of a :class:`FlitPacket` (slotted: length x packets)."""

    __slots__ = ("packet", "index")

    def __init__(self, packet: FlitPacket, index: int):
        self.packet = packet
        self.index = index

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet.length - 1


class VirtualChannel:
    """One input VC buffer with its downstream routing state."""

    __slots__ = (
        "buffer", "capacity", "out_port", "out_vc", "active", "ready_at"
    )

    def __init__(self, capacity: int):
        self.buffer: Deque[Flit] = deque()
        self.capacity = capacity
        self.out_port: Optional[int] = None
        self.out_vc: Optional[int] = None
        self.active = False
        #: earliest cycle this VC may win switch allocation (stage 1 of
        #: the 2-stage pipeline completes the cycle before ST)
        self.ready_at = 0

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.buffer)


#: port index -> the input port a flit sent through it arrives on
_REVERSE = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}


class FlitRouter(Component):
    """2-stage speculative wormhole router.

    Occupancy (``_buffered``) and downstream-VC claims (``_claimed``) are
    maintained incrementally, so per-tick work never rescans the full
    5 x VCs buffer matrix.
    """

    def __init__(self, sim: Simulator, node: int, fabric: "FlitNetwork"):
        super().__init__(sim, f"flitrouter{node}")
        self.node = node
        self.fabric = fabric
        cfg = fabric.config
        self.num_vcs = cfg.vcs_per_port
        self.vcs: List[List[VirtualChannel]] = [
            [VirtualChannel(cfg.flits_per_vc) for _ in range(self.num_vcs)]
            for _ in range(5)
        ]
        #: credits we believe each (out_port, vc) of the DOWNSTREAM buffer has
        self.credits: List[List[int]] = [
            [cfg.flits_per_vc] * self.num_vcs for _ in range(5)
        ]
        self._scheduled = False
        self._rr = 0  # round-robin pointer for switch allocation
        #: total flits currently sitting in our input buffers
        self._buffered = 0
        #: (out_port, out_vc) pairs claimed by active input VCs
        self._claimed: set = set()
        mesh = fabric.mesh
        x, y = mesh.coords(node)
        #: dst -> output port (precomputed XY routing decision)
        route = []
        for dst in range(mesh.num_nodes):
            if dst == node:
                route.append(LOCAL)
                continue
            dx, dy = mesh.coords(dst)
            if dx > x:
                route.append(EAST)
            elif dx < x:
                route.append(WEST)
            elif dy > y:
                route.append(SOUTH)
            else:
                route.append(NORTH)
        self._route_row = tuple(route)
        #: out_port -> neighbour node id (None off the mesh edge)
        neighbors: List[Optional[int]] = [None] * 5
        if x < mesh.width - 1:
            neighbors[EAST] = mesh.node_at(x + 1, y)
        if x > 0:
            neighbors[WEST] = mesh.node_at(x - 1, y)
        if y < mesh.height - 1:
            neighbors[SOUTH] = mesh.node_at(x, y + 1)
        if y > 0:
            neighbors[NORTH] = mesh.node_at(x, y - 1)
        self._neighbor_nodes = neighbors

    # ------------------------------------------------------------------
    def wake(self) -> None:
        if not self._scheduled:
            self._scheduled = True
            self.after(1, self._tick)

    def accept_flit(self, in_port: int, vc_index: int, flit: Flit) -> None:
        vc = self.vcs[in_port][vc_index]
        assert vc.free_slots > 0, "credit protocol violated"
        vc.buffer.append(flit)
        self._buffered += 1
        self.wake()

    def credit_return(self, out_port: int, vc_index: int) -> None:
        self.credits[out_port][vc_index] += 1
        self.wake()

    # ------------------------------------------------------------------
    def _route_port(self, dst: int) -> int:
        return self._route_row[dst]

    def _neighbor(self, out_port: int) -> int:
        node = self._neighbor_nodes[out_port]
        if node is None:
            raise AssertionError(out_port)
        return node

    @staticmethod
    def _reverse_port(out_port: int) -> int:
        return _REVERSE[out_port]

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._scheduled = False
        work_left = False
        now = self.now
        # stage 1 for heads: RC + VC allocation (speculative with SA)
        for port in range(5):
            for vc in self.vcs[port]:
                if vc.buffer and not vc.active:
                    head = vc.buffer[0]
                    if head.is_head:
                        out_port = self._route_row[head.packet.dst]
                        out_vc = self._allocate_vc(out_port)
                        if out_vc is None:
                            work_left = True
                            continue
                        vc.out_port, vc.out_vc, vc.active = (
                            out_port, out_vc, True
                        )
                        # ST happens in the next pipeline stage
                        vc.ready_at = now + 1
        # SA + ST: one flit per output port per cycle, round-robin inputs
        granted_outputs: Dict[int, bool] = {}
        num_vcs = self.num_vcs
        total = 5 * num_vcs
        rr = self._rr
        self._rr = (rr + 1) % total
        schedule = self.sim.schedule
        link = self.fabric.config.link_cycles
        routers = self.fabric.routers
        for step in range(total):
            idx = rr + step
            if idx >= total:
                idx -= total
            port, vc_index = divmod(idx, num_vcs)
            vc = self.vcs[port][vc_index]
            if not (vc.active and vc.buffer):
                continue
            if now < vc.ready_at:
                work_left = True
                continue
            out_port = vc.out_port
            assert out_port is not None and vc.out_vc is not None
            if granted_outputs.get(out_port):
                work_left = True
                continue
            if out_port != LOCAL and self.credits[out_port][vc.out_vc] <= 0:
                work_left = True
                continue
            granted_outputs[out_port] = True
            flit = vc.buffer.popleft()
            self._buffered -= 1
            out_vc = vc.out_vc
            if flit.is_tail:
                vc.active = False
                self._claimed.discard((out_port, out_vc))
                vc.out_port = vc.out_vc = None
            if out_port == LOCAL:
                if flit.is_tail:
                    self.fabric.deliver(flit.packet)
            else:
                self.credits[out_port][out_vc] -= 1
                neighbor = routers[self._neighbor_nodes[out_port]]
                schedule(
                    link, neighbor.accept_flit,
                    _REVERSE[out_port], out_vc, flit,
                )
            # our input buffer slot is free either way: credit upstream
            schedule(1, self._return_credit, port, vc_index)
            # a flit still buffered *at grant time* keeps the router hot
            # next cycle even if it drains later this tick (the extra
            # tick can catch flits arriving that cycle) — O(1) via the
            # occupancy counter where the old code rescanned every VC
            if vc.buffer or self._buffered:
                work_left = True
        if work_left or self._buffered:
            self.wake()

    def _allocate_vc(self, out_port: int) -> Optional[int]:
        """First downstream VC not already claimed by one of our inputs.

        ``_claimed`` mirrors the active input VCs' (out_port, out_vc)
        assignments incrementally, replacing the full-matrix rebuild."""
        claimed = self._claimed
        for candidate in range(self.num_vcs):
            if (out_port, candidate) not in claimed:
                claimed.add((out_port, candidate))
                return candidate
        return None

    def _return_credit(self, in_port: int, vc_index: int) -> None:
        if in_port == LOCAL:
            self.fabric.local_credit(self.node, vc_index)
            return
        upstream = self.fabric.routers[self._neighbor_nodes[in_port]]
        upstream.credit_return(_REVERSE[in_port], vc_index)

    def _any_pending(self) -> bool:
        """Any flit buffered at this router (O(1) incremental counter)."""
        return self._buffered > 0


class FlitNetwork(Component):
    """The flit-level fabric with local injection/ejection interfaces."""

    def __init__(self, sim: Simulator, config: NocConfig):
        super().__init__(sim, "flitnet")
        if config.topology != "mesh":
            # the 5 fixed ports (LOCAL/N/E/S/W) and the XY route
            # computation below are mesh-shaped; other fabrics run on
            # the packet-level model.
            raise UnsupportedTopology(
                f"the event flit engine models the 5-port mesh router "
                f"only; topology {config.topology!r} requires the "
                f"packet-level network",
                model="flit/event",
                topology=config.topology,
            )
        self.config = config
        self.mesh = Mesh(config.width, config.height)
        self.routers: Dict[int, FlitRouter] = {
            n: FlitRouter(sim, n, self) for n in range(self.mesh.num_nodes)
        }
        #: injection queues waiting for local-port credits
        self._inject_queues: Dict[int, Deque[FlitPacket]] = {
            n: deque() for n in range(self.mesh.num_nodes)
        }
        #: in-progress injection per node: (packet, vc_index, next flit)
        self._streaming: Dict[int, Optional[Tuple[FlitPacket, int, int]]] = {
            n: None for n in range(self.mesh.num_nodes)
        }
        self.delivered: List[FlitPacket] = []
        self.injected = 0
        self.on_delivery: Optional[Callable[[FlitPacket], None]] = None

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, length: int,
             payload: object = None) -> FlitPacket:
        packet = FlitPacket(
            src=src, dst=dst, length=max(1, length), payload=payload
        )
        packet.injected_cycle = self.now
        self.injected += 1
        self._inject_queues[src].append(packet)
        self._try_inject(src)
        return packet

    def _try_inject(self, node: int) -> None:
        """Stream queued packets into free local-input VCs, one flit per
        free buffer slot; resumes as credits return."""
        router = self.routers[node]
        stream = self._streaming[node]
        if stream is None:
            queue = self._inject_queues[node]
            if not queue:
                return
            # claim a fully idle local VC for the new packet
            for vc_index, vc in enumerate(router.vcs[LOCAL]):
                if not vc.active and not vc.buffer:
                    stream = (queue.popleft(), vc_index, 0)
                    break
            if stream is None:
                return
        packet, vc_index, next_flit = stream
        vc = router.vcs[LOCAL][vc_index]
        while next_flit < packet.length and vc.free_slots > 0:
            router.accept_flit(LOCAL, vc_index, Flit(packet, next_flit))
            next_flit += 1
        if next_flit >= packet.length:
            self._streaming[node] = None
            if self._inject_queues[node]:
                # try to start the next packet on another VC
                self._try_inject(node)
        else:
            self._streaming[node] = (packet, vc_index, next_flit)
        router.wake()

    def local_credit(self, node: int, vc_index: int) -> None:
        self._try_inject(node)

    def deliver(self, packet: FlitPacket) -> None:
        packet.delivered_cycle = self.now
        self.delivered.append(packet)
        if self.on_delivery is not None:
            self.on_delivery(packet)

    # ------------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(p.latency for p in self.delivered) / len(self.delivered)
