"""The NoC fabric: routers, links, injection and delivery.

The :class:`Network` wires one :class:`~repro.noc.router.Router` per mesh
node (some of which may be iNPG big routers, supplied via a factory), and
dispatches delivered packets to per-node endpoint handlers (the cache
controllers registered by ``repro.coherence.memsystem``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import NocConfig
from ..sim import Component, Simulator
from .packet import Packet
from .port import OutputPort
from .router import Router
from .topology import make_topology

#: endpoint callback signature: (packet) -> None
EndpointHandler = Callable[[Packet], None]
#: router factory signature: (sim, node, network) -> Router
RouterFactory = Callable[[Simulator, int, "Network"], Router]


class Network(Component):
    """A packet-level network of (possibly heterogeneous) routers.

    The fabric shape and routing come from the ``NocConfig.topology``
    axis (mesh/torus/ring, :mod:`repro.noc.topology`); output-port
    arbitration from ``NocConfig.arbiter`` (rr/wrr).  The default pair
    is the paper's XY-routed mesh with VC-priority round-robin.
    """

    #: trace emitter; rebound by ``repro.obs.Observation.attach``.  Left as
    #: ``None`` on untraced runs so the hot paths pay a single identity test.
    _trace = None

    #: injection-site fault filter ``(packet, forward) -> consumed``;
    #: rebound by ``repro.faults.FaultInjector.install`` when the plan
    #: names ``inject`` sites.  Same zero-cost-when-off contract as
    #: ``_trace``: unfaulted runs pay one identity test per injection.
    _fault_inject = None

    def __init__(
        self,
        sim: Simulator,
        config: NocConfig,
        router_factory: Optional[RouterFactory] = None,
        priority_arbitration: bool = False,
        record_traces: bool = False,
    ):
        super().__init__(sim, "network")
        self.config = config
        #: the fabric topology (``config.topology``); the attribute keeps
        #: its historical name — every call site reads ``network.mesh``
        #: and the default topology still is the paper's mesh.
        self.mesh = make_topology(config.topology, config.width, config.height)
        self.topology = self.mesh
        self.priority_arbitration = priority_arbitration
        self._wrr = config.arbiter == "wrr"
        #: when True every packet records its full per-router trace (a
        #: debugging/stats aid); hop counts are maintained regardless.
        self.record_traces = record_traces
        factory = router_factory or Router
        self.routers: Dict[int, Router] = {}
        for node in range(self.mesh.num_nodes):
            self.routers[node] = factory(sim, node, self)
        for router in self.routers.values():
            router.wire()
        #: dst -> handler, indexed flat (None until registered); the dict
        #: view is kept for introspection but delivery uses the list.
        self._endpoints: Dict[int, EndpointHandler] = {}
        self._endpoint_list: list = [None] * self.mesh.num_nodes
        #: statistics
        self.packets_injected = 0
        self.packets_delivered = 0
        self.packets_consumed = 0
        #: packets consumed by fault injection (never delivered)
        self.packets_dropped = 0
        self.total_latency = 0
        self.total_hops = 0
        #: wraparound-link crossings that escalated a packet to its
        #: dateline VC class (torus/ring only; always 0 on the mesh)
        self.dateline_crossings = 0

    # ------------------------------------------------------------------
    # Port construction (router output ports, per the arbiter axis)
    # ------------------------------------------------------------------
    def make_port(self, name: str) -> OutputPort:
        """Build one router output port per the ``arbiter`` axis."""
        if self._wrr:
            from .arbiter import WrrOutputPort

            return WrrOutputPort(
                self.sim, name, self.priority_arbitration,
                self.config.wrr_weights,
            )
        return OutputPort(self.sim, name, self.priority_arbitration)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def register_endpoint(self, node: int, handler: EndpointHandler) -> None:
        """Attach the network interface handler for ``node``."""
        if node in self._endpoints:
            raise ValueError(f"endpoint for node {node} already registered")
        self._endpoints[node] = handler
        self._endpoint_list[node] = handler

    # ------------------------------------------------------------------
    # Injection / delivery
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        payload: object,
        size_flits: int = 1,
        priority: int = 0,
        origin: Optional[int] = None,
    ) -> Packet:
        """Inject a new packet at ``src`` bound for ``dst``.

        Local (src == dst) messages still pass through the local router's
        ejection path, modelling the NI turnaround.
        """
        packet = Packet(
            src=src,
            dst=dst,
            payload=payload,
            size_flits=size_flits,
            priority=priority,
            vnet=(0 if size_flits <= 1 else 1) if self.config.virtual_networks
            else 0,
            origin=origin if origin is not None else src,
        )
        packet.injected_cycle = self.now
        self.packets_injected += 1
        tr = self._trace
        if tr is not None:
            tr(f"core/{src}", "net.inject", dst=dst, flits=size_flits,
               priority=priority)
        fi = self._fault_inject
        if fi is not None:
            if not fi(packet, self._inject):
                self._inject(packet)
            return packet
        self.routers[src].accept(packet)
        return packet

    def _inject(self, packet: Packet) -> None:
        """Enter the datapath at the packet's source router (the faulted
        injection continuation — ``dst`` may have been corrupted)."""
        self.routers[packet.src].accept(packet)

    def reinject(self, router_node: int, packet: Packet) -> None:
        """Inject a router-generated packet at ``router_node`` (iNPG).

        The packet starts at the generating router, not at an endpoint NI;
        it still pays that router's pipeline before moving.
        """
        packet.injected_cycle = self.now
        self.packets_injected += 1
        tr = self._trace
        if tr is not None:
            tr(f"big/{router_node}", "net.inject", dst=packet.dst,
               flits=packet.size_flits, generated=1)
        fi = self._fault_inject
        if fi is not None:
            forward = self.routers[router_node].forward_now
            if not fi(packet, forward):
                forward(packet)
            return
        self.routers[router_node].forward_now(packet)

    def deliver_local(self, packet: Packet) -> None:
        """Hand a packet that ejected at its destination to the endpoint."""
        now = self.sim.cycle
        packet.delivered_cycle = now
        self.packets_delivered += 1
        self.total_latency += now - packet.injected_cycle
        hops = packet._hops - 1
        if hops > 0:
            self.total_hops += hops
        tr = self._trace
        if tr is not None:
            tr(f"core/{packet.dst}", "net.eject", src=packet.src,
               latency=packet.latency, hops=max(hops, 0))
        handler = self._endpoint_list[packet.dst]
        if handler is None:
            raise RuntimeError(f"no endpoint registered at node {packet.dst}")
        handler(packet)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        """Mean end-to-end packet latency over delivered packets."""
        if self.packets_delivered == 0:
            return 0.0
        return self.total_latency / self.packets_delivered

    def consume(self, packet: Packet) -> None:
        """Account for a packet absorbed in-network (big-router intercept)."""
        packet.delivered_cycle = self.now
        self.packets_consumed += 1

    @property
    def in_flight(self) -> int:
        return (self.packets_injected - self.packets_delivered
                - self.packets_consumed - self.packets_dropped)

    def big_router_nodes(self) -> list:
        """Node ids whose routers are iNPG big routers."""
        return [n for n, r in self.routers.items() if r.is_big]
