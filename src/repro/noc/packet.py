"""Network packets.

A packet carries one coherence message (``payload``).  Following Table 1,
a cache-block transfer is one 8-flit packet and a coherence control message
is a single-flit packet.  Packets carry an OCOR priority (0 = lowest) that
priority-aware ports honour when arbitrating.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One message in flight on the NoC."""

    src: int
    dst: int
    payload: Any
    size_flits: int = 1
    priority: int = 0
    #: virtual network class: 0 = control (single-flit coherence
    #: messages), 1 = data (block transfers).  Ports arbitrate control
    #: ahead of data, modelling the separate virtual networks of Table 1
    #: that keep invalidations and acks from queueing behind data bursts.
    vnet: int = 0
    #: node id of the original issuer, for generated/forwarded packets.
    origin: Optional[int] = None
    pid: int = field(default_factory=lambda: next(_packet_ids))
    injected_cycle: int = -1
    delivered_cycle: int = -1
    #: routers visited so far (hop counting is always on; the full
    #: per-router trace below is only populated when the network was
    #: built with ``record_traces=True``).  Routers bump the private
    #: field; ``hops`` below is the read-only view.
    _hops: int = field(default=0, init=False, repr=False)
    #: routers traversed so far (head-flit trace; empty unless tracing).
    trace: List[int] = field(default_factory=list)

    @property
    def hops(self) -> int:
        """Routers visited so far (read-only; folded into the
        ``repro.obs`` registry as the network's ``total_hops`` gauge)."""
        return self._hops

    @property
    def latency(self) -> int:
        """End-to-end latency; -1 until delivered."""
        if self.delivered_cycle < 0 or self.injected_cycle < 0:
            return -1
        return self.delivered_cycle - self.injected_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
            f"{self.payload!r}, flits={self.size_flits}, prio={self.priority})"
        )
