"""Network packets.

A packet carries one coherence message (``payload``).  Following Table 1,
a cache-block transfer is one 8-flit packet and a coherence control message
is a single-flit packet.  Packets carry an OCOR priority (0 = lowest) that
priority-aware ports honour when arbitrating.

``Packet`` is a hand-rolled ``__slots__`` class (not a dataclass): one is
allocated per message on the NoC, so the per-instance ``__dict__`` and the
always-allocated trace list of the dataclass version were measurable on
the fig12 hot path.  The per-router trace list is now lazy — it only
exists once a tracing router appends to it.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

_packet_ids = itertools.count()


class Packet:
    """One message in flight on the NoC."""

    __slots__ = (
        "src", "dst", "payload", "size_flits", "priority", "vnet",
        "origin", "pid", "injected_cycle", "delivered_cycle", "_hops",
        "_trace_list",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        payload: Any,
        size_flits: int = 1,
        priority: int = 0,
        #: virtual network class: 0 = control (single-flit coherence
        #: messages), 1 = data (block transfers).  Ports arbitrate control
        #: ahead of data, modelling the separate virtual networks of
        #: Table 1 that keep invalidations and acks from queueing behind
        #: data bursts.
        vnet: int = 0,
        #: node id of the original issuer, for generated/forwarded packets.
        origin: Optional[int] = None,
    ):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size_flits = size_flits
        self.priority = priority
        self.vnet = vnet
        self.origin = origin
        self.pid = next(_packet_ids)
        self.injected_cycle = -1
        self.delivered_cycle = -1
        #: routers visited so far (hop counting is always on; the full
        #: per-router trace is only populated when the network was built
        #: with ``record_traces=True``).  Routers bump the private field;
        #: ``hops`` below is the read-only view.
        self._hops = 0
        #: lazily created by tracing routers; ``trace`` is the public view.
        self._trace_list: Optional[List[int]] = None

    @property
    def trace(self) -> List[int]:
        """Routers traversed so far (head-flit trace; empty unless the
        network records traces)."""
        t = self._trace_list
        return t if t is not None else []

    @property
    def hops(self) -> int:
        """Routers visited so far (read-only; folded into the
        ``repro.obs`` registry as the network's ``total_hops`` gauge)."""
        return self._hops

    @property
    def latency(self) -> int:
        """End-to-end latency; -1 until delivered."""
        if self.delivered_cycle < 0 or self.injected_cycle < 0:
            return -1
        return self.delivered_cycle - self.injected_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
            f"{self.payload!r}, flits={self.size_flits}, prio={self.priority})"
        )
