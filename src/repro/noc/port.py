"""Router output-port resource model.

Each output port is a serial resource: a packet of ``n`` flits occupies the
port (and the downstream link) for ``n`` cycles.  When several packets want
the same port, the port arbitrates:

* baseline routers: oldest request first (FIFO, matching round-robin
  fairness in expectation);
* OCOR routers: highest packet priority first, FIFO among equals
  (Section 5.1 Case 2 — RTR-carrying SWAP packets are prioritized).

This packet-granularity model preserves what matters for LCO: hop pipeline
latency, link serialization, and queueing at contended ports (above all the
home node's ejection port, where GetX bursts pile up).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..sim import Component, Simulator
from .packet import Packet

#: queue key: (vnet, negated priority, arrival cycle, tie-break seq)
_QueueKey = Tuple[int, int, int, int]


class OutputPort(Component):
    """A serial output port with pluggable priority arbitration."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        priority_aware: bool = False,
    ):
        super().__init__(sim, name)
        self.priority_aware = priority_aware
        self._pending: List[Tuple[_QueueKey, Packet, Callable[[Packet], None]]] = []
        self._seq = 0
        self._busy = False
        #: statistics
        self.packets_sent = 0
        self.flits_sent = 0
        self.total_wait_cycles = 0
        self._peak_queue_depth = 0
        self._schedule = sim.schedule

    def request(self, packet: Packet, on_granted: Callable[[Packet], None]) -> None:
        """Ask to transmit ``packet``; ``on_granted(packet)`` fires when the
        head flit has left the port (serialization complete).

        Arbitration is per virtual network first (control never waits
        behind queued data bursts), then by OCOR priority where enabled,
        then oldest-first.  An idle port grants immediately without
        touching the arbitration heap (the common uncontended case).
        """
        if not self._busy and not self._pending:
            # The slow path transits the heap, so every request used to
            # push depth to at least 1; keep that stat identical here.
            if self._peak_queue_depth == 0:
                self._peak_queue_depth = 1
            # inlined _grant(): the uncontended case is the datapath
            self._busy = True
            occupancy = packet.size_flits
            if occupancy < 1:
                occupancy = 1
            self.packets_sent += 1
            self.flits_sent += occupancy
            schedule = self._schedule
            schedule(1, on_granted, packet)
            schedule(occupancy, self._grant_next)
            return
        priority = packet.priority if self.priority_aware else 0
        key = (packet.vnet, -priority, self.now, self._seq)
        self._seq += 1
        heapq.heappush(self._pending, (key, packet, on_granted))
        if len(self._pending) > self._peak_queue_depth:
            self._peak_queue_depth = len(self._pending)

    def _grant(
        self, packet: Packet, on_granted: Callable[[Packet], None]
    ) -> None:
        """Grant ``packet`` the port (wormhole / cut-through).

        The head flit leaves one cycle after the grant and the packet
        proceeds immediately — its body streams behind it — while this
        port stays busy for the full serialization time before granting
        the next packet.
        """
        self._busy = True
        occupancy = packet.size_flits
        if occupancy < 1:
            occupancy = 1
        self.packets_sent += 1
        self.flits_sent += occupancy
        schedule = self._schedule
        schedule(1, on_granted, packet)
        schedule(occupancy, self._grant_next)

    def _grant_next(self) -> None:
        """The port freed up: grant the best queued request, if any."""
        if not self._pending:
            self._busy = False
            return
        key, packet, on_granted = heapq.heappop(self._pending)
        self.total_wait_cycles += self.now - key[2]
        self._grant(packet, on_granted)

    @property
    def peak_queue_depth(self) -> int:
        """Deepest arbitration queue seen (read-only; aggregated by the
        ``repro.obs`` registry as ``noc/peak_queue_depth``)."""
        return self._peak_queue_depth

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def mean_wait(self) -> float:
        """Average queueing delay per packet, cycles."""
        if self.packets_sent == 0:
            return 0.0
        return self.total_wait_cycles / self.packets_sent
