"""Two-stage pipelined router (baseline "normal" router).

Timing model, following the paper's baseline (Peh & Dally speculative
2-stage router, Table 1):

* stage 1 (RC/VA/SA) + stage 2 (ST) = ``pipeline_cycles`` (default 2) from
  head-flit arrival to the packet requesting its output port;
* the output port serializes the packet at one flit/cycle;
* the link to the next router adds ``link_cycles`` (default 1).

Routers expose an :meth:`inspect` hook, called when a packet enters the
router, **before** route computation.  Normal routers always let packets
continue; the iNPG big router overrides it to stop lock requests and
generate early invalidations (``repro.inpg.big_router``).

Datapath hot path: routing uses the mesh's precomputed next-hop row, and
every event is scheduled as ``(bound method, packet)`` — no closures are
allocated per hop.  Link-grant handlers are built once per output port
when the network wires the routers together (:meth:`wire`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from ..sim import Component, Simulator
from .packet import Packet
from .port import OutputPort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

#: inspect() verdicts
CONTINUE = "continue"
STOPPED = "stopped"


class Router(Component):
    """A mesh router at ``node``."""

    is_big = False

    def __init__(self, sim: Simulator, node: int, network: "Network"):
        super().__init__(sim, f"router{node}")
        self.node = node
        self.network = network
        cfg = network.config
        self.pipeline_cycles = cfg.router_pipeline_cycles
        self.link_cycles = cfg.link_cycles
        #: one output port per neighbour + one ejection port to the local
        #: NI; the network builds them per the ``arbiter`` axis.
        self.ports: Dict[int, OutputPort] = {}
        for neighbor in network.mesh.neighbors(node):
            self.ports[neighbor] = network.make_port(
                f"router{node}->r{neighbor}"
            )
        self.ports[node] = network.make_port(f"router{node}->local")
        self.packets_seen = 0
        #: row[dst] -> next node on the routing path (shared, precomputed)
        topo = network.mesh
        self._hop_row = topo.next_hop_row(node)
        if topo.has_datelines:
            #: row[dst] -> the hop toward dst wraps around a dateline
            self._dateline_row = tuple(
                hop != node and topo.crosses_dateline(node, hop)
                for hop in self._hop_row
            )
            # instance-level rebind: only wraparound topologies pay the
            # dateline check; the mesh datapath is untouched.
            self._route = self._route_dateline
        #: subclasses that override inspect() pay for the hook; the base
        #: router skips the call entirely.
        self._inspects = type(self).inspect is not Router.inspect
        #: per-output-port grant handlers, built by wire()
        self._grant_handlers: Dict[int, Callable[[Packet], None]] = {}
        #: row[dst] -> (output_port.request, grant handler) pair, built by
        #: wire(); collapses routing to one indexed load per hop.
        self._dest: list = []
        self._record_trace = network.record_traces
        self._schedule = sim.schedule

    # ------------------------------------------------------------------
    # Wiring (called by the network once all routers exist)
    # ------------------------------------------------------------------
    def wire(self) -> None:
        """Pre-bind the downstream ``accept`` of each neighbour so a port
        grant schedules the link traversal without allocating a closure.

        Idempotent, and deliberately so: ``repro.faults`` installs
        per-router fault wrappers as instance-level ``accept``
        attributes, then re-runs ``wire()`` on every router so the
        pre-bound handlers capture the wrapped entry points (link-site
        wrappers are layered afterwards via :meth:`wrap_link`)."""
        schedule = self.sim.schedule
        link = self.link_cycles
        for neighbor in self.network.mesh.neighbors(self.node):
            accept = self.network.routers[neighbor].accept

            def on_granted(packet: Packet, _accept=accept) -> None:
                schedule(link, _accept, packet)

            self._grant_handlers[neighbor] = on_granted
        self._deliver = self.network.deliver_local
        self._rebuild_dispatch()

    def _rebuild_dispatch(self) -> None:
        """Precompute ``dst -> (port.request, grant handler)`` so the
        datapath resolves a destination with one list index instead of a
        next-hop row read plus two dict lookups.  Re-run whenever the
        grant handlers change (``wire()`` / :meth:`wrap_link`)."""
        node = self.node
        hop_row = self._hop_row
        dest = []
        for dst in range(self.network.mesh.num_nodes):
            if dst == node:
                dest.append((self.ports[node].request, self._eject))
            else:
                next_node = hop_row[dst]
                dest.append(
                    (self.ports[next_node].request,
                     self._grant_handlers[next_node])
                )
        self._dest = dest

    def wrap_link(
        self,
        neighbor: int,
        wrap: Callable[[Callable[[Packet], None]], Callable[[Packet], None]],
    ) -> None:
        """Interpose on the outgoing link toward ``neighbor``.

        ``wrap`` receives the current grant handler and returns the
        replacement; the fault injector uses this to model lossy/slow
        links without touching the uncontended datapath.
        """
        if neighbor not in self._grant_handlers:
            raise ValueError(
                f"router {self.node} has no link toward {neighbor}"
            )
        self._grant_handlers[neighbor] = wrap(self._grant_handlers[neighbor])
        self._rebuild_dispatch()

    # ------------------------------------------------------------------
    # Hook for subclasses (big router)
    # ------------------------------------------------------------------
    def inspect(self, packet: Packet) -> str:
        """Inspect a packet entering this router.

        Returns :data:`CONTINUE` to let it proceed normally or
        :data:`STOPPED` if the router has taken over the packet (the base
        router never stops packets).
        """
        return CONTINUE

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def accept(self, packet: Packet) -> None:
        """Head flit of ``packet`` arrives at this router."""
        self.packets_seen += 1
        packet._hops += 1
        if self._record_trace:
            t = packet._trace_list
            if t is None:
                packet._trace_list = t = []
            t.append(self.node)
        if self._inspects and self.inspect(packet) == STOPPED:
            return
        self._schedule(self.pipeline_cycles, self._route, packet)

    def _route(self, packet: Packet) -> None:
        request, on_granted = self._dest[packet.dst]
        request(packet, on_granted)

    def _route_dateline(self, packet: Packet) -> None:
        """Route variant for wraparound topologies (torus/ring).

        A packet whose next hop crosses a dateline escalates once to the
        dateline VC class (``vnet + 2``) — the model of the dateline
        virtual channels that break the ring channel-dependency cycle
        (DESIGN.md §15).  Installed as an instance attribute by
        ``__init__`` so mesh routers never test for datelines.
        """
        dst = packet.dst
        if self._dateline_row[dst]:
            self.network.dateline_crossings += 1
            if packet.vnet < 2:
                packet.vnet += 2
        request, on_granted = self._dest[dst]
        request(packet, on_granted)

    def _eject(self, packet: Packet) -> None:
        # the endpoint has the packet when the tail flit arrives
        tail = packet.size_flits - 1
        self._schedule(tail if tail > 0 else 0, self._deliver, packet)

    def forward_now(self, packet: Packet) -> None:
        """Re-enter the datapath at this router (used by big routers to
        send generated or converted packets on their way)."""
        self._schedule(self.pipeline_cycles, self._route, packet)
