"""Two-stage pipelined router (baseline "normal" router).

Timing model, following the paper's baseline (Peh & Dally speculative
2-stage router, Table 1):

* stage 1 (RC/VA/SA) + stage 2 (ST) = ``pipeline_cycles`` (default 2) from
  head-flit arrival to the packet requesting its output port;
* the output port serializes the packet at one flit/cycle;
* the link to the next router adds ``link_cycles`` (default 1).

Routers expose an :meth:`inspect` hook, called when a packet enters the
router, **before** route computation.  Normal routers always let packets
continue; the iNPG big router overrides it to stop lock requests and
generate early invalidations (``repro.inpg.big_router``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..sim import Component, Simulator
from .packet import Packet
from .port import OutputPort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

#: inspect() verdicts
CONTINUE = "continue"
STOPPED = "stopped"


class Router(Component):
    """A mesh router at ``node``."""

    is_big = False

    def __init__(self, sim: Simulator, node: int, network: "Network"):
        super().__init__(sim, f"router{node}")
        self.node = node
        self.network = network
        cfg = network.config
        self.pipeline_cycles = cfg.router_pipeline_cycles
        self.link_cycles = cfg.link_cycles
        priority_aware = network.priority_arbitration
        #: one output port per neighbour + one ejection port to the local NI.
        self.ports: Dict[int, OutputPort] = {}
        for neighbor in network.mesh.neighbors(node):
            self.ports[neighbor] = OutputPort(
                sim, f"router{node}->r{neighbor}", priority_aware
            )
        self.ports[node] = OutputPort(sim, f"router{node}->local", priority_aware)
        self.packets_seen = 0

    # ------------------------------------------------------------------
    # Hook for subclasses (big router)
    # ------------------------------------------------------------------
    def inspect(self, packet: Packet) -> str:
        """Inspect a packet entering this router.

        Returns :data:`CONTINUE` to let it proceed normally or
        :data:`STOPPED` if the router has taken over the packet (the base
        router never stops packets).
        """
        return CONTINUE

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def accept(self, packet: Packet) -> None:
        """Head flit of ``packet`` arrives at this router."""
        self.packets_seen += 1
        packet.trace.append(self.node)
        if self.inspect(packet) == STOPPED:
            return
        self.after(self.pipeline_cycles, lambda: self._route(packet))

    def _route(self, packet: Packet) -> None:
        if packet.dst == self.node:
            port = self.ports[self.node]
            port.request(packet, self._eject)
            return
        next_node = self.network.mesh.next_hop(self.node, packet.dst)
        port = self.ports[next_node]
        port.request(packet, lambda p: self._traverse_link(p, next_node))

    def _traverse_link(self, packet: Packet, next_node: int) -> None:
        next_router = self.network.routers[next_node]
        self.after(self.link_cycles, lambda: next_router.accept(packet))

    def _eject(self, packet: Packet) -> None:
        # the endpoint has the packet when the tail flit arrives
        tail = max(0, packet.size_flits - 1)
        self.after(tail, lambda: self.network.deliver_local(packet))

    def forward_now(self, packet: Packet) -> None:
        """Re-enter the datapath at this router (used by big routers to
        send generated or converted packets on their way)."""
        self.after(self.pipeline_cycles, lambda: self._route(packet))
