"""Spatially sharded flit fabric: row-band partitions of the vector engine.

The vector engine (:mod:`repro.noc.vecflit`) advances the whole mesh one
cycle per step in a single process.  This module partitions the mesh
into contiguous *row bands*, each owned by a :class:`_ShardCore` — a
``VectorFlitNetwork`` subclass whose per-cycle step is split into two
phases around a boundary exchange — so a *single* run can scale past
one CPU core.  Shards advance in lockstep cycles (the conservative
lookahead equals the minimum cross-boundary link latency, which the
vector engine already pins to ``link_cycles == 1``), swapping
boundary-crossing flits and credits through flat int64 columns in one
``multiprocessing.shared_memory`` block.

Bit-exactness contract
======================
The sharded engine must replay the vector engine *event for event* —
same delivered stream, same delivery cycles, same emulated event count
— which reduces to reproducing the PR 7 order-key contract across the
partition.  Three mechanisms carry it:

* **Global appender ranks.**  The vector engine ranks each cycle's
  appenders (ticks + winning wakes) densely over the whole mesh.  Each
  shard publishes its sorted appender keys (barrier *g1*); every shard
  then offsets its local rank by the count of foreign keys below each
  of its own — a two-pointer sweep over the merged sorted lists — so
  the materialized child keys equal the vector engine's exactly.
* **Receiver-side classification.**  The vector engine classifies each
  link arrival / credit return against the *receiving* router's
  next-cycle tick key (``thr_next``) at produce time.  A boundary
  event's receiver lives in another shard, so the producer ships the
  raw ``(slot, pid, flit, key)`` / ``(credit slot, key)`` tuple and
  the receiver's :meth:`_ShardCore.absorb` performs the identical
  classification against its own materialized ``ticks_next`` — which
  is final by then (its own phase B ran before the exchange barrier).
  Absorb order cannot matter: at most one flit arrives per input slot
  per cycle (claimed (port, vc) pairs are unique per router), and
  credit bumps / wake-key minima commute.
* **Global delivery merge.**  Order keys embed the cycle, so one sort
  of all shards' ``(tick key, pid)`` delivery records reproduces the
  vector engine's per-step sorted delivery order globally (a router
  grants its LOCAL port at most once per cycle, so keys never tie).

Execution modes
===============
``shards == 1``, co-simulation (``sim`` given), or a delivery handler
run the cores *in-process* on a sequential scheduler that executes the
identical phase schedule — bit-exact, no processes.  Standalone
multi-shard runs (the perf workloads) fan out one worker process per
shard over the shared-memory barrier protocol (two barriers per cycle:
*g1* publishes appender keys, *g2* publishes outboxes + each shard's
next pending cycle, from which every worker derives the same global
next cycle).  A worker that dies flips the shared abort flag (or is
detected by the parent's liveness poll) and surfaces as a structured
:class:`repro.errors.ShardWorkerError` instead of a hang.

The barrier is spin-then-yield (``sleep(0)`` then a 200 us nap), so an
oversubscribed host — including a single-CPU container — degrades to
roughly single-process speed instead of livelocking in the spins.
Publish-then-flag ordering over the shared block assumes total store
order (x86) or a sequentially consistent single core; see DESIGN.md
§16 for the write-after-read hazard argument.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from ..config import NocConfig
from ..errors import ShardWorkerError, UnsupportedTopology
from ..sim import Component, Simulator
from .topology import Mesh
from .vecflit import (
    _CYC_SHIFT,
    _LATE_OFF,
    _NO_TICK,
    _SETUP_BASE,
    _SUB_BITS,
    VectorFlitFabric,
    VectorFlitNetwork,
    VectorFlitPacket,
    _np,
)

#: wall-clock ceiling for one barrier wait before a worker gives up
_SYNC_TIMEOUT_ENV = "REPRO_SHARD_SYNC_TIMEOUT"
#: test hook: the named shard index raises at startup (crash-path tests)
_TEST_CRASH_ENV = "REPRO_SHARD_TEST_CRASH"


class _Aborted(Exception):
    """A sibling shard failed; unwind quietly (the parent reports)."""


# ----------------------------------------------------------------------
class _ShardCore(VectorFlitNetwork):
    """One row band of the mesh, stepped in two phases.

    Owns the full-mesh column layout of the parent class (so slot,
    router and credit indices are mesh-global and boundary tuples need
    no translation) but only ever activates its own band's rows:
    candidate discovery is sliced to the band and every event that
    targets a foreign router is diverted to a per-direction outbox
    instead of applied.  Packets are pure integers here — the parent
    (or worker bootstrap) announces ``(pid, dst, length)`` via
    :meth:`note_packet`; real packet objects live with the parent.
    """

    def __init__(self, config: NocConfig, band: Tuple[int, int],
                 shard_id: int, nshards: int, force_python: bool = False):
        super().__init__(config, sim=None, on_delivery=None,
                         force_python=force_python)
        y0, y1 = band
        self.shard_id = shard_id
        self.nshards = nshards
        self.band = (y0, y1)
        self.r_lo = y0 * config.width
        self.r_hi = y1 * config.width
        self._s_lo = self.r_lo * self.SPR
        self._s_hi = self.r_hi * self.SPR
        #: boundary outboxes, refilled by phase B: index 0 = up (toward
        #: shard_id - 1), 1 = down; acc entries are (slot, pid, flit,
        #: key), credit entries (credit slot, key)
        self._out_acc: Tuple[List, List] = ([], [])
        self._out_cred: Tuple[List, List] = ([], [])
        self.boundary_flits = [0, 0]
        self.boundary_credits = [0, 0]
        #: phase A handoff to phase B / the orchestrator
        self._deliveries: List[Tuple[int, int]] = []
        self._pa_T: List[Tuple[int, int]] = []
        self._pa_wake: Dict[int, int] = {}
        self._pa_acc: Tuple[List, ...] = ([], [], [], [], [])
        self._pa_ret: Tuple[List, ...] = ([], [], [])
        self._ranked: List[Tuple[int, int]] = []

    # -- integer packet registry (parent owns the real objects) --------
    def note_packet(self, pid: int, dst: int, length: int) -> None:
        plen, pdst = self._plen, self._pdst
        n = len(plen)
        if pid >= n:
            grow = pid + 1 - n
            plen.extend([1] * grow)
            pdst.extend([0] * grow)
        plen[pid] = length
        pdst[pid] = dst

    def load_inject(self, cycle: int, key: int, src: int, dst: int,
                    length: int, pid: int) -> None:
        """Queue a pre-keyed injection event (plan row) at ``cycle``."""
        self._bucket(cycle).inj.append(("send", key, src, dst, length, pid))

    # -- tuple twins of the parent's injection path --------------------
    def _try_inject(self, node: int, own: int,
                    wakes: List[Tuple[int, int]]) -> None:
        V, cap = self.V, self.cap
        base = node * self.SPR  # LOCAL is port 0: slots base..base+V-1
        stream = self._streaming[node]
        cnt, active = self._cnt, self._active
        if stream is None:
            queue = self._iqueue[node]
            if not queue:
                return
            for vc_index in range(V):
                i = base + vc_index
                if not active[i] and not cnt[i]:
                    pid, length = queue.popleft()
                    stream = (pid, length, vc_index, 0)
                    break
            if stream is None:
                return
        pid, length, vc_index, next_flit = stream
        i = base + vc_index
        buf_pid, buf_fi = self._buf_pid, self._buf_fi
        h = self._head[i]
        c = old = cnt[i]
        ib = i * cap
        while next_flit < length and c < cap:
            pos = ib + (h + c) % cap
            buf_pid[pos] = pid
            buf_fi[pos] = next_flit
            c += 1
            next_flit += 1
        if c != old:
            cnt[i] = c
            self._buffered[node] += c - old
            a = active[i]
            self._ci_w[i] = not a
            self._ca_w[i] = a
        if next_flit >= length:
            self._streaming[node] = None
            if self._iqueue[node]:
                self._try_inject(node, own, wakes)
        else:
            self._streaming[node] = (pid, length, vc_index, next_flit)
        wakes.append((node, own))

    def _run_inject(self, event, tau: int,
                    wakes: List[Tuple[int, int]]) -> None:
        if event[0] == "send":
            _, own, src, _dst, length, pid = event
            self._iqueue[src].append((pid, length))
            self._try_inject(src, own, wakes)
        else:  # ("lcred", key, node)
            self._try_inject(event[2], event[1], wakes)

    # -- late entry points driven by the in-process orchestrator -------
    def late_inject(self, node: int, pid: int, length: int,
                    own: int) -> None:
        """A handler-synchronous send deferred past this cycle's phase A
        (the parent's ``_deferred_sends``); runs between phase A and the
        rank exchange, exactly where the vector engine applies its own.
        """
        self._iqueue[node].append((pid, length))
        wakes: List[Tuple[int, int]] = []
        self._try_inject(node, own, wakes)
        best_wake = self._pa_wake
        thr_next = self._thr_next
        for n, k in wakes:
            # late keys exceed every tick key: effective unless a tick
            # is already pending next cycle (pre-late wake)
            if thr_next[n] == _NO_TICK:
                bw = best_wake.get(n)
                if bw is None or k < bw:
                    best_wake[n] = k

    def late_kernel_send(self, src: int, pid: int, length: int,
                         key: int, pre: bool, now: int) -> None:
        """Between-steps co-sim injection (the parent's ``_late_send``
        minus packet creation): push flits, register the wake tick."""
        self.cycle = max(self.cycle, now)
        self._iqueue[src].append((pid, length))
        wakes: List[Tuple[int, int]] = []
        self._try_inject(src, key, wakes)
        if wakes:
            bnow = self._buckets.get(now)
            tnow = bnow.ticks if bnow is not None else ()
            ticks = self._bucket(now + 1).ticks
            thr_next = self._thr_next
            for node, own in wakes:
                if node not in tnow and node not in ticks:
                    ticks[node] = own
                    if pre:
                        # the band's step for ``now`` has yet to run:
                        # expose the tick to its fused classification
                        thr_next[node] = own

    # ------------------------------------------------------------------
    def phase_a(self, tau: int) -> None:  # noqa: C901 - mirrors _step
        """Phases 1-6 of the parent's ``_step`` over this band only.

        Deliveries are collected (``self._deliveries``), not fired — the
        orchestrator merges them across shards into global key order.
        The phase-7 appender material is parked for :meth:`phase_b`.
        """
        SPR, V, cap = self.SPR, self.V, self.cap
        bucket = self._buckets.pop(tau, None)
        self.cycle = tau
        self._stepped_cycle = tau

        thr = self._tick_key_by_r
        thr_next = self._thr_next
        T_items = list(bucket.ticks.items()) if bucket is not None else []
        for r, k in T_items:
            thr[r] = k
            thr_next[r] = _NO_TICK  # consume this tick's pre-late entry
        n_ev = len(T_items)

        router_of = self._router_of
        cnt, head = self._cnt, self._head
        buf_pid, buf_fi = self._buf_pid, self._buf_fi
        buffered, credits = self._buffered, self._credits
        active = self._active
        ci_w, ca_w = self._ci_w, self._ca_w

        best_wake: Dict[int, int] = {}
        bwget = best_wake.get

        # ---- 1. collect pending events (see vecflit._step) -----------
        if bucket is not None:
            n_ev += bucket.nev
            for r, k in bucket.wake_min.items():
                t = thr[r]
                if (t == _NO_TICK or k >= t) and thr_next[r] == _NO_TICK:
                    best_wake[r] = k
            post_acc = bucket.post_acc
            post_cred = bucket.post_cred
            injects = bucket.inj
        else:
            post_acc = ()
            post_cred = ()
            injects = ()
        if len(injects) > 1:
            injects.sort(key=lambda e: e[1])
        n_ev += len(injects)
        post_inj: List[Tuple] = []
        if injects:
            wakes: List[Tuple[int, int]] = []
            for event in injects:
                if event[1] < thr[event[2]]:
                    self._run_inject(event, tau, wakes)
                else:
                    post_inj.append(event)
            for node, own in wakes:
                t = thr[node]
                if (t == _NO_TICK or own >= t) \
                        and thr_next[node] == _NO_TICK:
                    bw = bwget(node)
                    if bw is None or own < bw:
                        best_wake[node] = own
        self.events_processed += n_ev

        # ---- 2. candidate discovery, sliced to the band --------------
        stage3: List[int] = []
        sacand: List[int] = []
        if T_items:
            if self._numpy:
                s_lo = self._s_lo
                stage3 = (_np.flatnonzero(self._ci_np[s_lo:self._s_hi])
                          + s_lo).tolist()
                sacand = (_np.flatnonzero(self._ca_np[s_lo:self._s_hi])
                          + s_lo).tolist()
            else:
                for r in sorted(r for r, _ in T_items):
                    b = r * SPR
                    for i in range(b, b + SPR):
                        if cnt[i]:
                            (sacand if active[i] else stage3).append(i)

        # ---- 3. stage 1: route compute + VC allocation ---------------
        if stage3:
            route = self._route
            pdst = self._pdst
            claimed = self._claimed
            out_port, out_slot = self._out_port, self._out_slot
            for i in stage3:
                r = router_of[i]
                if thr[r] == _NO_TICK:
                    continue  # not ticking this cycle
                pos = i * cap + head[i]
                if buf_fi[pos]:
                    continue  # mid-packet flit: VC awaits its head
                op = route[r][pdst[buf_pid[pos]]]
                ob = r * SPR + op * V
                for ov in range(ob, ob + V):
                    if not claimed[ov]:
                        claimed[ov] = 1
                        active[i] = 1
                        ci_w[i] = False
                        ca_w[i] = True
                        out_port[i] = op
                        out_slot[i] = ov
                        break

        # ---- 4. switch allocation + traversal ------------------------
        gmask_of = self._gmask
        subtot = self._subtot
        acc_s: List[int] = []
        acc_p: List[int] = []
        acc_f: List[int] = []
        acc_r: List[int] = []
        acc_c: List[int] = []
        ret_s: List[int] = []
        ret_r: List[int] = []
        ret_c: List[int] = []
        deliveries: List[Tuple[int, int]] = []
        if sacand:
            rr = self._rr
            sidx = self._sidx
            out_port, out_slot = self._out_port, self._out_slot
            elig: List[Tuple[int, int, int, int]] = []
            for i in sacand:
                r = router_of[i]
                if thr[r] == _NO_TICK:
                    continue  # not ticking this cycle
                op = out_port[i]
                if op != 0 and credits[out_slot[i]] <= 0:
                    continue
                elig.append((r, (sidx[i] - rr[r]) % SPR, i, op))
            elig.sort()
            plen = self._plen
            acc_tgt = self._acc_target
            claimed = self._claimed
            gmask = 0
            cur_r = -1
            sub = 0
            for r, _prio, i, op in elig:
                if r != cur_r:
                    if cur_r >= 0:
                        subtot[cur_r] = sub
                        gmask_of[cur_r] = gmask
                    cur_r = r
                    gmask = 0
                    sub = 0
                ob = 1 << op
                if gmask & ob:
                    continue  # one grant per output port per cycle
                gmask |= ob
                h = head[i]
                pos = i * cap + h
                pid = buf_pid[pos]
                fi = buf_fi[pos]
                head[i] = (h + 1) % cap
                c = cnt[i] - 1
                cnt[i] = c
                buffered[r] -= 1
                if fi == plen[pid] - 1:  # tail flit frees the VC
                    active[i] = 0
                    ci_w[i] = c > 0
                    ca_w[i] = False
                    claimed[out_slot[i]] = 0
                    if op == 0:  # LOCAL
                        deliveries.append((thr[r], pid))
                else:
                    ci_w[i] = False
                    ca_w[i] = c > 0
                if op != 0:
                    osl = out_slot[i]
                    credits[osl] -= 1
                    acc_s.append(acc_tgt[osl])
                    acc_p.append(pid)
                    acc_f.append(fi)
                    acc_r.append(r)
                    acc_c.append(sub)
                    sub += 1
                ret_s.append(i)
                ret_r.append(r)
                ret_c.append(sub)
                sub += 1
            if cur_r >= 0:
                subtot[cur_r] = sub
                gmask_of[cur_r] = gmask

        # (deliveries fire in the orchestrator, in merged key order)

        # ---- 5. end-of-tick bookkeeping ------------------------------
        rr = self._rr
        for r, k in T_items:
            rr[r] = (rr[r] + 1) % SPR
            if buffered[r] > 0:
                best_wake[r] = k
            else:
                gm = gmask_of[r]
                if gm & (gm - 1):  # two or more output ports granted
                    best_wake[r] = k

        # ---- 6. post-tick arrivals (wakes already registered) --------
        for s, pid, fi in post_acc:
            pos = s * cap + (head[s] + cnt[s]) % cap
            buf_pid[pos] = pid
            buf_fi[pos] = fi
            cnt[s] += 1
            buffered[router_of[s]] += 1
            a = active[s]
            ci_w[s] = not a
            ca_w[s] = a
        for cs in post_cred:
            credits[cs] += 1
        if post_inj:
            wakes = []
            for event in post_inj:
                self._run_inject(event, tau, wakes)
            for node, own in wakes:
                t = thr[node]
                if (t == _NO_TICK or own >= t) \
                        and thr_next[node] == _NO_TICK:
                    bw = bwget(node)
                    if bw is None or own < bw:
                        best_wake[node] = own

        self._pa_T = T_items
        self._pa_wake = best_wake
        self._pa_acc = (acc_s, acc_p, acc_f, acc_r, acc_c)
        self._pa_ret = (ret_s, ret_r, ret_c)
        self._deliveries = deliveries

    def appender_keys(self) -> List[int]:
        """Build + sort this band's appender entries; return the keys.

        Every shard's sorted key list is exchanged so :meth:`phase_b`
        can offset local ranks into mesh-global dense ranks.
        """
        base_key = self._stepped_cycle << _CYC_SHIFT
        thr = self._tick_key_by_r
        ranked = [(k, r) for r, k in self._pa_T]
        for r, own in self._pa_wake.items():
            if own < base_key and own != thr[r]:
                ranked.append((own, ~r))
        ranked.sort()
        self._ranked = ranked
        return [k for k, _ in ranked]

    def phase_b(self, tau: int, foreign: List[int]) -> None:
        """Phase 7 of the parent's ``_step`` with mesh-global ranks.

        ``foreign`` is the merged, sorted list of every other shard's
        appender keys.  Events targeting a foreign router are shipped
        raw through the per-direction outboxes for the receiver's
        :meth:`absorb` to classify.
        """
        V = self.V
        cap = self.cap
        base_key = tau << _CYC_SHIFT
        T_items = self._pa_T
        best_wake = self._pa_wake
        thr = self._tick_key_by_r
        thr_next = self._thr_next
        subtot = self._subtot
        gmask_of = self._gmask
        out_acc_u, out_acc_d = self._out_acc
        out_cred_u, out_cred_d = self._out_cred
        del out_acc_u[:], out_acc_d[:], out_cred_u[:], out_cred_d[:]

        if T_items or best_wake:
            ranked = self._ranked
            tick_base = self._tick_base
            ext_base = self._ext_base
            # global dense rank = local position + count of foreign
            # keys below; both lists are sorted, so one two-pointer
            # sweep covers every entry (keys never tie across shards)
            fidx = 0
            nf = len(foreign)
            for j, (own, r_enc) in enumerate(ranked):
                while fidx < nf and foreign[fidx] < own:
                    fidx += 1
                child = base_key + ((j + fidx) << _SUB_BITS)
                if r_enc >= 0:
                    tick_base[r_enc] = child
                else:
                    ext_base[~r_enc] = child

            if best_wake:
                ticks_next = self._bucket(tau + 1).ticks
                for r, own in best_wake.items():
                    if own >= base_key:       # late/deferred injection
                        child = own
                    elif own == thr[r]:       # end-of-tick self-wake
                        child = tick_base[r] + subtot[r]
                    else:                     # external arrival's wake
                        child = ext_base[r]
                    ticks_next[r] = child
                    thr_next[r] = child

            acc_s, acc_p, acc_f, acc_r, acc_c = self._pa_acc
            ret_s, ret_r, ret_c = self._pa_ret
            if acc_s or ret_s:
                router_of = self._router_of
                cnt, head = self._cnt, self._head
                buf_pid, buf_fi = self._buf_pid, self._buf_fi
                buffered, credits = self._buffered, self._credits
                active = self._active
                ci_w, ca_w = self._ci_w, self._ca_w
                r_lo, r_hi = self.r_lo, self.r_hi
                nb = self._bucket(tau + 1)
                wmin = nb.wake_min
                wmget = wmin.get
                post_app = nb.post_acc.append
                n_remote = 0
                for s, pid, fi, r, c in zip(acc_s, acc_p, acc_f,
                                            acc_r, acc_c):
                    k = tick_base[r] + c
                    dr = router_of[s]
                    if dr < r_lo or dr >= r_hi:
                        # the receiving shard classifies (absorb)
                        if dr < r_lo:
                            out_acc_u.append((s, pid, fi, k))
                        else:
                            out_acc_d.append((s, pid, fi, k))
                        n_remote += 1
                        continue
                    t = thr_next[dr]
                    if k < t:
                        pos = s * cap + (head[s] + cnt[s]) % cap
                        buf_pid[pos] = pid
                        buf_fi[pos] = fi
                        cnt[s] += 1
                        buffered[dr] += 1
                        a = active[s]
                        ci_w[s] = not a
                        ca_w[s] = a
                        if t == _NO_TICK:
                            w = wmget(dr)
                            if w is None or k < w:
                                wmin[dr] = k
                    else:
                        post_app((s, pid, fi))
                        w = wmget(dr)
                        if w is None or k < w:
                            wmin[dr] = k
                sidx = self._sidx
                ret_cslot = self._ret_cslot
                inj_app = nb.inj.append
                cred_app = nb.post_cred.append
                n_lcred = 0
                for i, r, c in zip(ret_s, ret_r, ret_c):
                    k = tick_base[r] + c
                    if sidx[i] < V:  # LOCAL is port 0
                        inj_app(("lcred", k, router_of[i]))
                        n_lcred += 1
                        continue
                    cs = ret_cslot[i]
                    dr = router_of[cs]
                    if dr < r_lo or dr >= r_hi:
                        if dr < r_lo:
                            out_cred_u.append((cs, k))
                        else:
                            out_cred_d.append((cs, k))
                        n_remote += 1
                        continue
                    t = thr_next[dr]
                    if k < t:
                        credits[cs] += 1
                        if t == _NO_TICK:
                            w = wmget(dr)
                            if w is None or k < w:
                                wmin[dr] = k
                    else:
                        cred_app(cs)
                        w = wmget(dr)
                        if w is None or k < w:
                            wmin[dr] = k
                # boundary events are counted by the receiving shard
                nb.nev += len(acc_s) + len(ret_s) - n_lcred - n_remote

            for r in best_wake:
                thr_next[r] = _NO_TICK

        self.boundary_flits[0] += len(out_acc_u)
        self.boundary_flits[1] += len(out_acc_d)
        self.boundary_credits[0] += len(out_cred_u)
        self.boundary_credits[1] += len(out_cred_d)

        for r, _k in T_items:
            thr[r] = _NO_TICK
            subtot[r] = 0
            gmask_of[r] = 0

    def absorb(self, tau: int, acc_in: List[Tuple[int, int, int, int]],
               cred_in: List[Tuple[int, int]]) -> None:
        """Apply inbound boundary events, classified against this
        shard's own (final) next-cycle tick keys — the exact test the
        vector engine's producing step performs via ``thr_next``."""
        if not acc_in and not cred_in:
            return
        cap = self.cap
        nb = self._bucket(tau + 1)
        ticks_next = nb.ticks
        tget = ticks_next.get
        wmin = nb.wake_min
        wmget = wmin.get
        router_of = self._router_of
        cnt, head = self._cnt, self._head
        buf_pid, buf_fi = self._buf_pid, self._buf_fi
        credits = self._credits
        active = self._active
        ci_w, ca_w = self._ci_w, self._ca_w
        buffered = self._buffered
        for s, pid, fi, k in acc_in:
            dr = router_of[s]
            t = tget(dr, _NO_TICK)
            if k < t:
                pos = s * cap + (head[s] + cnt[s]) % cap
                buf_pid[pos] = pid
                buf_fi[pos] = fi
                cnt[s] += 1
                buffered[dr] += 1
                a = active[s]
                ci_w[s] = not a
                ca_w[s] = a
                if t == _NO_TICK:
                    w = wmget(dr)
                    if w is None or k < w:
                        wmin[dr] = k
            else:
                nb.post_acc.append((s, pid, fi))
                w = wmget(dr)
                if w is None or k < w:
                    wmin[dr] = k
        for cs, k in cred_in:
            dr = router_of[cs]
            t = tget(dr, _NO_TICK)
            if k < t:
                credits[cs] += 1
                if t == _NO_TICK:
                    w = wmget(dr)
                    if w is None or k < w:
                        wmin[dr] = k
            else:
                nb.post_cred.append(cs)
                w = wmget(dr)
                if w is None or k < w:
                    wmin[dr] = k
        nb.nev += len(acc_in) + len(cred_in)


# ----------------------------------------------------------------------
# Shared-memory exchange protocol (multiprocess mode)
# ----------------------------------------------------------------------
class _ShmLayout:
    """Index map over the one int64 shared block.

    Word 0 is the abort flag.  Each shard then owns a fixed block:
    its barrier sequence word, its next-pending-cycle word, its
    published appender keys, and two direction sub-blocks (up, down)
    of boundary flit quads ``(slot, pid, flit, key)`` and credit pairs
    ``(credit slot, key)``, each behind a count word.  Capacities are
    structural maxima: appenders per cycle are at most two per band
    router (tick + external wake), at most one flit crosses per
    boundary column per cycle (one grant per output port), and at most
    five credits return per boundary router per cycle (one per granted
    output port).
    """

    def __init__(self, config: NocConfig, bands: Tuple[Tuple[int, int], ...]):
        W = config.width
        band_r = max((y1 - y0) for y0, y1 in bands) * W
        self.nshards = len(bands)
        self.maxk = 2 * band_r + 4
        self.maxf = W + 2
        self.maxc = 5 * W + 2
        self._dir_words = 2 + 4 * self.maxf + 2 * self.maxc
        self.block = 3 + self.maxk + 2 * self._dir_words
        self.total = 1 + self.nshards * self.block

    def seq_i(self, s: int) -> int:
        return 1 + s * self.block

    def next_i(self, s: int) -> int:
        return 2 + s * self.block

    def nkeys_i(self, s: int) -> int:
        return 3 + s * self.block

    def keys_i(self, s: int) -> int:
        return 4 + s * self.block

    def _dir_i(self, s: int, d: int) -> int:
        return 4 + s * self.block + self.maxk + d * self._dir_words

    def nacc_i(self, s: int, d: int) -> int:
        return self._dir_i(s, d)

    def acc_i(self, s: int, d: int) -> int:
        return self._dir_i(s, d) + 1

    def ncred_i(self, s: int, d: int) -> int:
        return self._dir_i(s, d) + 1 + 4 * self.maxf

    def cred_i(self, s: int, d: int) -> int:
        return self._dir_i(s, d) + 2 + 4 * self.maxf


def _global_next(mv, lay: _ShmLayout, tau: Optional[int]) -> Optional[int]:
    """The cycle every shard steps next, derived from published state.

    Deterministic in the shared block alone, so each worker computes it
    independently and all agree: the minimum of the shards' own next
    pending cycles, floored by ``tau + 1`` whenever any outbox was
    non-empty this cycle (the receiver's bucket for ``tau + 1`` exists
    even though its published ``next`` predates the exchange).
    """
    best: Optional[int] = None
    for s in range(lay.nshards):
        v = mv[lay.next_i(s)]
        if v >= 0 and (best is None or v < best):
            best = v
    if tau is not None and (best is None or best > tau + 1):
        for s in range(lay.nshards):
            if (mv[lay.nacc_i(s, 0)] or mv[lay.nacc_i(s, 1)]
                    or mv[lay.ncred_i(s, 0)] or mv[lay.ncred_i(s, 1)]):
                return tau + 1
    return best


def _shard_worker(shard_id: int, nshards: int, config: NocConfig,
                  band: Tuple[int, int], rows: List[Tuple],
                  pmeta: List[Tuple[int, int]], until: Optional[int],
                  shm_name: str, conn, force_python: bool,
                  lay: _ShmLayout) -> None:
    """One shard's process: step the band under the 2-barrier protocol."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    raw = memoryview(shm.buf)
    mv = raw.cast("q")
    try:
        crash = os.environ.get(_TEST_CRASH_ENV)
        if crash is not None and crash == str(shard_id):
            raise RuntimeError(
                f"shard {shard_id} crashed on request ({_TEST_CRASH_ENV})"
            )
        core = _ShardCore(config, band, shard_id, nshards,
                          force_python=force_python)
        for pid, (dst, length) in enumerate(pmeta):
            core.note_packet(pid, dst, length)
        for cycle, key, src, dst, length, pid in rows:
            core.load_inject(cycle, key, src, dst, length, pid)

        timeout = float(os.environ.get(_SYNC_TIMEOUT_ENV, "120"))
        seq_idx = [lay.seq_i(s) for s in range(nshards)]
        bseq = 0

        def barrier() -> None:
            nonlocal bseq
            bseq += 1
            mv[seq_idx[shard_id]] = bseq
            deadline = None
            for s in range(nshards):
                if s == shard_id:
                    continue
                si = seq_idx[s]
                spins = 0
                while mv[si] < bseq:
                    if mv[0]:
                        raise _Aborted()
                    spins += 1
                    if spins < 200:
                        continue
                    if spins < 2000:
                        time.sleep(0)  # yield: single-core hosts degrade
                        continue       # gracefully instead of livelocking
                    time.sleep(0.0002)
                    if deadline is None:
                        deadline = time.monotonic() + timeout
                    elif time.monotonic() > deadline:
                        raise RuntimeError(
                            f"shard {shard_id} waited more than "
                            f"{timeout:.0f}s for shard {s} at barrier "
                            f"{bseq} ({_SYNC_TIMEOUT_ENV} to raise)"
                        )

        dlog: List[Tuple[int, int, int]] = []
        nxt = core.next_cycle()
        mv[lay.next_i(shard_id)] = -1 if nxt is None else nxt
        barrier()  # bootstrap: everyone's initial next is published
        gnext = _global_next(mv, lay, None)
        while gnext is not None and (until is None or gnext <= until):
            tau = gnext
            core.phase_a(tau)
            for k, pid in core._deliveries:
                dlog.append((k, tau, pid))
            keys = core.appender_keys()
            mv[lay.nkeys_i(shard_id)] = len(keys)
            o = lay.keys_i(shard_id)
            for k in keys:
                mv[o] = k
                o += 1
            barrier()  # g1: appender keys published
            foreign: List[int] = []
            for s in range(nshards):
                if s == shard_id:
                    continue
                si = lay.keys_i(s)
                foreign.extend(mv[si:si + mv[lay.nkeys_i(s)]])
            if nshards > 2:
                foreign.sort()
            core.phase_b(tau, foreign)
            for d in (0, 1):
                acc = core._out_acc[d]
                mv[lay.nacc_i(shard_id, d)] = len(acc)
                o = lay.acc_i(shard_id, d)
                for s_, pid, fi, k in acc:
                    mv[o] = s_
                    mv[o + 1] = pid
                    mv[o + 2] = fi
                    mv[o + 3] = k
                    o += 4
                cred = core._out_cred[d]
                mv[lay.ncred_i(shard_id, d)] = len(cred)
                o = lay.cred_i(shard_id, d)
                for cs, k in cred:
                    mv[o] = cs
                    mv[o + 1] = k
                    o += 2
            nxt = core.next_cycle()
            mv[lay.next_i(shard_id)] = -1 if nxt is None else nxt
            barrier()  # g2: outboxes + next published
            acc_in: List[Tuple[int, int, int, int]] = []
            cred_in: List[Tuple[int, int]] = []
            for nb_s, d in ((shard_id - 1, 1), (shard_id + 1, 0)):
                if nb_s < 0 or nb_s >= nshards:
                    continue
                n = mv[lay.nacc_i(nb_s, d)]
                o = lay.acc_i(nb_s, d)
                for _ in range(n):
                    acc_in.append((mv[o], mv[o + 1], mv[o + 2], mv[o + 3]))
                    o += 4
                n = mv[lay.ncred_i(nb_s, d)]
                o = lay.cred_i(nb_s, d)
                for _ in range(n):
                    cred_in.append((mv[o], mv[o + 1]))
                    o += 2
            core.absorb(tau, acc_in, cred_in)
            gnext = _global_next(mv, lay, tau)
        if until is not None and until > core.cycle:
            core.cycle = until
        conn.send(("done", shard_id, {
            "events": core.events_processed,
            "deliveries": dlog,
            "last_cycle": core.cycle,
            "rows": core.band,
            "boundary_flits": list(core.boundary_flits),
            "boundary_credits": list(core.boundary_credits),
        }))
    except _Aborted:
        conn.send(("aborted", shard_id, None))
    except BaseException:
        mv[0] = 1  # release every sibling spinning at a barrier
        try:
            conn.send(("error", shard_id, traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        mv.release()
        raw.release()
        shm.close()
        conn.close()


# ----------------------------------------------------------------------
class ShardedFlitNetwork:
    """Row-band sharded flit fabric, API-compatible with the vector one.

    Standalone use drives it with :meth:`send_at` + :meth:`run`; with
    more than one shard (and no ``sim`` / delivery handler) the run
    fans out one worker process per band.  Co-simulation (``sim``
    given) registers as the kernel's stepper and runs the cores
    in-process on the identical phase schedule — still bit-exact,
    still sharded state, no processes (handlers live here).
    """

    def __init__(self, config: NocConfig, sim: Optional[Simulator] = None,
                 on_delivery: Optional[Callable] = None,
                 force_python: bool = False, shards: Optional[int] = None,
                 use_processes: Optional[bool] = None):
        if config.topology != "mesh":
            raise UnsupportedTopology(
                f"the sharded flit engine partitions the 5-port mesh "
                f"router fabric only; topology {config.topology!r} "
                f"requires the packet-level network",
                model="flit/sharded",
                topology=config.topology,
            )
        if config.link_cycles != 1:
            raise ValueError(
                "the sharded flit engine models single-cycle links only "
                f"(link_cycles={config.link_cycles}): its conservative "
                "lookahead equals the cross-boundary link latency"
            )
        n = int(shards if shards is not None else config.shards)
        if not 1 <= n <= config.height:
            raise ValueError(
                f"shards={n} must be between 1 and the mesh height "
                f"({config.height}): each shard owns at least one row"
            )
        self.config = config
        self.mesh = Mesh(config.width, config.height)
        self.sim = sim
        self.on_delivery = on_delivery
        self.shards = n
        self._force_python = force_python
        # balanced contiguous row bands, top row band first
        base, rem = divmod(config.height, n)
        bands: List[Tuple[int, int]] = []
        y = 0
        for i in range(n):
            h = base + (1 if i < rem else 0)
            bands.append((y, y + h))
            y += h
        self.bands: Tuple[Tuple[int, int], ...] = tuple(bands)
        if use_processes is None:
            use_processes = n > 1 and sim is None and on_delivery is None
        elif use_processes and (sim is not None or on_delivery is not None):
            raise ValueError(
                "worker processes cannot run co-simulation or delivery "
                "handlers; drop use_processes or drive standalone"
            )
        self._use_processes = bool(use_processes)

        self._cores: List[_ShardCore] = []
        self._core_of: List[_ShardCore] = []
        if not self._use_processes:
            for i, band in enumerate(self.bands):
                self._cores.append(
                    _ShardCore(config, band, i, n, force_python=force_python)
                )
            for core in self._cores:
                rows = core.band[1] - core.band[0]
                self._core_of.extend([core] * (rows * config.width))

        # the parent owns every real packet; cores see integers only
        self._packets: List[VectorFlitPacket] = []
        self._plen: List[int] = []
        self._pdst: List[int] = []
        self._setup_rows: List[Tuple] = []
        self._plan: List[Tuple[int, int, int, int, int, int]] = []
        self._setup_seq = 0
        self._late_seq = 0
        self._in_step = False
        self._stepped_cycle = -1
        self._deferred_sends: List[VectorFlitPacket] = []
        self._mp_done = False
        self._mp_counters: Tuple[Dict, ...] = ()

        self.cycle = 0
        self.events_processed = 0
        self.delivered: List[VectorFlitPacket] = []
        self.injected = 0

        if sim is not None:
            sim.attach_stepper(self)

    # ------------------------------------------------------------------
    # Public API (VectorFlitNetwork-compatible)
    # ------------------------------------------------------------------
    def send_at(self, cycle: int, src: int, dst: int, length: int,
                payload: object = None) -> None:
        """Schedule an injection; keys mirror the vector engine's
        setup-time ordering (call order below every run-time key)."""
        key = _SETUP_BASE + self._setup_seq
        self._setup_seq += 1
        self._setup_rows.append((cycle, key, src, dst, length, payload))

    def send(self, src: int, dst: int, length: int,
             payload: object = None) -> VectorFlitPacket:
        """Inject now (co-sim / in-process standalone semantics)."""
        if self._use_processes:
            raise RuntimeError(
                "the multiprocess sharded fabric is plan-driven: queue "
                "injections with send_at() before run()"
            )
        self._flush_setup()
        now = self.sim.cycle if self.sim is not None else self.cycle
        if self._in_step:
            # a delivery handler sent synchronously mid-step: applied
            # after the merged deliveries, in arrival order
            packet = self._new_packet(src, dst, length, payload, now)
            self._deferred_sends.append(packet)
            return packet
        packet = self._new_packet(src, dst, length, payload, now)
        self.cycle = max(self.cycle, now)
        pre = now > self._stepped_cycle
        if pre:
            key = (now << _CYC_SHIFT) - _LATE_OFF + self._late_seq
        else:
            key = (now << _CYC_SHIFT) + _LATE_OFF + self._late_seq
        self._late_seq += 1
        for core in self._cores:
            core.note_packet(packet.pid, packet.dst, packet.length)
        self._core_of[src].late_kernel_send(
            src, packet.pid, packet.length, key, pre, now
        )
        return packet

    def run(self, until: Optional[int] = None) -> int:
        """Standalone run loop: drain, or pause at ``until``."""
        self._flush_setup()
        if self._use_processes:
            return self._run_processes(until)
        while True:
            nxt = self.next_cycle()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.cycle = until
                return self.cycle
            self._step_cycle(nxt)
        if until is not None and until > self.cycle:
            self.cycle = until
        return self.cycle

    @property
    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(p.latency for p in self.delivered) / len(self.delivered)

    def shard_counters(self) -> Tuple[Dict, ...]:
        """Per-shard counter snapshots, folded from the live cores (or
        the worker reports after a multiprocess run)."""
        if self._cores:
            return tuple(
                {
                    "shard": c.shard_id,
                    "rows": c.band,
                    "events": c.events_processed,
                    "boundary_flits": tuple(c.boundary_flits),
                    "boundary_credits": tuple(c.boundary_credits),
                }
                for c in self._cores
            )
        return self._mp_counters

    # ------------------------------------------------------------------
    # Kernel stepper protocol (Simulator.attach_stepper)
    # ------------------------------------------------------------------
    def next_cycle(self) -> Optional[int]:
        self._flush_setup()
        nxt: Optional[int] = None
        for core in self._cores:
            c = core.next_cycle()
            if c is not None and (nxt is None or c < nxt):
                nxt = c
        return nxt

    def advance_n(self, limit: Optional[int]) -> int:
        before = self.events_processed
        while True:
            nxt = self.next_cycle()
            if nxt is None or (limit is not None and nxt > limit):
                break
            if self.sim is not None:
                self.sim.cycle = nxt
            self._step_cycle(nxt)
        return self.events_processed - before

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_packet(self, src, dst, length, payload, now) -> VectorFlitPacket:
        pid = len(self._packets)
        packet = VectorFlitPacket(src, dst, max(1, length), payload, pid)
        packet.injected_cycle = now
        self._packets.append(packet)
        self._plen.append(packet.length)
        self._pdst.append(packet.dst)
        self.injected += 1
        return packet

    def _deliver(self, pid: int, now: int) -> None:
        packet = self._packets[pid]
        packet.delivered_cycle = now
        self.delivered.append(packet)
        if self.on_delivery is not None:
            self.on_delivery(packet)

    def _flush_setup(self) -> None:
        rows = self._setup_rows
        if not rows:
            return
        self._setup_rows = []
        # pid assignment in execution order (cycle, then key), matching
        # the vector engine's lazy creation inside its inject events
        rows.sort(key=lambda t: (t[0], t[1]))
        cores = self._cores
        core_of = self._core_of
        for cycle, key, src, dst, length, payload in rows:
            packet = self._new_packet(src, dst, length, payload, cycle)
            if cores:
                for core in cores:
                    core.note_packet(packet.pid, packet.dst, packet.length)
                core_of[src].load_inject(
                    cycle, key, src, dst, packet.length, packet.pid
                )
            else:
                self._plan.append(
                    (cycle, key, src, dst, packet.length, packet.pid)
                )

    def _step_cycle(self, tau: int) -> None:
        """One global cycle on the in-process sequential scheduler."""
        cores = self._cores
        self.cycle = tau
        self._stepped_cycle = tau
        for core in cores:
            core.phase_a(tau)
        deliveries: List[Tuple[int, int]] = []
        for core in cores:
            if core._deliveries:
                deliveries.extend(core._deliveries)
        if deliveries:
            # keys embed the cycle and never tie (one LOCAL grant per
            # router per cycle): one sort = the global delivery order
            deliveries.sort()
            self._in_step = True
            for _k, pid in deliveries:
                self._deliver(pid, tau)
            self._in_step = False
            if self._deferred_sends:
                pending = self._deferred_sends
                self._deferred_sends = []
                base_key = tau << _CYC_SHIFT
                for packet in pending:
                    own = base_key + _LATE_OFF + self._late_seq
                    self._late_seq += 1
                    for core in cores:
                        core.note_packet(packet.pid, packet.dst,
                                         packet.length)
                    self._core_of[packet.src].late_inject(
                        packet.src, packet.pid, packet.length, own
                    )
        if len(cores) == 1:
            cores[0].appender_keys()
            cores[0].phase_b(tau, ())
        else:
            keys = [core.appender_keys() for core in cores]
            for i, core in enumerate(cores):
                foreign: List[int] = []
                for j, ks in enumerate(keys):
                    if j != i:
                        foreign.extend(ks)
                if len(cores) > 2:
                    foreign.sort()
                core.phase_b(tau, foreign)
            for i, core in enumerate(cores):
                acc_in: List[Tuple[int, int, int, int]] = []
                cred_in: List[Tuple[int, int]] = []
                if i > 0:
                    acc_in.extend(cores[i - 1]._out_acc[1])
                    cred_in.extend(cores[i - 1]._out_cred[1])
                if i + 1 < len(cores):
                    acc_in.extend(cores[i + 1]._out_acc[0])
                    cred_in.extend(cores[i + 1]._out_cred[0])
                core.absorb(tau, acc_in, cred_in)
        self.events_processed = sum(c.events_processed for c in cores)

    def _run_processes(self, until: Optional[int]) -> int:
        """Fan the run out to one worker process per shard."""
        if self._mp_done:
            raise RuntimeError(
                "the multiprocess sharded run is one-shot; build a "
                "fresh ShardedFlitNetwork for another run"
            )
        self._mp_done = True
        import multiprocessing as mp
        from multiprocessing import shared_memory

        config, n = self.config, self.shards
        lay = _ShmLayout(config, self.bands)
        pmeta = list(zip(self._pdst, self._plen))
        shard_of_node: List[int] = []
        for i, (y0, y1) in enumerate(self.bands):
            shard_of_node.extend([i] * ((y1 - y0) * config.width))
        rows_by_shard: List[List[Tuple]] = [[] for _ in range(n)]
        for row in self._plan:
            rows_by_shard[shard_of_node[row[2]]].append(row)
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = mp.get_context()
        shm = shared_memory.SharedMemory(create=True, size=lay.total * 8)
        raw = memoryview(shm.buf)
        mv = raw.cast("q")
        procs: List = []
        conns: List = []
        try:
            for i in range(lay.total):
                mv[i] = 0
            for i in range(n):
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                p = ctx.Process(
                    target=_shard_worker,
                    args=(i, n, config, self.bands[i], rows_by_shard[i],
                          pmeta, until, shm.name, child_conn,
                          self._force_python, lay),
                    daemon=True,
                )
                procs.append(p)
                conns.append(parent_conn)
                p.start()
                child_conn.close()
            results: List[Optional[Dict]] = [None] * n
            failure: Optional[Tuple] = None
            pending = set(range(n))
            while pending and failure is None:
                for i in list(pending):
                    if conns[i].poll(0.02):
                        try:
                            kind, sid, payload = conns[i].recv()
                        except (EOFError, OSError):
                            failure = ("shard worker died without "
                                       "reporting", i, None,
                                       procs[i].exitcode)
                            pending.discard(i)
                            continue
                        if kind == "done":
                            results[sid] = payload
                            pending.discard(i)
                        elif kind == "error":
                            failure = ("shard worker raised", sid,
                                       payload, None)
                            pending.discard(i)
                        else:  # "aborted": a sibling already failed
                            pending.discard(i)
                    elif not procs[i].is_alive():
                        if conns[i].poll(0):
                            continue  # drain its final message first
                        failure = ("shard worker died without reporting",
                                   i, None, procs[i].exitcode)
                        pending.discard(i)
            if failure is not None:
                mv[0] = 1  # release siblings spinning at a barrier
                for p in procs:
                    p.join(timeout=5)
                for p in procs:
                    if p.is_alive():  # pragma: no cover - stuck worker
                        p.terminate()
                msg, sid, tb, exitcode = failure
                raise ShardWorkerError(
                    f"{msg} (shard {sid} of {n})",
                    shard=sid,
                    shards=n,
                    exitcode=exitcode,
                    worker_traceback=tb,
                )
            for p in procs:
                p.join()
            dl: List[Tuple[int, int, int]] = []
            counters: List[Dict] = []
            events = 0
            last = 0
            for sid in range(n):
                res = results[sid]
                events += res["events"]
                last = max(last, res["last_cycle"])
                dl.extend(res["deliveries"])
                counters.append({
                    "shard": sid,
                    "rows": tuple(res["rows"]),
                    "events": res["events"],
                    "boundary_flits": tuple(res["boundary_flits"]),
                    "boundary_credits": tuple(res["boundary_credits"]),
                })
            dl.sort()
            for _k, dtau, pid in dl:
                self._deliver(pid, dtau)
            self.events_processed += events
            self.cycle = max(self.cycle, last)
            self._mp_counters = tuple(counters)
            return self.cycle
        finally:
            for c in conns:
                c.close()
            mv.release()
            raw.release()
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


# ----------------------------------------------------------------------
class ShardedFlitFabric(VectorFlitFabric):
    """Network-interface wrapper over ``ShardedFlitNetwork`` (co-sim).

    Same counters, endpoint dispatch, fault-injection site and iNPG
    refusal as :class:`~repro.noc.vecflit.VectorFlitFabric`, with the
    sharded engine co-simulated in-process against the kernel.
    """

    fault_model_name = "flit/sharded"

    def __init__(self, sim: Simulator, config: NocConfig,
                 priority_arbitration: bool = False,
                 force_python: bool = False):
        Component.__init__(self, sim, "shardflitfabric")
        self.config = config
        self.fabric = ShardedFlitNetwork(
            config, sim=sim, on_delivery=self._on_delivery,
            force_python=force_python,
        )
        self.mesh = self.fabric.mesh
        self.priority_arbitration = priority_arbitration
        self._endpoints = {}
        self.packets_injected = 0
        self.packets_delivered = 0
        self.packets_consumed = 0
        self.packets_dropped = 0
        self.total_latency = 0
        self.memsys = None
        self.routers: Dict[int, object] = {}

    @property
    def shard_counters(self) -> Tuple[Dict, ...]:
        """Per-shard counters (obs samples these at epoch boundaries)."""
        return self.fabric.shard_counters()
