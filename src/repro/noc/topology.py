"""Mesh topology and XY dimension-order routing.

The paper's platform is an 8x8 mesh with XY routing (Table 1, Figure 3):
packets first travel along the X dimension to the destination column, then
along Y.  XY routing is deterministic and deadlock-free, which also makes
the path of every lock request predictable — the property iNPG exploits
when placing big routers.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class Mesh:
    """A ``width`` x ``height`` mesh of routers addressed 0..N-1 row-major."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) of ``node``; raises for out-of-range ids."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbors(self, node: int) -> Iterator[int]:
        """Mesh-adjacent node ids."""
        x, y = self.coords(node)
        if x > 0:
            yield self.node_at(x - 1, y)
        if x < self.width - 1:
            yield self.node_at(x + 1, y)
        if y > 0:
            yield self.node_at(x, y - 1)
        if y < self.height - 1:
            yield self.node_at(x, y + 1)

    def xy_route(self, src: int, dst: int) -> List[int]:
        """Full XY path from ``src`` to ``dst``, inclusive of both ends.

        X is corrected first, then Y (dimension-order).  The returned list
        is the sequence of routers the packet's head flit traverses.
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step_x = 1 if dx > sx else -1
        while x != dx:
            x += step_x
            path.append(self.node_at(x, y))
        step_y = 1 if dy > sy else -1
        while y != dy:
            y += step_y
            path.append(self.node_at(x, y))
        return path

    def next_hop(self, current: int, dst: int) -> int:
        """Next router on the XY path from ``current`` toward ``dst``."""
        cx, cy = self.coords(current)
        dx, dy = self.coords(dst)
        if cx != dx:
            return self.node_at(cx + (1 if dx > cx else -1), cy)
        if cy != dy:
            return self.node_at(cx, cy + (1 if dy > cy else -1))
        return current

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)
