"""Mesh topology and XY dimension-order routing.

The paper's platform is an 8x8 mesh with XY routing (Table 1, Figure 3):
packets first travel along the X dimension to the destination column, then
along Y.  XY routing is deterministic and deadlock-free, which also makes
the path of every lock request predictable — the property iNPG exploits
when placing big routers.

Routing is table-driven: every ``(width, height)`` shape builds its
coordinate table once and next-hop rows on first use, shared process-wide
across all :class:`Mesh` instances of that shape (a fig12 sweep builds
hundreds of 8x8 meshes).  ``next_hop`` is then two tuple lookups with no
arithmetic on the router hot path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class Mesh:
    """A ``width`` x ``height`` mesh of routers addressed 0..N-1 row-major."""

    #: (width, height) -> (coords table, {node -> next-hop row})
    _SHAPE_CACHE: Dict[
        Tuple[int, int],
        Tuple[Tuple[Tuple[int, int], ...], Dict[int, Tuple[int, ...]]],
    ] = {}

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height
        self.num_nodes = width * height
        cached = Mesh._SHAPE_CACHE.get((width, height))
        if cached is None:
            coords = tuple(
                (node % width, node // width) for node in range(self.num_nodes)
            )
            cached = (coords, {})
            Mesh._SHAPE_CACHE[(width, height)] = cached
        self._coords, self._hop_rows = cached

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) of ``node``; raises for out-of-range ids."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")
        return self._coords[node]

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbors(self, node: int) -> Iterator[int]:
        """Mesh-adjacent node ids."""
        x, y = self.coords(node)
        if x > 0:
            yield self.node_at(x - 1, y)
        if x < self.width - 1:
            yield self.node_at(x + 1, y)
        if y > 0:
            yield self.node_at(x, y - 1)
        if y < self.height - 1:
            yield self.node_at(x, y + 1)

    def xy_route(self, src: int, dst: int) -> List[int]:
        """Full XY path from ``src`` to ``dst``, inclusive of both ends.

        X is corrected first, then Y (dimension-order).  The returned list
        is the sequence of routers the packet's head flit traverses.
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step_x = 1 if dx > sx else -1
        while x != dx:
            x += step_x
            path.append(self.node_at(x, y))
        step_y = 1 if dy > sy else -1
        while y != dy:
            y += step_y
            path.append(self.node_at(x, y))
        return path

    def next_hop_row(self, current: int) -> Tuple[int, ...]:
        """Per-source routing row: ``row[dst]`` is the next hop on the XY
        path from ``current``.  Built on first use and shared across all
        meshes of this shape; routers index their row directly."""
        row = self._hop_rows.get(current)
        if row is None:
            cx, cy = self.coords(current)
            width = self.width
            hops = []
            for dst in range(self.num_nodes):
                dx, dy = self._coords[dst]
                if cx != dx:
                    hops.append(cy * width + cx + (1 if dx > cx else -1))
                elif cy != dy:
                    hops.append((cy + (1 if dy > cy else -1)) * width + cx)
                else:
                    hops.append(current)
            row = tuple(hops)
            self._hop_rows[current] = row
        return row

    def next_hop(self, current: int, dst: int) -> int:
        """Next router on the XY path from ``current`` toward ``dst``."""
        if not 0 <= dst < self.num_nodes:
            raise ValueError(f"node {dst} outside mesh of {self.num_nodes}")
        return self.next_hop_row(current)[dst]

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)
