"""Topologies and routing functions for the packet-level NoC.

The paper's platform is an 8x8 mesh with XY routing (Table 1, Figure 3):
packets first travel along the X dimension to the destination column, then
along Y.  XY routing is deterministic and deadlock-free, which also makes
the path of every lock request predictable — the property iNPG exploits
when placing big routers.

This module abstracts that pair behind a :class:`Topology` /
:class:`RoutingFunction` interface so the placement question the paper
leaves open can be swept across fabrics:

* :class:`Mesh` — the paper's platform, XY dimension-order routing.
* :class:`Torus` — mesh plus wraparound links in both dimensions;
  shortest-direction XY routing with dateline virtual channels for
  deadlock freedom (see DESIGN.md §15).
* :class:`Ring` — all N nodes on one bidirectional ring addressed by
  node id; shortest-direction routing, one dateline between the last
  and first node.

Routing is table-driven: every ``(width, height)`` shape builds its
coordinate table once and next-hop rows on first use, shared process-wide
across all instances of that topology class and shape (a fig12 sweep
builds hundreds of 8x8 meshes).  ``next_hop`` is then two tuple lookups
with no arithmetic on the router hot path.  Caches are **per topology
class** — a torus row can never leak into a mesh of the same shape.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

#: (width, height) -> (coords table, {node -> next-hop row})
_ShapeCache = Dict[
    Tuple[int, int],
    Tuple[Tuple[Tuple[int, int], ...], Dict[int, Tuple[int, ...]]],
]


class RoutingFunction:
    """Computes deterministic per-source next-hop rows for a topology.

    A routing function is stateless: :meth:`compute_row` maps a source
    node to the tuple ``row`` where ``row[dst]`` is the next node on the
    path toward ``dst`` (``row[src] == src``).  The topology caches rows
    per shape, so this runs once per (class, shape, source) per process.
    """

    name = "?"

    def compute_row(self, topo: "Topology", current: int) -> Tuple[int, ...]:
        raise NotImplementedError


class XYRouting(RoutingFunction):
    """Dimension-order routing: correct X first, then Y (mesh)."""

    name = "xy"

    def compute_row(self, topo: "Topology", current: int) -> Tuple[int, ...]:
        cx, cy = topo.coords(current)
        width = topo.width
        hops = []
        for dst in range(topo.num_nodes):
            dx, dy = topo._coords[dst]
            if cx != dx:
                hops.append(cy * width + cx + (1 if dx > cx else -1))
            elif cy != dy:
                hops.append((cy + (1 if dy > cy else -1)) * width + cx)
            else:
                hops.append(current)
        return tuple(hops)


class TorusXYRouting(RoutingFunction):
    """Dimension-order routing with per-dimension shortest direction.

    Each dimension is a ring: travel the direction with fewer hops,
    breaking exact ties toward increasing coordinate (deterministic).
    X is still fully corrected before Y (dimension order), so routes
    stay deterministic and minimal.
    """

    name = "torus-xy"

    @staticmethod
    def _step(c: int, d: int, size: int) -> int:
        """Next coordinate from ``c`` toward ``d`` on a ring of ``size``."""
        forward = (d - c) % size
        backward = (c - d) % size
        if forward <= backward:
            return (c + 1) % size
        return (c - 1) % size

    def compute_row(self, topo: "Topology", current: int) -> Tuple[int, ...]:
        cx, cy = topo.coords(current)
        width, height = topo.width, topo.height
        hops = []
        for dst in range(topo.num_nodes):
            dx, dy = topo._coords[dst]
            if cx != dx:
                hops.append(cy * width + self._step(cx, dx, width))
            elif cy != dy:
                hops.append(self._step(cy, dy, height) * width + cx)
            else:
                hops.append(current)
        return tuple(hops)


class RingRouting(RoutingFunction):
    """Shortest-direction routing on one bidirectional ring of node ids.

    Ties (exactly opposite nodes on an even-sized ring) break toward
    increasing node id, deterministically.
    """

    name = "ring-shortest"

    def compute_row(self, topo: "Topology", current: int) -> Tuple[int, ...]:
        n = topo.num_nodes
        hops = []
        for dst in range(n):
            if dst == current:
                hops.append(current)
                continue
            forward = (dst - current) % n
            backward = (current - dst) % n
            if forward <= backward:
                hops.append((current + 1) % n)
            else:
                hops.append((current - 1) % n)
        return tuple(hops)


class Topology:
    """A ``width`` x ``height`` fabric of routers addressed 0..N-1 row-major.

    Concrete topologies define adjacency (:meth:`neighbors`), the metric
    (:meth:`hop_distance`) and, when links wrap around, the dateline
    predicate (:meth:`crosses_dateline`).  Routing is delegated to the
    class's :class:`RoutingFunction` and memoized in a per-class,
    process-wide shape cache.
    """

    #: axis value (``NocConfig.topology``); set by concrete subclasses.
    name = "?"
    #: the routing function instance shared by all shapes of this class.
    routing: RoutingFunction = RoutingFunction()
    #: True when some links wrap around and packets need dateline VCs to
    #: break the channel-dependency cycle (torus, ring).
    has_datelines = False

    _SHAPE_CACHE: _ShapeCache = {}

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # every concrete topology gets its own shape cache: rows are
        # keyed per (class, shape) and can never leak across classes.
        cls._SHAPE_CACHE = {}

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("topology dimensions must be positive")
        self.width = width
        self.height = height
        self.num_nodes = width * height
        cache = type(self)._SHAPE_CACHE
        cached = cache.get((width, height))
        if cached is None:
            coords = tuple(
                (node % width, node // width) for node in range(self.num_nodes)
            )
            cached = (coords, {})
            cache[(width, height)] = cached
        self._coords, self._hop_rows = cached

    # ------------------------------------------------------------------
    # Addressing (identical row-major scheme for every topology)
    # ------------------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) of ``node``; raises for out-of-range ids."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} outside {self.name} of {self.num_nodes}"
            )
        return self._coords[node]

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(
                f"({x},{y}) outside {self.width}x{self.height} {self.name}"
            )
        return y * self.width + x

    # ------------------------------------------------------------------
    # Structure (per topology)
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> Iterator[int]:
        """Adjacent node ids (each physical link once, no self-loops)."""
        raise NotImplementedError

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        raise NotImplementedError

    def crosses_dateline(self, current: int, nxt: int) -> bool:
        """True when the ``current -> nxt`` link wraps around a dateline.

        Only meaningful for topologies with ``has_datelines``; the base
        (and the mesh) have no wraparound links.
        """
        return False

    # ------------------------------------------------------------------
    # Routing (table-driven, shared per class+shape)
    # ------------------------------------------------------------------
    def next_hop_row(self, current: int) -> Tuple[int, ...]:
        """Per-source routing row: ``row[dst]`` is the next hop on the
        path from ``current``.  Built on first use and shared across all
        instances of this topology class and shape; routers index their
        row directly."""
        row = self._hop_rows.get(current)
        if row is None:
            self.coords(current)  # range check before caching
            row = self.routing.compute_row(self, current)
            self._hop_rows[current] = row
        return row

    def next_hop(self, current: int, dst: int) -> int:
        """Next router on the path from ``current`` toward ``dst``."""
        if not 0 <= dst < self.num_nodes:
            raise ValueError(
                f"node {dst} outside {self.name} of {self.num_nodes}"
            )
        return self.next_hop_row(current)[dst]

    def route(self, src: int, dst: int) -> List[int]:
        """Full path from ``src`` to ``dst``, inclusive of both ends."""
        self.coords(src)
        self.coords(dst)
        path = [src]
        node = src
        while node != dst:
            node = self.next_hop_row(node)[dst]
            path.append(node)
            if len(path) > self.num_nodes:  # pragma: no cover - guard
                raise RuntimeError(
                    f"{self.name} route {src}->{dst} does not converge"
                )
        return path


class Mesh(Topology):
    """The paper's platform: a 2D mesh with XY dimension-order routing."""

    name = "mesh"
    routing = XYRouting()

    def neighbors(self, node: int) -> Iterator[int]:
        """Mesh-adjacent node ids."""
        x, y = self.coords(node)
        if x > 0:
            yield self.node_at(x - 1, y)
        if x < self.width - 1:
            yield self.node_at(x + 1, y)
        if y > 0:
            yield self.node_at(x, y - 1)
        if y < self.height - 1:
            yield self.node_at(x, y + 1)

    def xy_route(self, src: int, dst: int) -> List[int]:
        """Full XY path from ``src`` to ``dst``, inclusive of both ends.

        X is corrected first, then Y (dimension-order).  The returned list
        is the sequence of routers the packet's head flit traverses.
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step_x = 1 if dx > sx else -1
        while x != dx:
            x += step_x
            path.append(self.node_at(x, y))
        step_y = 1 if dy > sy else -1
        while y != dy:
            y += step_y
            path.append(self.node_at(x, y))
        return path

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)


class Torus(Topology):
    """A 2D torus: mesh plus wraparound links in both dimensions.

    Shortest-direction XY routing; the wraparound links between the last
    and first column (and row) are the datelines — a packet crossing one
    escalates to the dateline VC class (``repro.noc.router``), which
    breaks the ring channel-dependency cycle.
    """

    name = "torus"
    routing = TorusXYRouting()
    has_datelines = True

    def neighbors(self, node: int) -> Iterator[int]:
        """Torus-adjacent node ids (wraparound, each link once)."""
        x, y = self.coords(node)
        seen = {node}
        for nx, ny in (
            ((x - 1) % self.width, y),
            ((x + 1) % self.width, y),
            (x, (y - 1) % self.height),
            (x, (y + 1) % self.height),
        ):
            neighbor = self.node_at(nx, ny)
            if neighbor not in seen:
                seen.add(neighbor)
                yield neighbor

    def hop_distance(self, src: int, dst: int) -> int:
        """Per-dimension ring distance, summed."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        ring_x = min((dx - sx) % self.width, (sx - dx) % self.width)
        ring_y = min((dy - sy) % self.height, (sy - dy) % self.height)
        return ring_x + ring_y

    def crosses_dateline(self, current: int, nxt: int) -> bool:
        """True when the hop wraps between the last and first row/column."""
        cx, cy = self.coords(current)
        nx, ny = self.coords(nxt)
        if cx != nx and abs(cx - nx) == self.width - 1:
            return self.width > 2
        if cy != ny and abs(cy - ny) == self.height - 1:
            return self.height > 2
        return False


class Ring(Topology):
    """All ``width * height`` nodes on one bidirectional ring, by node id.

    The shape is kept as ``(width, height)`` purely for addressing
    compatibility (``coords``/``node_at`` keep the row-major scheme that
    memory interleaving and placement use); the physical links form a
    single ring ``0 - 1 - ... - N-1 - 0``.  The ``N-1 <-> 0`` link is the
    dateline.
    """

    name = "ring"
    routing = RingRouting()
    has_datelines = True

    def neighbors(self, node: int) -> Iterator[int]:
        """The two ring neighbours (one for N == 2, none for N == 1)."""
        self.coords(node)
        n = self.num_nodes
        if n == 1:
            return
        seen = {node}
        for neighbor in ((node - 1) % n, (node + 1) % n):
            if neighbor not in seen:
                seen.add(neighbor)
                yield neighbor

    def hop_distance(self, src: int, dst: int) -> int:
        """Shortest-direction ring distance."""
        self.coords(src)
        self.coords(dst)
        n = self.num_nodes
        return min((dst - src) % n, (src - dst) % n)

    def crosses_dateline(self, current: int, nxt: int) -> bool:
        """True when the hop uses the ``N-1 <-> 0`` wraparound link."""
        n = self.num_nodes
        if n <= 2:
            return False
        return {current, nxt} == {0, n - 1}


#: axis value -> topology class; the config axis ``TOPOLOGIES`` mirrors
#: these keys (pinned by tests/test_topology_family.py).
TOPOLOGY_CLASSES: Dict[str, type] = {
    Mesh.name: Mesh,
    Torus.name: Torus,
    Ring.name: Ring,
}


def make_topology(name: str, width: int, height: int) -> Topology:
    """Instantiate the topology named by the ``NocConfig.topology`` axis."""
    cls = TOPOLOGY_CLASSES.get(str(name).lower())
    if cls is None:
        raise ValueError(
            f"unknown topology {name!r}; choose from "
            f"{tuple(sorted(TOPOLOGY_CLASSES))}"
        )
    return cls(width, height)
