"""Synthetic traffic patterns and load-latency sweeps for the NoC models.

Classic NoC evaluation infrastructure: uniform-random, transpose,
bit-complement, hotspot and nearest-neighbour patterns, plus a harness
that sweeps injection rate and reports the average-latency curve — used
to validate the packet-level model against the flit-level one and to
characterize the fabric the coherence protocol runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import NocConfig
from ..sim import Simulator, make_rng
from .network import Network
from .topology import Mesh

#: pattern: (mesh, src, rng) -> dst
Pattern = Callable[[Mesh, int, object], int]


def uniform_random(mesh: Mesh, src: int, rng) -> int:
    dst = rng.randrange(mesh.num_nodes)
    while dst == src:
        dst = rng.randrange(mesh.num_nodes)
    return dst


def transpose(mesh: Mesh, src: int, rng) -> int:
    x, y = mesh.coords(src)
    return mesh.node_at(y % mesh.width, x % mesh.height)


def bit_complement(mesh: Mesh, src: int, rng) -> int:
    return mesh.num_nodes - 1 - src


def hotspot(hot_node: int) -> Pattern:
    def pattern(mesh: Mesh, src: int, rng) -> int:
        return hot_node

    return pattern


def neighbor(mesh: Mesh, src: int, rng) -> int:
    options = list(mesh.neighbors(src))
    return options[rng.randrange(len(options))]


PATTERNS: Dict[str, Pattern] = {
    "uniform": uniform_random,
    "transpose": transpose,
    "bit_complement": bit_complement,
    "neighbor": neighbor,
}


@dataclass
class TrafficResult:
    pattern: str
    injection_rate: float
    offered: int
    delivered: int
    mean_latency: float
    #: simulator work done producing this result (perf accounting)
    sim_events: int = 0
    sim_cycles: int = 0

    @property
    def accepted_fraction(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0


def run_packet_traffic(
    config: NocConfig,
    pattern_name: str = "uniform",
    injection_rate: float = 0.05,
    duration: int = 2_000,
    size_flits: int = 1,
    seed: int = 7,
    drain_cycles: int = 20_000,
) -> TrafficResult:
    """Drive the packet-level network with a synthetic pattern.

    ``injection_rate`` is packets per node per cycle (Bernoulli).
    The run injects for ``duration`` cycles then drains.
    """
    if not 0.0 < injection_rate <= 1.0:
        raise ValueError("injection rate must be in (0, 1]")
    pattern = PATTERNS.get(pattern_name)
    if pattern is None and pattern_name.startswith("hotspot:"):
        pattern = hotspot(int(pattern_name.split(":", 1)[1]))
    if pattern is None:
        raise ValueError(f"unknown pattern {pattern_name!r}")
    sim = Simulator()
    net = Network(sim, config)
    delivered: List[int] = []
    for node in range(net.mesh.num_nodes):
        net.register_endpoint(node, lambda p: delivered.append(p.latency))
    rng = make_rng(seed, f"traffic/{pattern_name}")
    offered = 0
    for cycle in range(duration):
        for src in range(net.mesh.num_nodes):
            if rng.random() < injection_rate:
                dst = pattern(net.mesh, src, rng)
                if dst == src:
                    continue
                offered += 1
                sim.schedule_at(
                    cycle,
                    lambda s=src, d=dst: net.send(s, d, None,
                                                  size_flits=size_flits),
                )
    sim.run(until=duration + drain_cycles)
    mean = sum(delivered) / len(delivered) if delivered else 0.0
    return TrafficResult(
        pattern=pattern_name,
        injection_rate=injection_rate,
        offered=offered,
        delivered=len(delivered),
        mean_latency=mean,
        sim_events=sim.events_processed,
        sim_cycles=sim.cycle,
    )


def latency_load_curve(
    config: NocConfig,
    pattern_name: str = "uniform",
    rates: Sequence[float] = (0.01, 0.05, 0.1, 0.2),
    **kw,
) -> List[TrafficResult]:
    """The classic latency-vs-injection-rate sweep."""
    return [
        run_packet_traffic(config, pattern_name, rate, **kw)
        for rate in rates
    ]
