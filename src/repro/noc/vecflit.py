"""Vectorized array-of-ints flit fabric: cycle-batched router pipelines.

The event-driven flit model (:mod:`repro.noc.flitsim`) spends most of its
time in per-event Python callbacks: every router tick, flit hop and
credit return is a separate kernel event.  This module advances the
*entire mesh one cycle per step* instead — every router pipeline, input
buffer, credit counter and in-flight flit lives in flat parallel integer
columns (one slot per router input VC), and the per-cycle candidate
discovery (which VCs route-compute, which VCs compete for the switch)
is a handful of masked NumPy operations over boolean occupancy columns
(DESIGN.md §13).  The sparse per-flit work — buffer pushes and pops,
claims, credit bumps — runs over the plain Python columns directly:
at mesh-sized populations NumPy call dispatch costs more than the loop.

Bit-exactness contract
======================
The event engine stays the reference oracle; this engine must replay it
*event for event* — same delivered-packet stream, same delivery cycles,
same emulated event count.  Equivalence hinges on reproducing the
kernel's FIFO bucket order, which the event model's within-cycle
semantics observably depend on (whether a flit or credit arriving at
cycle t is visible to a router also ticking at t is decided purely by
append order).  Every emulated event therefore carries a 64-bit *order
key*::

    key = (cycle_scheduled << 24) | (parent_rank << 6) | call_index

where ``parent_rank`` is the dense rank — in key order — of the
*scheduling* event among that cycle's appenders (ticks plus winning
wakes; nothing else appends), and ``call_index`` counts the parent's
``schedule()`` calls.  Events append to a future bucket in exactly the
order their parents ran, so sorting a bucket by key reproduces the
kernel's FIFO order (workload injections scheduled before ``run()`` use
negative keys and sort below every run-time key).  Three consequences
drive the step function:

* an arriving flit / returning credit is visible to its router's tick
  iff its key is below the tick's key (the *pre/post split*);
* local deliveries at one cycle happen in tick-key order;
* a wake is *effective* (actually schedules the next tick) iff its key
  is >= the router's own tick key and minimal among such wakes —
  ``_scheduled`` is cleared at tick entry, so pre-tick wakes are no-ops
  and the tick's own end-of-tick wake (at the tick's key) precedes any
  post-tick arrival.

Two event-engine behaviours are *derived* rather than replayed:

* a router's end-of-tick self-wake fires iff flits remain buffered at
  tick end **or** the tick granted two or more flits (every ``work_left``
  branch of :meth:`FlitRouter._tick` implies one of the two, and both
  imply ``work_left`` or a non-zero occupancy counter);
* the greedy round-robin switch-allocation scan equals, per output
  port, the eligible input VC minimizing ``(slot - rr) % (5 * vcs)``
  (in-tick credit decrements cannot flip another slot's eligibility
  because claimed (out_port, out_vc) pairs are unique per router and a
  granted output blocks before the credit check).

A third is structural: a VC activated at cycle t is switch-eligible
only from t+1 (``ready_at = now + 1``), which falls out of computing
the switch candidate mask *before* the route-compute/VC-allocation
phase mutates the columns.  All three are load-bearing for the pinned
golden fingerprints and covered by the engine-parity property tests
(``tests/test_vecflit.py``).

Fallback
========
NumPy is optional: it only accelerates candidate discovery, so when it
is absent (or ``force_python=True``) the same step function scans the
ticking routers' slots in a plain loop.  The fallback is for
correctness/portability, not speed — the perf gate
(``flit_vector_uniform``) always measures the NumPy path.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..config import NocConfig
from ..errors import UnsupportedTopology
from ..sim import Component, Simulator
from .flitsim import LOCAL, _REVERSE
from .packet import Packet
from .topology import Mesh

try:  # pragma: no cover - absence exercised via tests' import shim
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAS_NUMPY = _np is not None

#: order-key layout: cycle << _CYC_SHIFT | rank << _SUB_BITS | call index
_CYC_SHIFT = 24
_SUB_BITS = 6
#: offset for co-sim injections applied after their cycle was stepped
_LATE_OFF = 1 << 23
#: pre-run workload injections sort below every run-time key
_SETUP_BASE = -(1 << 40)
#: "no tick this cycle" sentinel (above every real key)
_NO_TICK = 1 << 62


# ----------------------------------------------------------------------
class VectorFlitPacket:
    """Delivered-stream twin of :class:`~repro.noc.flitsim.FlitPacket`."""

    __slots__ = ("src", "dst", "length", "payload", "pid",
                 "injected_cycle", "delivered_cycle")

    def __init__(self, src: int, dst: int, length: int,
                 payload: object = None, pid: int = 0):
        self.src = src
        self.dst = dst
        self.length = length
        self.payload = payload
        self.pid = pid
        self.injected_cycle = -1
        self.delivered_cycle = -1

    @property
    def latency(self) -> int:
        return self.delivered_cycle - self.injected_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VectorFlitPacket(pid={self.pid}, {self.src}->{self.dst}, "
                f"len={self.length})")


class _Bucket:
    """One cycle's worth of emulated events, pre-sorted by kind.

    Link arrivals and credit returns are *fused*: because next cycle's
    tick keys are final when a step ends (``link_cycles == 1``; late
    co-sim sends only add strictly larger keys), the producing step
    classifies each of them against the receiving tick right away.
    Pre-tick events are applied to the truth columns immediately (the
    columns are not read again until that cycle's step), post-tick
    events land in ``post_acc``/``post_cred``, and candidate wake keys
    accumulate per router in ``wake_min`` — re-checked for
    effectiveness at consume time, which is what keeps late-inserted
    ticks correct.
    """

    __slots__ = ("ticks", "nev", "post_acc", "post_cred", "wake_min",
                 "inj")

    def __init__(self):
        #: router -> order key of its scheduled tick
        self.ticks: Dict[int, int] = {}
        #: fused accept/credit events arriving this cycle (pre + post)
        self.nev = 0
        #: post-tick link arrivals: (slot, pid, flit index)
        self.post_acc: List[Tuple[int, int, int]] = []
        #: post-tick upstream credit returns: credit slots
        self.post_cred: List[int] = []
        #: router -> minimal candidate wake key from fused events
        self.wake_min: Dict[int, int] = {}
        #: sparse events: ("send", key, src, dst, length, payload) and
        #: ("lcred", key, node) — local credit returns re-entering the
        #: injection path
        self.inj: List[Tuple] = []


class VectorFlitNetwork:
    """Cycle-batched flit fabric, API-compatible with ``FlitNetwork``.

    Standalone use (the perf workloads / golden tests) drives it with
    :meth:`send_at` + :meth:`run`.  Co-simulation with the event kernel
    (full-system runs) passes ``sim`` — the engine registers itself as
    the kernel's stepper and is batch-advanced between event buckets
    (:meth:`Simulator.attach_stepper`).
    """

    def __init__(self, config: NocConfig, sim: Optional[Simulator] = None,
                 on_delivery: Optional[Callable] = None,
                 force_python: bool = False):
        if config.topology != "mesh":
            # port-direction arrays below are indexed by the 5 fixed
            # mesh directions; other fabrics run on the packet model.
            raise UnsupportedTopology(
                f"the vector flit engine models the 5-port mesh router "
                f"only; topology {config.topology!r} requires the "
                f"packet-level network",
                model="flit/vector",
                topology=config.topology,
            )
        self.config = config
        self.mesh = Mesh(config.width, config.height)
        self.sim = sim
        self.on_delivery = on_delivery
        self._numpy = bool(HAS_NUMPY and not force_python)

        R = self.mesh.num_nodes
        V = config.vcs_per_port
        cap = config.flits_per_vc
        self.R, self.V, self.cap = R, V, cap
        #: input-VC slots per router (5 ports x V); the same index space
        #: addresses (out_port, out_vc) credit counters and claims
        self.SPR = 5 * V
        N = R * self.SPR
        self.N = N

        # -- per-slot truth columns (one row per router input VC) ------
        # flat ring buffers: flit at (slot, pos) lives at slot*cap + pos
        self._buf_pid = [0] * (N * cap)
        self._buf_fi = [0] * (N * cap)
        self._head = [0] * N
        self._cnt = [0] * N
        self._active = [0] * N        # VC holds a downstream claim
        self._out_port = [-1] * N
        self._out_slot = [0] * N      # r*SPR + out_port*V + out_vc
        self._claimed = [0] * N       # indexed like out_slot
        self._credits = [cap] * N     # indexed like out_slot
        self._rr = [0] * R            # per-router SA round-robin
        self._buffered = [0] * R      # per-router flit occupancy
        self._router_of = [i // self.SPR for i in range(N)]
        self._sidx = [i % self.SPR for i in range(N)]

        # -- NumPy candidate mirrors (discovery only) ------------------
        # two product masks: ci = "nonempty and unrouted" (route-compute
        # candidates), ca = "nonempty and routed" (switch candidates),
        # written through memoryviews at every mutation (a single-byte
        # view write is cheaper than batching + re-flushing); candidate
        # discovery reads them *before* the route-compute phase runs,
        # which is what excludes same-cycle VC activations from switch
        # allocation (ready_at = activation + 1).  Without NumPy the
        # views are throwaway lists and discovery scans the truth
        # columns directly.
        if self._numpy:
            self._ci_np = _np.zeros(N, dtype=bool)
            self._ca_np = _np.zeros(N, dtype=bool)
            self._ci_w = memoryview(self._ci_np)  # type: ignore
            self._ca_w = memoryview(self._ca_np)  # type: ignore
        else:
            self._ci_w = [False] * N
            self._ca_w = [False] * N

        # per-router scratch columns, all-zero between steps (each step
        # writes only its ticking routers' entries and resets them)
        self._subtot = [0] * R
        self._gmask = [0] * R
        self._tick_base = [0] * R
        self._ext_base = [0] * R
        #: next cycle's tick keys, valid only inside phase 7 (fused
        #: event classification); _NO_TICK between steps
        self._thr_next = [_NO_TICK] * R

        if config.link_cycles != 1:
            raise ValueError(
                "the vector flit engine models single-cycle links only "
                f"(link_cycles={config.link_cycles}); use "
                "flit_engine='event' for multi-cycle links"
            )

        # -- routing / neighbour tables --------------------------------
        mesh = self.mesh
        self._route: List[Tuple[int, ...]] = []
        self._nbr: List[List[int]] = []
        for node in range(R):
            x, y = mesh.coords(node)
            row = []
            for dst in range(R):
                if dst == node:
                    row.append(LOCAL)
                    continue
                dx, dy = mesh.coords(dst)
                if dx > x:
                    row.append(2)    # EAST
                elif dx < x:
                    row.append(4)    # WEST
                elif dy > y:
                    row.append(3)    # SOUTH
                else:
                    row.append(1)    # NORTH
            self._route.append(tuple(row))
            nbr = [-1] * 5
            if x < mesh.width - 1:
                nbr[2] = mesh.node_at(x + 1, y)
            if x > 0:
                nbr[4] = mesh.node_at(x - 1, y)
            if y < mesh.height - 1:
                nbr[3] = mesh.node_at(x, y + 1)
            if y > 0:
                nbr[1] = mesh.node_at(x, y - 1)
            self._nbr.append(nbr)

        # out slot o = (r, out_port, out_vc) -> downstream input slot;
        # input slot i = (r, in_port, vc) -> upstream credit slot
        acc_target = [-1] * N
        ret_cslot = [-1] * N
        for r in range(R):
            for p in range(1, 5):
                rev = _REVERSE[p]
                u = self._nbr[r][p]
                if u < 0:
                    continue
                for v in range(V):
                    i = r * self.SPR + p * V + v
                    acc_target[i] = u * self.SPR + rev * V + v
                    ret_cslot[i] = u * self.SPR + rev * V + v
        self._acc_target = acc_target
        self._ret_cslot = ret_cslot

        # -- injection machinery (mirrors FlitNetwork) -----------------
        self._iqueue: Dict[int, Deque[VectorFlitPacket]] = {
            n: deque() for n in range(R)
        }
        self._streaming: Dict[int, Optional[Tuple]] = {
            n: None for n in range(R)
        }
        self._packets: List[VectorFlitPacket] = []
        self._plen: List[int] = []
        self._pdst: List[int] = []

        # -- emulated event queue --------------------------------------
        self._buckets: Dict[int, _Bucket] = {}
        self._bheap: List[int] = []
        self._tick_key_by_r = [_NO_TICK] * R
        self._setup_seq = 0
        self._late_seq = 0
        self._in_step = False
        self._stepped_cycle = -1
        self._deferred_sends: List[VectorFlitPacket] = []

        self.cycle = 0
        self.events_processed = 0
        self.delivered: List[VectorFlitPacket] = []
        self.injected = 0

        if sim is not None:
            sim.attach_stepper(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def send_at(self, cycle: int, src: int, dst: int, length: int,
                payload: object = None) -> None:
        """Schedule an injection, like ``sim.schedule_at(c, net.send, ...)``.

        Pre-run injections sort below every run-time event of their
        cycle, exactly as setup-time ``schedule_at`` entries precede
        run-time appends in the kernel's FIFO buckets.
        """
        key = _SETUP_BASE + self._setup_seq
        self._setup_seq += 1
        self._bucket(cycle).inj.append(
            ("send", key, src, dst, length, payload)
        )

    def send(self, src: int, dst: int, length: int,
             payload: object = None) -> VectorFlitPacket:
        """Inject now (event-engine ``FlitNetwork.send`` semantics)."""
        now = self.sim.cycle if self.sim is not None else self.cycle
        if self._in_step:
            # a delivery handler sent synchronously mid-step: apply
            # after the phases, in arrival order
            packet = self._new_packet(src, dst, length, payload, now)
            self._deferred_sends.append(packet)
            return packet
        return self._late_send(src, dst, length, payload, now)

    def run(self, until: Optional[int] = None) -> int:
        """Standalone run loop (no kernel): drain, or pause at ``until``."""
        while True:
            nxt = self.next_cycle()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.cycle = until
                return self.cycle
            self._step(nxt)
        if until is not None and until > self.cycle:
            self.cycle = until
        return self.cycle

    @property
    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(p.latency for p in self.delivered) / len(self.delivered)

    # ------------------------------------------------------------------
    # Kernel stepper protocol (Simulator.attach_stepper)
    # ------------------------------------------------------------------
    def next_cycle(self) -> Optional[int]:
        """Cycle of the engine's next pending work, or None when idle."""
        heap, buckets = self._bheap, self._buckets
        while heap:
            c = heap[0]
            if c in buckets:
                return c
            heapq.heappop(heap)
        return None

    def advance_n(self, limit: Optional[int]) -> int:
        """Batch-advance through every pending cycle <= ``limit``.

        Returns the number of emulated events processed, which the
        kernel folds into ``events_processed``.  ``sim.cycle`` is moved
        along so delivery handlers observe the correct current cycle.
        """
        before = self.events_processed
        while True:
            nxt = self.next_cycle()
            if nxt is None or (limit is not None and nxt > limit):
                break
            if self.sim is not None:
                self.sim.cycle = nxt
            self._step(nxt)
        return self.events_processed - before

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bucket(self, cycle: int) -> _Bucket:
        b = self._buckets.get(cycle)
        if b is None:
            b = self._buckets[cycle] = _Bucket()
            heapq.heappush(self._bheap, cycle)
        return b

    def _new_packet(self, src, dst, length, payload, now) -> VectorFlitPacket:
        pid = len(self._packets)
        packet = VectorFlitPacket(src, dst, max(1, length), payload, pid)
        packet.injected_cycle = now
        self._packets.append(packet)
        self._plen.append(packet.length)
        self._pdst.append(packet.dst)
        self.injected += 1
        return packet

    def _late_send(self, src, dst, length, payload, now) -> VectorFlitPacket:
        """Injection at an already-stepped cycle (co-sim): the event
        engine's ``send`` pushes flits into the local VCs synchronously
        and the woken router ticks next cycle."""
        self.cycle = max(self.cycle, now)
        packet = self._new_packet(src, dst, length, payload, now)
        self._iqueue[src].append(packet)
        # Kernel-first ordering: the kernel drains its cycle-``now``
        # bucket before :meth:`_step` runs ``now``, so this send's wake
        # appends to bucket ``now + 1`` *before* anything the step
        # schedules — key it below ``base_key``.  A send arriving after
        # the step (a zero-delay handler event) appends last instead.
        pre = now > self._stepped_cycle
        if pre:
            key = (now << _CYC_SHIFT) - _LATE_OFF + self._late_seq
        else:
            key = (now << _CYC_SHIFT) + _LATE_OFF + self._late_seq
        self._late_seq += 1
        wakes: List[Tuple[int, int]] = []
        self._try_inject(src, key, wakes)
        if wakes:
            # A pending tick makes the wake a no-op (the event engine's
            # ``_scheduled`` flag) — including a tick at *this* cycle
            # that has not stepped yet (kernel-first ordering): that
            # tick sees the flit and re-wakes itself if work remains.
            bnow = self._buckets.get(now)
            tnow = bnow.ticks if bnow is not None else ()
            ticks = self._bucket(now + 1).ticks
            thr_next = self._thr_next
            for node, own in wakes:
                if node not in tnow and node not in ticks:
                    ticks[node] = own
                    if pre:
                        # _step(now) has yet to run: expose the tick to
                        # its fused classification and wake no-op tests
                        # (cleared by the consuming step's preamble)
                        thr_next[node] = own
        return packet

    def _try_inject(self, node: int, own: int,
                    wakes: List[Tuple[int, int]]) -> None:
        """Python twin of ``FlitNetwork._try_inject`` over the columns."""
        V, cap = self.V, self.cap
        base = node * self.SPR  # LOCAL is port 0: slots base..base+V-1
        stream = self._streaming[node]
        cnt, active = self._cnt, self._active
        if stream is None:
            queue = self._iqueue[node]
            if not queue:
                return
            for vc_index in range(V):
                i = base + vc_index
                if not active[i] and not cnt[i]:
                    stream = (queue.popleft(), vc_index, 0)
                    break
            if stream is None:
                return
        packet, vc_index, next_flit = stream
        i = base + vc_index
        buf_pid, buf_fi = self._buf_pid, self._buf_fi
        h = self._head[i]
        c = old = cnt[i]
        pid = packet.pid
        length = packet.length
        ib = i * cap
        while next_flit < length and c < cap:
            pos = ib + (h + c) % cap
            buf_pid[pos] = pid
            buf_fi[pos] = next_flit
            c += 1
            next_flit += 1
        if c != old:
            cnt[i] = c
            self._buffered[node] += c - old
            a = active[i]
            self._ci_w[i] = not a
            self._ca_w[i] = a
        if next_flit >= length:
            self._streaming[node] = None
            if self._iqueue[node]:
                self._try_inject(node, own, wakes)
        else:
            self._streaming[node] = (packet, vc_index, next_flit)
        wakes.append((node, own))

    def _deliver(self, pid: int, now: int) -> None:
        packet = self._packets[pid]
        packet.delivered_cycle = now
        self.delivered.append(packet)
        if self.on_delivery is not None:
            self.on_delivery(packet)

    def _run_inject(self, event, tau: int,
                    wakes: List[Tuple[int, int]]) -> None:
        if event[0] == "send":
            _, own, src, dst, length, payload = event
            packet = self._new_packet(src, dst, length, payload, tau)
            self._iqueue[src].append(packet)
            self._try_inject(src, own, wakes)
        else:  # ("lcred", key, node)
            self._try_inject(event[2], event[1], wakes)

    # ------------------------------------------------------------------
    def _step(self, tau: int) -> None:  # noqa: C901 - the one hot path
        """Advance the whole mesh through cycle ``tau`` (DESIGN.md §13)."""
        SPR, V, cap = self.SPR, self.V, self.cap
        bucket = self._buckets.pop(tau)
        self.cycle = tau
        self._stepped_cycle = tau
        self._in_step = True
        base_key = tau << _CYC_SHIFT

        thr = self._tick_key_by_r
        thr_next = self._thr_next
        T_items = list(bucket.ticks.items())
        for r, k in T_items:
            thr[r] = k
            thr_next[r] = _NO_TICK  # consume this tick's pre-late entry
        n_ev = len(T_items)

        router_of = self._router_of
        cnt, head = self._cnt, self._head
        buf_pid, buf_fi = self._buf_pid, self._buf_fi
        buffered, credits = self._buffered, self._credits
        active = self._active
        ci_w, ca_w = self._ci_w, self._ca_w

        #: router -> minimal effective wake key seen so far
        best_wake: Dict[int, int] = {}
        bwget = best_wake.get

        # ---- 1. collect pending events (fused arrivals are already
        # classified and pre-applied by the producing step) ------------
        # an event is visible to its router's tick iff its key is below
        # the tick's key; non-ticking routers (thr == _NO_TICK) apply
        # everything immediately.  A wake is effective iff the router
        # has no tick this cycle or the key is >= the tick key — the
        # producing step could not know about ticks inserted later by
        # late co-sim sends, so effectiveness is re-checked here.  A
        # tick already pending next cycle (a kernel send's pre-late
        # wake, recorded in thr_next) makes every wake a no-op.
        n_ev += bucket.nev
        for r, k in bucket.wake_min.items():
            t = thr[r]
            if (t == _NO_TICK or k >= t) and thr_next[r] == _NO_TICK:
                best_wake[r] = k
        post_acc = bucket.post_acc
        post_cred = bucket.post_cred
        injects = bucket.inj
        if len(injects) > 1:
            injects.sort(key=lambda e: e[1])
        n_ev += len(injects)
        post_inj: List[Tuple] = []
        if injects:
            wakes: List[Tuple[int, int]] = []
            for event in injects:
                if event[1] < thr[event[2]]:
                    self._run_inject(event, tau, wakes)
                else:
                    post_inj.append(event)
            for node, own in wakes:
                t = thr[node]
                if (t == _NO_TICK or own >= t) \
                        and thr_next[node] == _NO_TICK:
                    bw = bwget(node)
                    if bw is None or own < bw:
                        best_wake[node] = own
        self.events_processed += n_ev

        # ---- 2. candidate discovery over the product mirrors ---------
        # runs before stage 1 touches the columns, so a VC activated
        # this cycle is not yet a switch candidate (ready_at = now + 1).
        # The mirrors cover the whole mesh; non-ticking routers' slots
        # are filtered in the consuming loops (rare: a router holding
        # flits at tick end always self-wakes, so a buffered router is
        # non-ticking only on the single cycle its first flit arrives).
        stage3: List[int] = []
        sacand: List[int] = []
        if T_items:
            if self._numpy:
                stage3 = _np.flatnonzero(self._ci_np).tolist()
                sacand = _np.flatnonzero(self._ca_np).tolist()
            else:
                for r in sorted(r for r, _ in T_items):
                    b = r * SPR
                    for i in range(b, b + SPR):
                        if cnt[i]:
                            (sacand if active[i] else stage3).append(i)

        # ---- 3. stage 1: route compute + VC allocation ---------------
        if stage3:
            route = self._route
            pdst = self._pdst
            claimed = self._claimed
            out_port, out_slot = self._out_port, self._out_slot
            for i in stage3:
                r = router_of[i]
                if thr[r] == _NO_TICK:
                    continue  # not ticking this cycle
                pos = i * cap + head[i]
                if buf_fi[pos]:
                    continue  # mid-packet flit: VC awaits its head
                op = route[r][pdst[buf_pid[pos]]]
                ob = r * SPR + op * V
                for ov in range(ob, ob + V):
                    if not claimed[ov]:
                        claimed[ov] = 1
                        active[i] = 1
                        ci_w[i] = False
                        ca_w[i] = True
                        out_port[i] = op
                        out_slot[i] = ov
                        break
                # allocation failure leaves the flit buffered, which
                # already forces the end-of-tick self-wake

        # ---- 4. switch allocation + traversal ------------------------
        gmask_of = self._gmask
        subtot = self._subtot
        acc_s: List[int] = []
        acc_p: List[int] = []
        acc_f: List[int] = []
        acc_r: List[int] = []
        acc_c: List[int] = []
        ret_s: List[int] = []
        ret_r: List[int] = []
        ret_c: List[int] = []
        deliveries: List[Tuple[int, int]] = []
        if sacand:
            rr = self._rr
            sidx = self._sidx
            out_port, out_slot = self._out_port, self._out_slot
            elig: List[Tuple[int, int, int, int]] = []
            for i in sacand:
                r = router_of[i]
                if thr[r] == _NO_TICK:
                    continue  # not ticking this cycle
                op = out_port[i]
                if op != LOCAL and credits[out_slot[i]] <= 0:
                    continue
                elig.append((r, (sidx[i] - rr[r]) % SPR, i, op))
            elig.sort()
            plen = self._plen
            acc_tgt = self._acc_target
            claimed = self._claimed
            gmask = 0
            cur_r = -1
            sub = 0
            for r, _prio, i, op in elig:
                if r != cur_r:
                    if cur_r >= 0:
                        subtot[cur_r] = sub
                        gmask_of[cur_r] = gmask
                    cur_r = r
                    gmask = 0
                    sub = 0
                ob = 1 << op
                if gmask & ob:
                    continue  # one grant per output port per cycle
                gmask |= ob
                h = head[i]
                pos = i * cap + h
                pid = buf_pid[pos]
                fi = buf_fi[pos]
                head[i] = (h + 1) % cap
                c = cnt[i] - 1
                cnt[i] = c
                buffered[r] -= 1
                if fi == plen[pid] - 1:  # tail flit frees the VC
                    active[i] = 0
                    ci_w[i] = c > 0
                    ca_w[i] = False
                    claimed[out_slot[i]] = 0
                    if op == LOCAL:
                        deliveries.append((thr[r], pid))
                else:
                    ci_w[i] = False
                    ca_w[i] = c > 0
                if op != LOCAL:
                    osl = out_slot[i]
                    credits[osl] -= 1
                    acc_s.append(acc_tgt[osl])
                    acc_p.append(pid)
                    acc_f.append(fi)
                    acc_r.append(r)
                    acc_c.append(sub)
                    sub += 1
                ret_s.append(i)
                ret_r.append(r)
                ret_c.append(sub)
                sub += 1
            if cur_r >= 0:
                subtot[cur_r] = sub
                gmask_of[cur_r] = gmask

        # deliveries fire inside the ticks, in tick-key order
        if deliveries:
            deliveries.sort()
            for _, pid in deliveries:
                self._deliver(pid, tau)

        # ---- 5. end-of-tick bookkeeping ------------------------------
        # self-wake fires iff flits remain buffered at tick end or the
        # tick granted >= 2 flits (what work_left reduces to); its key
        # is the tick's own, the minimum possible effective wake
        rr = self._rr
        for r, k in T_items:
            rr[r] = (rr[r] + 1) % SPR
            if buffered[r] > 0:
                best_wake[r] = k
            else:
                gm = gmask_of[r]
                if gm & (gm - 1):  # two or more output ports granted
                    best_wake[r] = k

        # ---- 6. post-tick arrivals (wakes already registered) --------
        for s, pid, fi in post_acc:
            pos = s * cap + (head[s] + cnt[s]) % cap
            buf_pid[pos] = pid
            buf_fi[pos] = fi
            cnt[s] += 1
            buffered[router_of[s]] += 1
            a = active[s]
            ci_w[s] = not a
            ca_w[s] = a
        for cs in post_cred:
            credits[cs] += 1
        if post_inj:
            wakes = []
            for event in post_inj:
                self._run_inject(event, tau, wakes)
            for node, own in wakes:
                t = thr[node]
                if (t == _NO_TICK or own >= t) \
                        and thr_next[node] == _NO_TICK:
                    bw = bwget(node)
                    if bw is None or own < bw:
                        best_wake[node] = own
        self._in_step = False
        # handler-synchronous sends observed mid-step (co-sim only)
        if self._deferred_sends:
            pending = self._deferred_sends
            self._deferred_sends = []
            wakes = []
            for packet in pending:
                self._iqueue[packet.src].append(packet)
                own = base_key + _LATE_OFF + self._late_seq
                self._late_seq += 1
                self._try_inject(packet.src, own, wakes)
            for node, own in wakes:
                # late keys exceed every tick key: effective unless a
                # tick is already pending next cycle (pre-late wake)
                if thr_next[node] == _NO_TICK:
                    bw = bwget(node)
                    if bw is None or own < bw:
                        best_wake[node] = own

        # ---- 7. rank this cycle's appenders; materialize keys --------
        # only ticks and winning wakes append events to future buckets,
        # so dense ranks over them (in key order) reproduce the kernel's
        # append order; gaps from silent ticks don't matter
        if T_items or best_wake:
            # encode the router in the tuple's tiebreak slot: ticks as
            # +r, external-wake winners as ~r (keys never tie, so the
            # second element only disambiguates same-key impossibles)
            ranked = [(k, r) for r, k in T_items]
            for r, own in best_wake.items():
                if own < base_key and own != thr[r]:
                    ranked.append((own, ~r))
            ranked.sort()
            tick_base = self._tick_base
            ext_base = self._ext_base
            for rank, (_own, r_enc) in enumerate(ranked):
                child = base_key + (rank << _SUB_BITS)
                if r_enc >= 0:
                    tick_base[r_enc] = child
                else:
                    ext_base[~r_enc] = child

            # next cycle's ticks first: together with the pre-late
            # kernel-send ticks already recorded in thr_next, the wake
            # winners fully determine them, and the fused arrival
            # classification below needs them final.  Post-late co-sim
            # sends only add keys above _LATE_OFF afterwards.
            if best_wake:
                ticks_next = self._bucket(tau + 1).ticks
                for r, own in best_wake.items():
                    if own >= base_key:       # late/deferred injection
                        child = own
                    elif own == thr[r]:       # end-of-tick self-wake
                        child = tick_base[r] + subtot[r]
                    else:                     # external arrival's wake
                        child = ext_base[r]
                    ticks_next[r] = child
                    thr_next[r] = child

            if acc_s or ret_s:
                nb = self._bucket(tau + 1)
                wmin = nb.wake_min
                wmget = wmin.get
                post_app = nb.post_acc.append
                for s, pid, fi, r, c in zip(acc_s, acc_p, acc_f,
                                            acc_r, acc_c):
                    k = tick_base[r] + c
                    dr = router_of[s]
                    t = thr_next[dr]
                    if k < t:
                        pos = s * cap + (head[s] + cnt[s]) % cap
                        buf_pid[pos] = pid
                        buf_fi[pos] = fi
                        cnt[s] += 1
                        buffered[dr] += 1
                        a = active[s]
                        ci_w[s] = not a
                        ca_w[s] = a
                        if t == _NO_TICK:
                            w = wmget(dr)
                            if w is None or k < w:
                                wmin[dr] = k
                    else:
                        post_app((s, pid, fi))
                        w = wmget(dr)
                        if w is None or k < w:
                            wmin[dr] = k
                # freed input slots credit upstream next cycle; LOCAL
                # input ports re-enter the injection path instead
                sidx = self._sidx
                ret_cslot = self._ret_cslot
                inj_app = nb.inj.append
                cred_app = nb.post_cred.append
                n_lcred = 0
                for i, r, c in zip(ret_s, ret_r, ret_c):
                    k = tick_base[r] + c
                    if sidx[i] < V:  # LOCAL is port 0
                        inj_app(("lcred", k, router_of[i]))
                        n_lcred += 1
                        continue
                    cs = ret_cslot[i]
                    dr = router_of[cs]
                    t = thr_next[dr]
                    if k < t:
                        credits[cs] += 1
                        if t == _NO_TICK:
                            w = wmget(dr)
                            if w is None or k < w:
                                wmin[dr] = k
                    else:
                        cred_app(cs)
                        w = wmget(dr)
                        if w is None or k < w:
                            wmin[dr] = k
                nb.nev += len(acc_s) + len(ret_s) - n_lcred

            for r in best_wake:
                thr_next[r] = _NO_TICK

        # reset threshold + scratch columns (all-zero-between-steps)
        for r, _k in T_items:
            thr[r] = _NO_TICK
            subtot[r] = 0
            gmask_of[r] = 0


class VectorFlitFabric(Component):
    """Network-interface-compatible wrapper over ``VectorFlitNetwork``.

    Mirrors :class:`~repro.noc.flit_fabric.FlitFabric` (same counters,
    endpoint dispatch, fault-injection site, iNPG refusal) with the
    vectorized engine co-simulated against the kernel.
    """

    #: injection-site fault filter ``(packet, forward) -> consumed``;
    #: rebound by ``repro.faults.FaultInjector.install``.  Like the event
    #: flit fabric, ``inject`` is the only supported site type.
    _fault_inject = None
    #: names this model in structured fault-refusal errors
    fault_model_name = "flit/vector"

    def __init__(self, sim: Simulator, config: NocConfig,
                 priority_arbitration: bool = False,
                 force_python: bool = False):
        super().__init__(sim, "vecflitfabric")
        self.config = config
        self.fabric = VectorFlitNetwork(
            config, sim=sim, on_delivery=self._on_delivery,
            force_python=force_python,
        )
        self.mesh: Mesh = self.fabric.mesh
        self.priority_arbitration = priority_arbitration
        self._endpoints: Dict[int, Callable[[Packet], None]] = {}
        self.packets_injected = 0
        self.packets_delivered = 0
        self.packets_consumed = 0
        #: packets consumed by fault injection (never entered the fabric)
        self.packets_dropped = 0
        self.total_latency = 0
        #: kept for interface parity with Network
        self.memsys = None
        self.routers: Dict[int, object] = {}

    # ------------------------------------------------------------------
    def register_endpoint(self, node: int,
                          handler: Callable[[Packet], None]) -> None:
        if node in self._endpoints:
            raise ValueError(f"endpoint for node {node} already registered")
        self._endpoints[node] = handler

    def send(
        self,
        src: int,
        dst: int,
        payload: object,
        size_flits: int = 1,
        priority: int = 0,
        origin: Optional[int] = None,
    ) -> Packet:
        """Inject a coherence message as a flit-level packet."""
        shadow = Packet(
            src=src, dst=dst, payload=payload, size_flits=size_flits,
            priority=priority, origin=origin if origin is not None else src,
        )
        shadow.injected_cycle = self.now
        self.packets_injected += 1
        fi = self._fault_inject
        if fi is not None:
            if not fi(shadow, self._inject):
                self._inject(shadow)
            return shadow
        self.fabric.send(src, dst, size_flits, payload=shadow)
        return shadow

    def _inject(self, shadow: Packet) -> None:
        """Enter the fabric (faulted continuation — ``dst`` may have been
        corrupted, so re-read it from the shadow packet)."""
        self.fabric.send(shadow.src, shadow.dst, shadow.size_flits,
                         payload=shadow)

    def _on_delivery(self, flit_packet: VectorFlitPacket) -> None:
        shadow: Packet = flit_packet.payload
        shadow.delivered_cycle = self.now
        self.packets_delivered += 1
        self.total_latency += shadow.latency
        handler = self._endpoints.get(shadow.dst)
        if handler is None:
            raise RuntimeError(f"no endpoint registered at node {shadow.dst}")
        handler(shadow)

    # ------------------------------------------------------------------
    # interface parity
    # ------------------------------------------------------------------
    def reinject(self, router_node: int, packet: Packet) -> None:
        raise RuntimeError(
            "iNPG (in-network packet generation) requires the packet-level "
            "network model; disable flit_level or iNPG"
        )

    def consume(self, packet: Packet) -> None:  # pragma: no cover
        self.packets_consumed += 1

    def big_router_nodes(self) -> list:
        return []

    @property
    def mean_latency(self) -> float:
        if self.packets_delivered == 0:
            return 0.0
        return self.total_latency / self.packets_delivered

    @property
    def in_flight(self) -> int:
        return (self.packets_injected - self.packets_delivered
                - self.packets_dropped)


def make_flit_network(sim: Simulator, config: NocConfig, engine: str):
    """Engine-axis factory: the standalone flit network for ``engine``.

    Returns a :class:`~repro.noc.flitsim.FlitNetwork` for ``"event"``, a
    kernel-attached :class:`VectorFlitNetwork` for ``"vector"``, or a
    :class:`~repro.noc.shardflit.ShardedFlitNetwork` for ``"sharded"``.
    A multi-shard config forced onto a single-process engine is refused
    with a structured error rather than silently run on one process.
    """
    shards = getattr(config, "shards", 1)
    if shards > 1 and engine in ("event", "vector"):
        from ..errors import ShardConfigError

        raise ShardConfigError(
            f"shards={shards} requires the sharded flit engine; the "
            f"{engine!r} engine advances the whole mesh in one process",
            engine=engine,
            shards=shards,
        )
    if engine == "vector":
        return VectorFlitNetwork(config, sim=sim)
    if engine == "event":
        from .flitsim import FlitNetwork

        return FlitNetwork(sim, config)
    if engine == "sharded":
        from .shardflit import ShardedFlitNetwork

        return ShardedFlitNetwork(config, sim=sim)
    raise ValueError(f"unknown flit engine: {engine!r}")
