"""``repro.obs``: zero-cost-when-disabled observability for the simulator.

Three pieces (see DESIGN.md §9):

* a hierarchical counters/gauges :class:`~repro.obs.registry.Registry`
  that components register into at wire-up time — the hot paths keep
  maintaining their plain integer attributes and the registry reads them
  lazily at snapshot time;
* a ring-buffered structured :class:`~repro.obs.tracer.Tracer` fed by
  guarded emitters at the interesting edges (lock acquire / release /
  handoff, GetX / Inv / InvAck send / receive, barrier-table setup / hit /
  TTL expiry, early-Inv generation, packet inject / eject, thread phase
  transitions, OS sleep / wake);
* exporters (:mod:`repro.obs.export`): Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto, a per-lock contention timeline, and
  counter dumps.

The cost model: every instrumented component carries a class-level
``_trace = None``.  :meth:`Observation.attach` rebinds it (once, at
wiring) to the tracer's ``emit``; the per-event call sites are guarded
(``if self._trace is not None: ...``) so a disabled run pays one
attribute load and ``None`` test per traced edge — nothing else.  The
golden determinism tests pin that a traced run is bit-exact with an
untraced one, and the perf-smoke gate pins the observability-off
overhead.

Usage::

    from repro import api

    with api.trace(out="t.json") as obs:
        result = api.simulate(config, workload, "qsl", observe=obs)
    print(obs.contention_report())
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .export import (
    chrome_trace_events,
    contention_report,
    counters_report,
    to_chrome_trace,
    write_chrome_trace,
)
from .registry import Counter, Registry
from .tracer import DEFAULT_CAPACITY, TraceRecord, Tracer

#: bump when the Observation payload encoding changes shape
OBS_SCHEMA_VERSION = 1

#: module-level master switch: when False, :meth:`Observation.attach`
#: is a no-op and every component keeps its no-cost ``_trace = None``
#: binding.  This is the "compiled out" default for code paths that
#: never construct an Observation; flipping it off globally also lets
#: perf harnesses guarantee untouched hot paths.
_ENABLED = True


def enabled() -> bool:
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable observability wiring; returns old value."""
    global _ENABLED
    old = _ENABLED
    _ENABLED = bool(flag)
    return old


class Observation:
    """One run's observability context: a registry plus (optionally) a tracer.

    Create one, pass it to :func:`repro.api.simulate` (or
    ``ManyCoreSystem(..., observe=...)``); after the run it holds the
    counters snapshot, the trace ring, and export helpers.
    """

    def __init__(
        self,
        trace: bool = True,
        trace_capacity: int = DEFAULT_CAPACITY,
        label: str = "run",
    ):
        self.registry = Registry()
        self.trace_enabled = trace
        self.trace_capacity = trace_capacity
        self.label = label
        self.tracer: Optional[Tracer] = None
        self.system = None
        self.result = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, system) -> "Observation":
        """Wire this observation into a built :class:`ManyCoreSystem`.

        Called once by the system's constructor; registers every
        component's gauges and (when tracing) rebinds their ``_trace``
        emitters.  Attaching is the only moment observability touches
        the components — the simulation itself runs unmodified.
        """
        if not _ENABLED:
            return self
        if self.system is not None:
            raise ValueError("Observation is already attached to a system")
        self.system = system
        sim = system.sim
        emit = None
        if self.trace_enabled:
            self.tracer = Tracer(sim, capacity=self.trace_capacity)
            emit = self.tracer.emit

        reg = self.registry
        reg.gauges(
            "sim",
            events_processed=lambda: sim.events_processed,
            compactions=lambda: sim.compactions,
            live_pending_events=lambda: sim.live_pending_events,
        )

        network = system.network
        reg.gauges(
            "noc",
            packets_injected=lambda: network.packets_injected,
            packets_delivered=lambda: network.packets_delivered,
            mean_latency=lambda: network.mean_latency,
        )
        if emit is not None:
            network._trace = emit
        # sharded flit fabric: fold the per-shard worker counters into
        # the registry.  The gauges sample lazily, so a snapshot taken
        # at an epoch boundary (or after the run) sees the counters the
        # workers shipped back at their last sync point.
        shard_counters = getattr(network, "shard_counters", None)
        if shard_counters is not None:

            def _shard_field(index, field):
                def sample(net=network, i=index, f=field):
                    value = net.shard_counters[i][f]
                    # boundary counters are (up, down) pairs; gauges
                    # are scalar, so fold the directions together
                    return sum(value) if isinstance(value, tuple) else value

                return sample

            nshards = len(shard_counters)
            for i in range(nshards):
                reg.gauges(
                    f"noc/shard{i}",
                    events=_shard_field(i, "events"),
                    boundary_flits=_shard_field(i, "boundary_flits"),
                    boundary_credits=_shard_field(i, "boundary_credits"),
                )
        routers = getattr(network, "routers", None)
        if routers is not None:
            reg.gauges(
                "noc",
                packets_consumed=lambda: network.packets_consumed,
                total_hops=lambda: network.total_hops,
                peak_queue_depth=lambda: max(
                    (p.peak_queue_depth for r in network.routers.values()
                     for p in r.ports.values()), default=0),
                total_wait_cycles=lambda: sum(
                    p.total_wait_cycles for r in network.routers.values()
                    for p in r.ports.values()),
            )
            for node, router in routers.items():
                if not router.is_big:
                    continue
                table = router.table
                reg.gauges(
                    f"inpg/big{node}",
                    packets_seen=lambda r=router: r.packets_seen,
                    invs_generated=lambda r=router: r.invs_generated,
                    getx_stopped=lambda r=router: r.getx_stopped,
                    acks_forwarded=lambda r=router: r.acks_forwarded,
                    barriers_created=lambda t=table: t.barriers_created,
                    barriers_expired=lambda t=table: t.barriers_expired,
                    ei_created=lambda t=table: t.ei_created,
                )
                if emit is not None:
                    router._trace = emit
                    table._trace = emit
                    table._component = f"big/{node}"

        memsys = system.memsys
        stats = memsys.stats
        # the active protocol names the namespace so counter paths in
        # traces/campaign JSON are self-describing across ablations
        proto = memsys.config.protocol
        reg.gauges(
            f"coherence/{proto}",
            early_invs_generated=lambda: stats.early_invs_generated,
            getx_stopped=lambda: stats.getx_stopped,
            barrier_table_overflows=lambda: stats.barrier_table_overflows,
            early_acks_consumed_before_txn=(
                lambda: stats.early_acks_consumed_before_txn),
        )
        from ..coherence.messages import MessageType

        for mtype in MessageType:
            reg.gauge(
                f"coherence/{proto}/msg/{mtype.value}",
                lambda mt=mtype.value: stats.msg_counts.get(mt, 0),
            )
        if emit is not None:
            memsys._trace = emit

        os_model = system.os_model
        reg.gauges(
            "os",
            sleeps=lambda: os_model.sleeps,
            wakeups=lambda: os_model.wakeups,
            self_wakeups=lambda: os_model.self_wakeups,
        )
        if emit is not None:
            os_model._trace = emit

        for lock in system.locks:
            reg.gauges(
                f"locks/lock{lock.lock_id}",
                acquisitions=lambda l=lock: l.acquisitions,
                releases=lambda l=lock: l.releases,
            )
            if emit is not None:
                lock._trace = emit

        if emit is not None:
            for thread in system.threads:
                thread._trace = emit
        reg.gauge(
            "threads/done",
            lambda: sum(1 for t in system.threads if t.done),
        )

        faults = getattr(system, "faults", None)
        if faults is not None:
            reg.gauges(
                "faults",
                dropped=lambda: faults.dropped,
                duplicated=lambda: faults.duplicated,
                corrupted=lambda: faults.corrupted,
                delayed=lambda: faults.delayed,
            )
            if emit is not None:
                faults._trace = emit
        watchdog = getattr(system, "watchdog", None)
        if watchdog is not None:
            reg.gauge("faults/watchdog_ticks", lambda: watchdog.ticks)
        return self

    @property
    def attached(self) -> bool:
        return self.system is not None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """A flat snapshot of every registered counter/gauge."""
        return self.registry.snapshot()

    def records(self, component=None, event=None) -> List[TraceRecord]:
        if self.tracer is None:
            return []
        return self.tracer.records(component=component, event=event)

    def payload(self) -> Dict:
        """JSON-safe encoding folded into ``RunResult.obs`` (and thus the
        serialize round trip / exec cache)."""
        out: Dict = {
            "schema": OBS_SCHEMA_VERSION,
            "label": self.label,
            "counters": self.counters(),
        }
        if self.tracer is not None:
            out["trace"] = self.tracer.to_payload()
            out["trace_emitted"] = self.tracer.emitted
            out["trace_dropped"] = self.tracer.dropped
            out["trace_capacity"] = self.tracer.capacity
        return out

    # ------------------------------------------------------------------
    # Exporting
    # ------------------------------------------------------------------
    def chrome_run(self):
        """This run as a ``(label, records, intervals)`` export triple."""
        intervals = (
            self.result.timeline.intervals if self.result is not None else ()
        )
        return (self.label, self.records(), intervals)

    def write_chrome_trace(self, path, metadata: Optional[Dict] = None):
        """Write this run as a Chrome trace-event JSON file."""
        return write_chrome_trace(path, [self.chrome_run()],
                                  metadata=metadata)

    def contention_report(self) -> str:
        return contention_report(self.records())

    def counters_report(self) -> str:
        return counters_report(self.counters())


__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "OBS_SCHEMA_VERSION",
    "Observation",
    "Registry",
    "TraceRecord",
    "Tracer",
    "chrome_trace_events",
    "contention_report",
    "counters_report",
    "enabled",
    "set_enabled",
    "to_chrome_trace",
    "write_chrome_trace",
]
