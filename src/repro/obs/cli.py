"""``inpg-trace``: run simulations under observation and export traces.

The dedicated front door to :mod:`repro.obs`: runs one or more
benchmarks inline (uncached, observed), writes a combined Chrome
trace-event JSON file viewable in Perfetto / ``chrome://tracing``, and
prints the per-lock contention report.

Examples::

    inpg-trace kdtree --mechanism inpg
    inpg-trace kdtree --mechanism original --mechanism inpg -o compare.json
    inpg-trace nab --primitive tas --scale 0.25 --counters
    inpg-trace freqmine --events  # event-type histogram, no file
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import List, Optional

from ..config import MECHANISMS
from ..exec import RunSpec
from ..exec.executor import execute_spec
from ..locks.factory import PRIMITIVES, canonical_primitive
from . import DEFAULT_CAPACITY, Observation
from .export import write_chrome_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="inpg-trace",
        description="Run benchmarks under observation and export a "
                    "combined Chrome trace-event JSON (Perfetto).",
    )
    parser.add_argument(
        "benchmarks", nargs="+", metavar="BENCHMARK",
        help="benchmark name(s); each becomes one process group in the "
             "combined trace",
    )
    parser.add_argument(
        "--mechanism", action="append", default=None,
        choices=list(MECHANISMS), dest="mechanisms",
        help="mechanism(s) to run each benchmark under (repeatable; "
             "default: inpg)",
    )
    parser.add_argument("--primitive", default="qsl",
                        help=f"one of {PRIMITIVES} (or paper alias TTL)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("-o", "--out", default="trace.json", metavar="PATH",
                        help="output trace file (default trace.json)")
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY,
                        help="trace ring capacity in records "
                             f"(default {DEFAULT_CAPACITY:,}; the ring "
                             "keeps the newest records)")
    parser.add_argument("--counters", action="store_true",
                        help="also print the full counters report per run")
    parser.add_argument("--events", action="store_true",
                        help="also print an event-type histogram per run")
    parser.add_argument("--no-report", action="store_true",
                        help="skip the per-lock contention report")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    primitive = canonical_primitive(args.primitive)
    mechanisms = args.mechanisms or ["inpg"]

    runs = []
    for benchmark in args.benchmarks:
        for mechanism in mechanisms:
            spec = RunSpec(
                benchmark=benchmark, mechanism=mechanism,
                primitive=primitive, scale=args.scale, seed=args.seed,
            )
            observe = Observation(
                trace_capacity=args.capacity, label=spec.label()
            )
            result = execute_spec(spec, observe=observe)
            print(f"{spec.label()}: roi={result.roi_cycles:,} cycles, "
                  f"{len(observe.records()):,} trace records "
                  f"({observe.tracer.dropped:,} dropped)")
            if not args.no_report:
                print()
                print(observe.contention_report())
                print()
            if args.events:
                histogram = Counter(r[2] for r in observe.records())
                for event, count in sorted(histogram.items()):
                    print(f"  {event:<16} {count:>10,}")
                print()
            if args.counters:
                print(observe.counters_report())
                print()
            runs.append(observe.chrome_run())

    write_chrome_trace(args.out, runs)
    print(f"trace: {len(runs)} run(s) -> {args.out} "
          "(open in https://ui.perfetto.dev or chrome://tracing)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
