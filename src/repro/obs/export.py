"""Exporters: Chrome trace-event JSON, contention timelines, counter dumps.

The Chrome exporter emits the `Trace Event Format`_ consumed by
``chrome://tracing`` and Perfetto's legacy-JSON importer: one *process*
("track group") for the cores, one for the iNPG big routers and one for
system components (locks, OS, directories), with

* thread phase intervals (parallel / coh / cse) as complete (``"X"``)
  slices on the core tracks, taken from the run's :class:`Timeline`;
* every structured trace record as a thread-scoped instant (``"i"``)
  event on its component's track.

Timestamps are simulator cycles reported as microseconds (1 cycle = 1 us
in the viewer; only relative scale matters).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .tracer import TraceRecord

#: process ids of the three track groups (per exported run)
PID_CORES = 0
PID_BIG_ROUTERS = 1
PID_SYSTEM = 2
#: pid stride between runs in a combined export
PID_STRIDE = 3


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------
def _track_of(component: str) -> Tuple[int, Optional[int], str]:
    """Map a component name to (pid offset, tid or None, track label)."""
    kind, _, index = component.partition("/")
    if kind == "core" and index:
        return PID_CORES, int(index), component
    if kind == "big" and index:
        return PID_BIG_ROUTERS, int(index), f"big router {index}"
    return PID_SYSTEM, None, component


def chrome_trace_events(
    records: Sequence[TraceRecord] = (),
    intervals: Sequence = (),
    label: str = "run",
    pid_base: int = 0,
) -> List[Dict]:
    """Build the ``traceEvents`` list for one run.

    ``intervals`` is an iterable of objects (or 4-tuples) with
    ``thread`` / ``phase`` / ``start`` / ``end`` — the run timeline's
    phase intervals.  ``pid_base`` offsets the process ids so several
    runs can share one combined trace file.
    """
    events: List[Dict] = []
    suffix = f" [{label}]" if label else ""
    seen_pids = {}

    def process(offset: int, name: str) -> int:
        pid = pid_base + offset
        if pid not in seen_pids:
            seen_pids[pid] = True
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": name + suffix},
            })
            events.append({
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "tid": 0, "args": {"sort_index": pid},
            })
        return pid

    # Phase slices on core tracks.
    for iv in intervals:
        if isinstance(iv, tuple):
            thread, phase, start, end = iv
        else:
            thread, phase, start, end = iv.thread, iv.phase, iv.start, iv.end
        pid = process(PID_CORES, "cores")
        events.append({
            "ph": "X", "name": phase, "cat": "phase",
            "ts": start, "dur": max(0, end - start),
            "pid": pid, "tid": thread,
        })

    # Instant events from the structured tracer.
    system_tids: Dict[str, int] = {}
    for cycle, component, event, fields in records:
        offset, tid, track = _track_of(component)
        if offset == PID_CORES:
            pid = process(PID_CORES, "cores")
        elif offset == PID_BIG_ROUTERS:
            pid = process(PID_BIG_ROUTERS, "iNPG big routers")
        else:
            pid = process(PID_SYSTEM, "system")
        if tid is None:
            if component not in system_tids:
                system_tids[component] = len(system_tids)
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": system_tids[component],
                    "args": {"name": track},
                })
            tid = system_tids[component]
        events.append({
            "ph": "i", "s": "t", "name": event,
            "cat": event.split(".", 1)[0],
            "ts": cycle, "pid": pid, "tid": tid,
            "args": dict(fields),
        })
    return events


def to_chrome_trace(
    runs: Sequence[Tuple[str, Sequence[TraceRecord], Sequence]],
    metadata: Optional[Dict] = None,
) -> Dict:
    """A complete Chrome trace document for one or more runs.

    ``runs`` is a sequence of ``(label, records, intervals)`` triples;
    each run gets its own block of process ids.
    """
    events: List[Dict] = []
    for index, (label, records, intervals) in enumerate(runs):
        events.extend(chrome_trace_events(
            records=records, intervals=intervals, label=label,
            pid_base=index * PID_STRIDE,
        ))
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "time_unit": "cycle"},
    }
    if metadata:
        doc["otherData"].update(metadata)
    return doc


def write_chrome_trace(path, runs, metadata=None) -> Dict:
    """Write :func:`to_chrome_trace` output as JSON; returns the doc."""
    doc = to_chrome_trace(runs, metadata=metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# Per-lock contention timeline report
# ----------------------------------------------------------------------
def contention_report(records: Iterable[TraceRecord]) -> str:
    """A per-lock text report of acquisitions, holds and handoffs.

    Built purely from ``lock.*`` trace records, so it works on live
    tracer output, deserialized cache payloads, and records filtered out
    of a combined trace alike.
    """
    acquires: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
    holds: Dict[str, List[int]] = defaultdict(list)
    handoffs: Dict[str, int] = defaultdict(int)
    handoff_gaps: Dict[str, List[int]] = defaultdict(list)
    open_hold: Dict[str, Tuple[int, int]] = {}

    for cycle, component, event, fields in records:
        if not event.startswith("lock."):
            continue
        if event == "lock.acquire":
            acquires[component].append((cycle, fields.get("core", -1)))
            open_hold[component] = (cycle, fields.get("core", -1))
        elif event == "lock.release":
            start = open_hold.pop(component, None)
            if start is not None:
                holds[component].append(cycle - start[0])
        elif event == "lock.handoff":
            handoffs[component] += 1
            gap = fields.get("gap")
            if gap is not None:
                handoff_gaps[component].append(gap)

    if not acquires:
        return "no lock events in trace"

    lines = ["--- lock contention timeline ---"]
    header = (f"{'lock':<10} {'acquires':>8} {'handoffs':>8} "
              f"{'mean hold':>10} {'max hold':>9} {'mean handoff gap':>17}")
    lines.append(header)
    lines.append("-" * len(header))
    for component in sorted(acquires):
        hold_list = holds.get(component, [])
        gaps = handoff_gaps.get(component, [])
        mean_hold = sum(hold_list) / len(hold_list) if hold_list else 0.0
        max_hold = max(hold_list) if hold_list else 0
        mean_gap = sum(gaps) / len(gaps) if gaps else 0.0
        lines.append(
            f"{component:<10} {len(acquires[component]):>8} "
            f"{handoffs.get(component, 0):>8} {mean_hold:>10.1f} "
            f"{max_hold:>9} {mean_gap:>17.1f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Counters dump
# ----------------------------------------------------------------------
def counters_report(snapshot: Dict[str, float]) -> str:
    """Render a registry snapshot as aligned ``path value`` lines."""
    if not snapshot:
        return "no counters registered"
    width = max(len(path) for path in snapshot)
    lines = ["--- counters ---"]
    for path in sorted(snapshot):
        value = snapshot[path]
        rendered = f"{value:g}" if value != int(value) else f"{int(value):,}"
        lines.append(f"{path:<{width}}  {rendered}")
    return "\n".join(lines)
