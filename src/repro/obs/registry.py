"""Hierarchical counters/gauges registry (the metrics half of ``repro.obs``).

Components register what they already measure — the plain integer
attributes the hot paths maintain (``Packet.hops`` totals, the kernel's
compaction count, port queue depths) — under slash-separated paths at
wire-up time.  Registration is the *only* cost: the hot paths keep
bumping ordinary attributes, and the registry reads them lazily when a
snapshot is taken (end of run, ``diagnose()``, exporters).

Two kinds of entries:

* a :class:`Counter` — a named integer owned by the registry, for new
  metrics that have no pre-existing attribute home;
* a *gauge* — a zero-argument callable (usually ``lambda: obj.attr``)
  registered over an existing attribute, so the owning component's hot
  path stays untouched.

Paths are hierarchical (``"noc/router5/packets_seen"``) purely by
convention: :meth:`Registry.snapshot` flattens everything into one
``{path: number}`` dict, and :meth:`Registry.subtree` filters by prefix.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, Union

#: gauge sources are zero-argument callables returning a number
GaugeFn = Callable[[], Union[int, float]]


class Counter:
    """A registry-owned integer counter (cheap enough for warm paths)."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def inc(self) -> None:
        self.value += 1

    def add(self, amount: int) -> None:
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Registry:
    """One simulation's namespace of counters and gauges."""

    def __init__(self) -> None:
        self._entries: Dict[str, Union[Counter, GaugeFn]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, path: str, initial: int = 0) -> Counter:
        """Create (or fetch) the registry-owned counter at ``path``."""
        entry = self._entries.get(path)
        if entry is not None:
            if not isinstance(entry, Counter):
                raise ValueError(f"{path!r} is registered as a gauge")
            return entry
        counter = Counter(initial)
        self._entries[path] = counter
        return counter

    def inc(self, path: str, amount: int = 1) -> None:
        """Bump the registry-owned counter at ``path`` (creating it).

        Convenience for long-lived host-side registries (the serve
        layer's service stats) where call sites don't hold the
        :class:`Counter` object.
        """
        self.counter(path).add(amount)

    def gauge(self, path: str, fn: GaugeFn) -> None:
        """Register a read-through gauge over an existing attribute."""
        if path in self._entries:
            raise ValueError(f"{path!r} is already registered")
        self._entries[path] = fn

    def gauges(self, prefix: str, **fns: GaugeFn) -> None:
        """Register several gauges under one component prefix."""
        for name, fn in fns.items():
            self.gauge(f"{prefix}/{name}", fn)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self, path: str) -> Union[int, float]:
        entry = self._entries[path]
        return entry.value if isinstance(entry, Counter) else entry()

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def items(self) -> Iterator[Tuple[str, Union[int, float]]]:
        for path in sorted(self._entries):
            yield path, self.read(path)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, float]:
        """Flatten every entry (optionally under ``prefix``) to a dict.

        Gauge callables that raise are skipped rather than poisoning the
        whole snapshot (a component may have been torn down).
        """
        out: Dict[str, float] = {}
        for path in sorted(self._entries):
            if prefix is not None and not path.startswith(prefix):
                continue
            try:
                out[path] = float(self.read(path))
            except Exception:
                continue
        return out

    def subtree(self, prefix: str) -> Dict[str, float]:
        """Snapshot restricted to paths under ``prefix`` (inclusive)."""
        if not prefix.endswith("/"):
            prefix += "/"
        return self.snapshot(prefix=prefix)
