"""Ring-buffered structured event tracer (the timeline half of ``repro.obs``).

A trace record is one tuple ``(cycle, component, event, fields)``:

* ``cycle`` — the simulator cycle the event fired at;
* ``component`` — a slash-qualified track name (``"core/5"``,
  ``"big/12"``, ``"lock/0"``, ``"os"``);
* ``event`` — a dotted event-taxonomy name (``"lock.handoff"``,
  ``"inpg.early_inv"``, ``"net.inject"``, ...; see DESIGN.md §9);
* ``fields`` — a small dict of JSON-safe values (ints / strings).

The buffer is a bounded ``deque``: when a run emits more records than
``capacity``, the *oldest* are dropped (``dropped`` counts them), so a
trace always holds the tail of the run — the part with the ROI's end
state — without ever growing unbounded.

Emitting never touches the event queue, the RNG, or any component state,
so a traced run is bit-exact with an untraced one (pinned by the golden
determinism tests).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim.kernel import Simulator

#: one trace record: (cycle, component, event, fields)
TraceRecord = Tuple[int, str, str, Dict]

#: default ring capacity (records); ~a few MB of tuples at worst
DEFAULT_CAPACITY = 262_144


class Tracer:
    """Collects structured events from instrumented components."""

    def __init__(self, sim: Simulator, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self.emitted = 0

    # ------------------------------------------------------------------
    def emit(self, component: str, event: str, **fields) -> None:
        """Record one event at the current simulator cycle.

        This is the bound method components hold as their ``_trace``
        emitter; when tracing is off they hold ``None`` instead and the
        guarded call sites skip even the argument construction.
        """
        self.emitted += 1
        self._ring.append((self.sim.cycle, component, event, fields))

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Records pushed out of the ring by newer ones."""
        return self.emitted - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def records(
        self,
        component: Optional[str] = None,
        event: Optional[str] = None,
    ) -> List[TraceRecord]:
        """The buffered records in emission order, optionally filtered by
        exact component and/or event-name prefix."""
        out = []
        for record in self._ring:
            if component is not None and record[1] != component:
                continue
            if event is not None and not record[2].startswith(event):
                continue
            out.append(record)
        return out

    def to_payload(self) -> List[List]:
        """JSON-safe encoding: ``[cycle, component, event, fields]`` rows."""
        return [[c, comp, ev, dict(fields)] for c, comp, ev, fields in self._ring]

    @staticmethod
    def records_from_payload(payload: List[List]) -> List[TraceRecord]:
        """Inverse of :meth:`to_payload` (cache / serialize round trip)."""
        return [(row[0], row[1], row[2], dict(row[3])) for row in payload]
