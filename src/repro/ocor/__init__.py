"""OCOR baseline (Opportunistic Competition Overhead Reduction, ISCA'16)."""

from .priority import spin_priority, wakeup_priority

__all__ = ["spin_priority", "wakeup_priority"]
