"""OCOR priority mapping (Section 5.1 Case 2, Table 1).

OCOR (Opportunistic Competition Overhead Reduction, Yao & Lu ISCA'16) makes
NoC routers prioritize lock request packets by the issuing thread's
*remaining times of retry* (RTR) in its queue-spin-lock spinning phase: the
smaller the RTR — i.e. the closer the thread is to giving up and paying the
expensive sleep/context-switch path — the higher the packet priority.

Table 1 configuration: 128 retries; 9 priority levels; the 8 higher levels
are for spinning-phase requests with each level covering 16 retry values;
the single lowest level is for wakeup (post-sleep) requests.
"""

from __future__ import annotations

from ..config import OcorConfig


def spin_priority(rtr: int, cfg: OcorConfig) -> int:
    """Priority for a spinning-phase lock request with ``rtr`` retries left.

    Returns a level in [1, cfg.priority_levels - 1]; smaller RTR maps to a
    higher level.
    """
    if rtr < 0:
        raise ValueError(f"RTR must be non-negative, got {rtr}")
    spin_levels = cfg.priority_levels - 1
    rtr = min(rtr, cfg.retry_times - 1)
    level_index = min(rtr // cfg.retries_per_level, spin_levels - 1)
    return spin_levels - level_index


def wakeup_priority(cfg: OcorConfig) -> int:
    """Priority for a request from a thread woken out of the sleep phase."""
    return cfg.wakeup_level
