"""Performance benchmarking of the simulation core.

The perf-bench subsystem measures the simulator's own speed (events/sec
and wall time) on four canonical workloads — the bare event kernel, the
packet-level NoC datapath, the flit-level validation model, and a cold
end-to-end ``fig12 --quick`` run — and records the results in a
schema-versioned ``BENCH_core.json`` at the repository root.  That file
seeds the repo's performance trajectory: CI re-measures a pinned subset
and fails on a >30% events/sec regression against the committed numbers
(``scripts/perf_report.py --check``).
"""

from .report import (
    BENCH_SCHEMA,
    DEFAULT_OUTPUT,
    REGRESSION_TOLERANCE,
    check_against,
    run_workloads,
    write_report,
)
from .workloads import WORKLOADS, WorkloadResult

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_OUTPUT",
    "REGRESSION_TOLERANCE",
    "WORKLOADS",
    "WorkloadResult",
    "check_against",
    "run_workloads",
    "write_report",
]
