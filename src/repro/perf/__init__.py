"""Performance benchmarking and profiling of the simulation core.

The perf-bench subsystem measures the simulator's own speed (events/sec
and wall time) on six canonical workloads — the bare event kernel, the
packet-level NoC datapath, the flit-level validation model, a cold
end-to-end ``fig12 --quick`` run, and two coherence-stress shapes
(directory invalidation storms, a single-lock handoff chain) — and
records the results in a schema-versioned ``BENCH_core.json``
(``bench-core/v2``) at the repository root.  That file seeds the repo's
performance trajectory: CI re-measures a pinned subset and fails on a
>30% events/sec regression against the committed numbers
(``scripts/perf_report.py --quick --check``).

``inpg-perf --profile`` additionally runs the selected workloads under
cProfile and writes a per-layer (kernel / noc / coherence / cpu / obs)
attribution plus top-N hotspot report — ``BENCH_profile.json``, schema
``perf-profile/v1`` (:mod:`repro.perf.profiling`).
"""

from .profiling import (
    LAYERS,
    PROFILE_SCHEMA,
    format_layer_table,
    layer_of,
    profile_workload,
    profile_workloads,
    write_profile_report,
)
from .report import (
    BENCH_SCHEMA,
    DEFAULT_OUTPUT,
    REGRESSION_TOLERANCE,
    check_against,
    load_report,
    run_workloads,
    write_report,
)
from .workloads import QUICK_WORKLOADS, WORKLOADS, WorkloadResult

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_OUTPUT",
    "LAYERS",
    "PROFILE_SCHEMA",
    "QUICK_WORKLOADS",
    "REGRESSION_TOLERANCE",
    "WORKLOADS",
    "WorkloadResult",
    "check_against",
    "format_layer_table",
    "layer_of",
    "load_report",
    "profile_workload",
    "profile_workloads",
    "run_workloads",
    "write_profile_report",
    "write_report",
]
