"""cProfile-based per-layer attribution for the tracked perf workloads.

``inpg-perf --profile`` runs each selected workload under :mod:`cProfile`
and reduces the raw stats two ways:

* **per-layer attribution** — every profiled function is assigned to one
  simulator layer by its module path (``repro/sim`` -> kernel, the flit
  fabrics ``repro/noc/flitsim`` + ``repro/noc/vecflit`` +
  ``repro/noc/flit_fabric`` -> noc-flit, the rest of ``repro/noc`` ->
  noc, ``repro/coherence`` + ``repro/inpg`` -> coherence, ``repro/cpu``
  + ``repro/locks`` + ``repro/workloads`` -> cpu, ``repro/obs`` +
  ``repro/stats`` -> obs, everything else -> other); the report sums
  *self* time (tottime) per layer, so the shares add up to the profiled
  wall time instead of double-counting callers.  The flit fabrics get
  their own layer because the packet-level and flit-level datapaths are
  optimized independently (the vector engine vs the event routers) and
  lumping them under ``noc`` hid which one a hotspot belonged to.
* **top-N hotspots** — the functions with the largest self time, with
  call counts and cumulative time, ready to paste into a perf PR.

The result is written as schema-versioned JSON
(:data:`PROFILE_SCHEMA`) next to ``BENCH_core.json`` —
``BENCH_profile.json`` by default.  Profiled runs are *slower* than
plain ones (cProfile hooks every call), so their events/sec numbers are
never written into ``BENCH_core.json``; the two files answer different
questions (how fast / where does it go).
"""

from __future__ import annotations

import cProfile
import json
import pstats
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .workloads import WORKLOADS

#: schema tag written into every profile report
PROFILE_SCHEMA = "perf-profile/v1"
#: default report location, next to BENCH_core.json
DEFAULT_PROFILE_OUTPUT = "BENCH_profile.json"
#: hotspots kept per workload
TOP_N = 15

#: path fragment (under ``src/repro/``) -> layer name; first match wins.
_LAYER_BY_PACKAGE = (
    ("repro/sim/", "kernel"),
    ("repro/noc/shardflit", "noc-shard"),
    ("repro/noc/flitsim", "noc-flit"),
    ("repro/noc/vecflit", "noc-flit"),
    ("repro/noc/flit_fabric", "noc-flit"),
    ("repro/noc/", "noc"),
    ("repro/coherence/", "coherence"),
    ("repro/inpg/", "coherence"),
    ("repro/cpu/", "cpu"),
    ("repro/locks/", "cpu"),
    ("repro/workloads/", "cpu"),
    ("repro/obs/", "obs"),
    ("repro/stats/", "obs"),
)

#: every layer the report always lists (zero-filled when unexercised)
LAYERS = ("kernel", "noc", "noc-flit", "noc-shard", "coherence", "cpu",
          "obs", "other")


def layer_of(filename: str) -> str:
    """Map a profiled function's filename to its simulator layer."""
    normalized = filename.replace("\\", "/")
    for fragment, layer in _LAYER_BY_PACKAGE:
        if fragment in normalized:
            return layer
    return "other"


def _shorten(filename: str) -> str:
    """Repo-relative path for report readability (best effort)."""
    normalized = filename.replace("\\", "/")
    marker = "src/repro/"
    idx = normalized.rfind(marker)
    if idx >= 0:
        return normalized[idx + len("src/"):]
    return normalized.rsplit("/", 1)[-1]


def profile_workload(name: str) -> dict:
    """Run one workload under cProfile; returns its report entry."""
    runner = WORKLOADS.get(name)
    if runner is None:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    result = runner()
    profiler.disable()

    stats = pstats.Stats(profiler)
    layer_self: Dict[str, float] = {layer: 0.0 for layer in LAYERS}
    rows: List[Tuple[float, float, int, str, int, str]] = []
    total_self = 0.0
    for (filename, lineno, funcname), (
        _cc, ncalls, tottime, cumtime, _callers
    ) in stats.stats.items():  # type: ignore[attr-defined]
        total_self += tottime
        layer_self[layer_of(filename)] += tottime
        rows.append((tottime, cumtime, ncalls, filename, lineno, funcname))

    rows.sort(reverse=True)
    hotspots = [
        {
            "function": funcname,
            "file": _shorten(filename),
            "line": lineno,
            "ncalls": ncalls,
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
        }
        for tottime, cumtime, ncalls, filename, lineno, funcname
        in rows[:TOP_N]
    ]
    layers = {
        layer: {
            "self_s": round(layer_self[layer], 4),
            "share": round(layer_self[layer] / total_self, 4)
            if total_self > 0 else 0.0,
        }
        for layer in LAYERS
    }
    return {
        "wall_s": round(result.wall_s, 4),
        "events": result.events,
        "cycles": result.cycles,
        "profiled_self_s": round(total_self, 4),
        "layers": layers,
        "hotspots": hotspots,
    }


def profile_workloads(names: Iterable[str]) -> dict:
    """Profile the named workloads into one report dict."""
    report = {
        "schema": PROFILE_SCHEMA,
        "top_n": TOP_N,
        "workloads": {},
    }
    for name in names:
        print(f"  profiling {name} ...")
        entry = profile_workload(name)
        report["workloads"][name] = entry
        top = entry["hotspots"][0] if entry["hotspots"] else None
        shares = ", ".join(
            f"{layer}={entry['layers'][layer]['share']:.0%}"
            for layer in LAYERS
            if entry["layers"][layer]["self_s"] > 0
        )
        print(f"    layers: {shares}")
        if top is not None:
            print(
                f"    hottest: {top['function']} "
                f"({top['file']}:{top['line']}) {top['tottime_s']}s"
            )
    return report


def write_profile_report(report: dict, path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def format_layer_table(report: dict) -> str:
    """Render the per-layer attribution as an aligned text table."""
    lines = []
    header = f"{'workload':<24}" + "".join(
        f"{layer:>12}" for layer in LAYERS
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, entry in sorted(report.get("workloads", {}).items()):
        layers = entry.get("layers", {})
        row = f"{name:<24}" + "".join(
            f"{layers.get(layer, {}).get('share', 0.0):>11.1%} "
            for layer in LAYERS
        )
        lines.append(row.rstrip())
    return "\n".join(lines)
