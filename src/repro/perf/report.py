"""Measure the core workloads and maintain ``BENCH_core.json``.

The report file is schema-versioned (``bench-core/v2``)::

    {
      "schema": "bench-core/v2",
      "workloads": { "<name>": {wall_s, events, cycles, events_per_sec} },
      "baselines": {
        "<key>": { "label": "<provenance>",
                   "workloads": { "<name>": {...} } },
        ...
      },
      "speedup":   { "<name>": { "<baseline key>": <ratio>, ... } }
    }

``workloads`` holds the most recent measurement; every entry under
``baselines`` is kept verbatim across re-measurements, so the file
documents the whole optimization history (the PR 1 seed numbers AND the
PR 2 hot-path numbers survive the PR 3 refresh).  ``--snapshot-baseline
KEY`` freezes the *committed* ``workloads`` numbers as a new named
baseline before the fresh measurement replaces them.  A ``bench-core/v1``
file (single ``baseline`` mapping) is migrated transparently on load.

Each baseline carries an integer ``order`` (0 = oldest); snapshots get
the next free slot.  Speedups are always *rendered* oldest-first by that
field — the JSON file itself is written with sorted keys, so key order
in the file is alphabetical and deliberately carries no meaning.

``--check`` re-runs a subset and fails when events/sec drops more than
:data:`REGRESSION_TOLERANCE` below the committed ``workloads`` numbers —
the CI perf-smoke gate.

``--profile`` additionally runs each selected workload under cProfile
and writes a per-layer attribution + top-N hotspot report
(:mod:`repro.perf.profiling`, schema ``perf-profile/v1``) next to the
bench file — ``BENCH_profile.json`` by default.  Profiled runs are never
used for the gate numbers (cProfile skews them).

``--trace-out PATH`` additionally captures one *observed* reference run
of the end-to-end system the ``fig12_quick`` workload bottoms out in and
writes it as Chrome trace-event JSON, so a perf investigation has a
structured timeline next to the throughput numbers.  The measurements
themselves always run unobserved — tracing never skews the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from ..cli import add_flit_engine_argument
from .workloads import (
    QUICK_WORKLOADS,
    WORKLOADS,
    WorkloadResult,
    with_flit_engine,
)

#: schema tag written into every report file
BENCH_SCHEMA = "bench-core/v2"
#: previous schema, migrated transparently on load
BENCH_SCHEMA_V1 = "bench-core/v1"
#: default report location: the repository root
DEFAULT_OUTPUT = "BENCH_core.json"
#: --check fails when current events/sec < (1 - tolerance) * committed
REGRESSION_TOLERANCE = 0.30


def run_workloads(
    names: Iterable[str],
    registry: Optional[Dict[str, Callable[[], WorkloadResult]]] = None,
) -> Dict[str, WorkloadResult]:
    """Execute the named workloads (in the given order).

    ``registry`` substitutes the workload table — e.g. the
    engine-forced view from
    :func:`repro.perf.workloads.with_flit_engine`.
    """
    table = WORKLOADS if registry is None else registry
    results: Dict[str, WorkloadResult] = {}
    for name in names:
        runner = table.get(name)
        if runner is None:
            raise KeyError(
                f"unknown workload {name!r}; known: {sorted(table)}"
            )
        result = runner()
        results[name] = result
        print(
            f"  {name}: {result.events:,} events in {result.wall_s:.2f}s "
            f"({result.events_per_sec / 1e6:.2f} Mev/s)"
        )
    return results


def _migrate_v1(data: dict) -> dict:
    """Lift a ``bench-core/v1`` report into the v2 shape.

    The v1 single ``baseline`` mapping becomes the ``seed`` baseline and
    the v1 ``workloads`` numbers (the measurement the file was committed
    with) are preserved as a second baseline, so no history is lost.
    """
    old_baseline = dict(data.get("baseline", {}))
    label = old_baseline.pop("label", "baseline")
    baselines = {
        "seed": {"label": label, "order": 0, "workloads": old_baseline},
        "pre-refresh": {
            "label": "committed workloads at v1->v2 migration",
            "order": 1,
            "workloads": dict(data.get("workloads", {})),
        },
    }
    return {
        "schema": BENCH_SCHEMA,
        "workloads": dict(data.get("workloads", {})),
        "baselines": baselines,
        "speedup": {},
    }


def load_report(path: Path) -> Optional[dict]:
    """Parse an existing report (migrating v1); None when absent/alien."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    schema = data.get("schema")
    if schema == BENCH_SCHEMA:
        return data
    if schema == BENCH_SCHEMA_V1:
        return _migrate_v1(data)
    return None


def baseline_keys_chronological(baselines: dict) -> List[str]:
    """Baseline keys oldest-first, by their ``order`` field.

    Entries written before the field existed sort first (order ``-1``)
    in file order; ties break on the key so rendering is deterministic.
    """
    return sorted(baselines, key=lambda k: (baselines[k].get("order", -1), k))


def _next_order(baselines: dict) -> int:
    return 1 + max(
        (b.get("order", -1) for b in baselines.values()), default=-1
    )


def format_speedup_table(report: dict, names: Optional[Iterable[str]] = None) -> str:
    """Render per-workload speedups, baselines as columns oldest-first.

    The header names every comparison baseline explicitly (``vs <key>``)
    so a reader never has to guess which predecessor a ratio is against;
    the newest baseline — the one a fresh optimization PR is judged by —
    is marked ``(comparison)``.
    """
    baselines = report.get("baselines", {})
    speedup = report.get("speedup", {})
    keys = baseline_keys_chronological(baselines)
    if names is not None:
        wanted = set(names)
        rows = [n for n in speedup if n in wanted]
    else:
        rows = list(speedup)
    rows.sort()
    if not keys or not rows:
        return ""
    headers = [f"vs {key}" for key in keys]
    headers[-1] += " (comparison)"
    widths = [max(len(h), 8) for h in headers]
    name_w = max([len("workload")] + [len(n) for n in rows])
    lines = [
        f"{'workload':<{name_w}}  "
        + "  ".join(f"{h:>{w}}" for h, w in zip(headers, widths))
    ]
    lines.append("-" * len(lines[0]))
    for name in rows:
        ratios = speedup.get(name, {})
        cells = []
        for key, w in zip(keys, widths):
            ratio = ratios.get(key)
            cells.append(
                f"{ratio:>{w - 1}.2f}x" if ratio is not None
                else f"{'-':>{w}}"
            )
        lines.append(f"{name:<{name_w}}  " + "  ".join(cells))
    return "\n".join(lines)


def _compute_speedup(workloads: dict, baselines: dict) -> dict:
    speedup: Dict[str, Dict[str, float]] = {}
    for name, entry in workloads.items():
        rate = entry.get("events_per_sec")
        if not rate:
            continue
        per_baseline = {}
        for key, baseline in baselines.items():
            base = baseline.get("workloads", {}).get(name)
            if isinstance(base, dict) and base.get("events_per_sec"):
                per_baseline[key] = round(
                    rate / base["events_per_sec"], 2
                )
        if per_baseline:
            speedup[name] = per_baseline
    return speedup


def write_report(
    results: Dict[str, WorkloadResult],
    path: Path,
    baseline_label: Optional[str] = None,
    snapshot_baseline: Optional[str] = None,
) -> dict:
    """Merge fresh measurements into the report file at ``path``.

    The first measurement also becomes the ``seed`` baseline.
    ``snapshot_baseline`` freezes the previously *committed* workload
    numbers under that key before they are overwritten — this is how a
    new optimization PR preserves its predecessor's numbers.
    """
    previous = load_report(path)
    workloads = dict(previous.get("workloads", {})) if previous else {}
    baselines = dict(previous.get("baselines", {})) if previous else {}

    if snapshot_baseline and workloads:
        baselines[snapshot_baseline] = {
            "label": baseline_label or snapshot_baseline,
            "order": _next_order(baselines),
            "workloads": dict(workloads),
        }

    for name, result in results.items():
        workloads[name] = result.as_dict()

    if not baselines:
        baselines["seed"] = {
            "label": baseline_label or "baseline",
            "order": 0,
            "workloads": {k: dict(v) for k, v in workloads.items()},
        }

    report = {
        "schema": BENCH_SCHEMA,
        "workloads": workloads,
        "baselines": baselines,
        "speedup": _compute_speedup(workloads, baselines),
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def check_against(
    results: Dict[str, WorkloadResult],
    committed: dict,
    tolerance: Optional[float] = REGRESSION_TOLERANCE,
) -> List[str]:
    """Regression check: fresh results vs the committed ``workloads``.

    ``tolerance=None`` skips the rate gate and checks only the pinned
    event counts (the ``--flit-engine`` A/B mode: a non-canonical
    engine's rate is not comparable, its simulated work must be).
    Returns a list of human-readable failures (empty = pass).
    """
    failures: List[str] = []
    reference = committed.get("workloads", {})
    for name, result in results.items():
        entry = reference.get(name)
        if not entry:
            continue  # workload not in the committed report: nothing to gate
        committed_rate = entry.get("events_per_sec", 0.0)
        if committed_rate <= 0:
            continue
        floor = (
            (1.0 - tolerance) * committed_rate
            if tolerance is not None else 0.0
        )
        if tolerance is not None and result.events_per_sec < floor:
            failures.append(
                f"{name}: {result.events_per_sec:,.0f} ev/s is "
                f"{100 * (1 - result.events_per_sec / committed_rate):.1f}% "
                f"below the committed {committed_rate:,.0f} ev/s "
                f"(tolerance {100 * tolerance:.0f}%)"
            )
        if result.events != entry.get("events", result.events):
            failures.append(
                f"{name}: simulated {result.events:,} events but the "
                f"committed report says {entry['events']:,} — the pinned "
                "workload changed; re-run scripts/perf_report.py"
            )
    return failures


def capture_reference_trace(path: Path) -> None:
    """Run one observed end-to-end simulation and write its Chrome trace.

    Uses the same shape of run the ``fig12_quick`` workload bottoms out
    in (a scaled-down iNPG benchmark), executed inline and uncached so
    the trace reflects exactly what was simulated here.
    """
    from ..exec import RunSpec
    from ..exec.executor import execute_spec
    from ..obs import Observation

    spec = RunSpec(
        benchmark="kdtree", mechanism="inpg", primitive="qsl", scale=0.25
    )
    observe = Observation(label=spec.label())
    execute_spec(spec, observe=observe)
    observe.write_chrome_trace(path)
    print(
        f"  reference trace: {spec.label()} -> {path} "
        f"({len(observe.records()):,} records)"
    )


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure simulation-core performance "
        "(events/sec on canonical workloads)."
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"report file to update (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--workloads", nargs="*", metavar="NAME",
        help=f"subset to run (default: all; known: {sorted(WORKLOADS)})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the fast workloads (skips the end-to-end fig12 "
        "run and the full lock-handoff chain)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="do not rewrite the report; fail if events/sec regressed "
        f">{100 * REGRESSION_TOLERANCE:.0f}%% vs the committed numbers",
    )
    add_flit_engine_argument(
        parser,
        extra_help="forces every flit-level workload onto this engine "
        "(A/B --check runs only: the committed report numbers always "
        "use each workload's canonical engine)",
    )
    parser.add_argument(
        "--snapshot-baseline", default=None, metavar="KEY",
        help="before updating, freeze the committed workload numbers as "
        "a named baseline (preserves the predecessor's numbers)",
    )
    parser.add_argument(
        "--baseline-label", default=None,
        help="provenance note stored with a new baseline",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also run each selected workload under cProfile and write "
        "a per-layer attribution + hotspot report (perf-profile/v1)",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="hotspot report path (default: BENCH_profile.json next to "
        "--output; implies --profile)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="also capture an observed reference run of the end-to-end "
        "system (written via --trace-out; default perf_trace.json)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="Chrome trace-event JSON for the observed reference run "
        "(implies --trace)",
    )
    args = parser.parse_args(argv)

    if args.workloads:
        names = list(args.workloads)
        # validate the whole selection up front: a typo'd name must not
        # surface as a traceback after minutes of earlier measurements
        unknown = [n for n in names if n not in WORKLOADS]
        if unknown:
            print(
                f"error: unknown workload(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(WORKLOADS))}",
                file=sys.stderr,
            )
            return 2
    elif args.quick:
        names = list(QUICK_WORKLOADS)
    else:
        names = list(WORKLOADS)

    registry = None
    if args.flit_engine is not None:
        if not args.check:
            print(
                "error: --flit-engine is for A/B --check runs only; the "
                "committed report pins each workload's canonical engine",
                file=sys.stderr,
            )
            return 2
        registry = with_flit_engine(args.flit_engine)
        print(f"flit workloads forced onto the {args.flit_engine} engine")

    path = Path(args.output)
    print(f"measuring {len(names)} workload(s): {', '.join(names)}")
    results = run_workloads(names, registry=registry)

    if args.trace or args.trace_out is not None:
        capture_reference_trace(Path(args.trace_out or "perf_trace.json"))

    if args.profile or args.profile_out is not None:
        from .profiling import (
            format_layer_table,
            profile_workloads,
            write_profile_report,
        )

        profile_path = (
            Path(args.profile_out)
            if args.profile_out is not None
            else path.parent / "BENCH_profile.json"
        )
        print(f"profiling {len(names)} workload(s) under cProfile:")
        profile_report = profile_workloads(names)
        write_profile_report(profile_report, profile_path)
        print(format_layer_table(profile_report))
        print(f"wrote {profile_path} (schema {profile_report['schema']})")

    if args.check:
        committed = load_report(path)
        if committed is None:
            print(f"error: no committed report at {path} to check against",
                  file=sys.stderr)
            return 2
        failures = check_against(
            results, committed,
            tolerance=None if args.flit_engine else REGRESSION_TOLERANCE,
        )
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        if args.flit_engine:
            print(f"pinned-work check passed under the {args.flit_engine} "
                  f"engine (rates not gated on a non-canonical engine)")
        else:
            print(f"perf check passed (within "
                  f"{100 * REGRESSION_TOLERANCE:.0f}% of {path})")
        return 0

    report = write_report(
        results, path,
        baseline_label=args.baseline_label,
        snapshot_baseline=args.snapshot_baseline,
    )
    table = format_speedup_table(report, names=results)
    if table:
        print(table)
    print(f"wrote {path} (schema {BENCH_SCHEMA})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
