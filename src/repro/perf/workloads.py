"""Canonical workloads for benchmarking the simulation core.

Each workload is deterministic (fixed seeds, fixed shapes) so that
events/sec numbers are comparable across commits: the *work simulated*
is pinned, only the wall time may change.  Four layers are covered:

* ``kernel_chain``   — the bare discrete-event kernel: self-rescheduling
  callback chains, no model code at all.
* ``packet_uniform`` — the packet-level NoC datapath (routers, ports,
  XY routing) under uniform-random synthetic traffic.
* ``flit_uniform``   — the flit-level validation model (VC allocation,
  switch allocation, credit flow control) under the same kind of load.
* ``fig12_quick``    — a cold end-to-end ``fig12 --quick`` regeneration
  (24 full-system simulations), the workload every figure harness
  bottoms out in.
* ``dir_invalidation_storm`` — the coherence directory under repeated
  full-mesh invalidation fan-outs (every core a sharer, a rotating
  winner's RMW invalidates all 63 others): Inv/InvAck/AckCount bursts,
  sharer-bitmask bookkeeping, and the message pool.
* ``lock_handoff_chain`` — a single contended lock handed around the
  whole CPU stack (threads, queue spin-lock sleep/wake OS path,
  coherence transactions), the lock-critical-path shape the paper's
  figures are made of.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

from ..config import FLIT_ENGINES, NocConfig
from ..sim import Simulator, make_rng


@dataclass
class WorkloadResult:
    """One measured workload: how much was simulated, how fast."""

    name: str
    wall_s: float
    events: int
    cycles: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "cycles": self.cycles,
            "events_per_sec": round(self.events_per_sec, 1),
        }


def _measure(name: str, fn: Callable[[], "tuple[int, int]"]) -> WorkloadResult:
    start = time.perf_counter()
    events, cycles = fn()
    wall = time.perf_counter() - start
    return WorkloadResult(name=name, wall_s=wall, events=events, cycles=cycles)


# ----------------------------------------------------------------------
# 1. Bare kernel
# ----------------------------------------------------------------------
def kernel_chain(total_events: int = 400_000, chains: int = 64) -> WorkloadResult:
    """Self-rescheduling callback chains exercising only the event loop."""

    def run():
        sim = Simulator()
        state = {"fired": 0}

        def make(delay: int) -> Callable[[], None]:
            def tick() -> None:
                state["fired"] += 1
                if state["fired"] < total_events:
                    sim.schedule(delay, tick)

            return tick

        for i in range(chains):
            sim.schedule(i % 7, make(1 + (i % 5)))
        sim.run()
        return sim.events_processed, sim.cycle

    return _measure("kernel_chain", run)


# ----------------------------------------------------------------------
# 2. Packet-level NoC
# ----------------------------------------------------------------------
def packet_uniform(
    duration: int = 4_000, injection_rate: float = 0.08, seed: int = 7,
    topology: str = "mesh", arbiter: str = "rr",
) -> WorkloadResult:
    """Uniform-random traffic on the 8x8 packet-level fabric.

    The committed gate numbers always use the default mesh + round-robin
    pair; ``topology``/``arbiter`` parameterize A/B runs (``inpg-perf``
    exploration via :func:`with_topology`), which report under a
    suffixed name so they can never be mistaken for the pinned baseline.
    """
    from ..noc.traffic import run_packet_traffic

    def run():
        result = run_packet_traffic(
            NocConfig(width=8, height=8, topology=topology, arbiter=arbiter),
            "uniform",
            injection_rate=injection_rate,
            duration=duration,
            size_flits=1,
            seed=seed,
        )
        return result.sim_events, result.sim_cycles

    name = "packet_uniform"
    if (topology, arbiter) != ("mesh", "rr"):
        name = f"packet_uniform[{topology}/{arbiter}]"
    return _measure(name, run)


# ----------------------------------------------------------------------
# 3. Flit-level NoC
# ----------------------------------------------------------------------
def flit_uniform(
    packets: int = 1_200, seed: int = 11, engine: str = "event"
) -> WorkloadResult:
    """Uniform-random packets through the flit-level validation model."""
    from ..noc.vecflit import make_flit_network

    def run():
        sim = Simulator()
        net = make_flit_network(sim, NocConfig(width=8, height=8), engine)
        rng = make_rng(seed, "perf/flit")
        n = net.mesh.num_nodes
        for i in range(packets):
            src = rng.randrange(n)
            dst = rng.randrange(n)
            while dst == src:
                dst = rng.randrange(n)
            length = 8 if i % 4 == 0 else 1
            sim.schedule_at(
                i // 2,
                lambda s=src, d=dst, l=length: net.send(s, d, l),
            )
        sim.run(until=2_000_000)
        return sim.events_processed, sim.cycle

    return _measure("flit_uniform", run)


def flit_vector_uniform(
    packets: int = 1_200, seed: int = 11, engine: str = "vector"
) -> WorkloadResult:
    """Uniform-random streaming data packets, vector engine, 16x16 mesh.

    The shape plays to what a cycle-batched fabric amortizes: every
    packet is a full 8-flit data burst (maximum hop events per router
    tick) on a 16x16 mesh (4x the routers of ``flit_uniform``, so each
    stepped cycle carries 4x the work per Python-level dispatch).  The
    event engine pays per flit-hop callback either way, which is what
    the ``flit_uniform`` baseline comparison measures.
    """
    from ..noc.vecflit import make_flit_network

    def run():
        sim = Simulator()
        net = make_flit_network(sim, NocConfig(width=16, height=16), engine)
        rng = make_rng(seed, "perf/flit")
        n = net.mesh.num_nodes
        for i in range(packets):
            src = rng.randrange(n)
            dst = rng.randrange(n)
            while dst == src:
                dst = rng.randrange(n)
            sim.schedule_at(i // 2, net.send, src, dst, 8)
        sim.run(until=2_000_000)
        return sim.events_processed, sim.cycle

    return _measure("flit_vector_uniform", run)


def flit_big_mesh(
    packets: int = 4_800, seed: int = 11, engine: str = "vector"
) -> WorkloadResult:
    """Dense mixed-size traffic on a 16x16 mesh under the vector engine.

    The big-mesh scaling workload (ROADMAP: push iNPG's placement study
    past the paper's 8x8): ``flit_uniform``'s 8:1/1:1 length mix at 4x
    the packet count and 8 injections per cycle, exercising HOL blocking
    and VC contention at a mesh size the event engine makes painful.
    """
    from ..noc.vecflit import make_flit_network

    def run():
        sim = Simulator()
        net = make_flit_network(sim, NocConfig(width=16, height=16), engine)
        rng = make_rng(seed, "perf/flit")
        n = net.mesh.num_nodes
        for i in range(packets):
            src = rng.randrange(n)
            dst = rng.randrange(n)
            while dst == src:
                dst = rng.randrange(n)
            length = 8 if i % 4 == 0 else 1
            sim.schedule_at(i // 8, net.send, src, dst, length)
        sim.run(until=2_000_000)
        return sim.events_processed, sim.cycle

    return _measure("flit_big_mesh", run)


def _uniform_flit_plan(packets: int, nodes: int, per_cycle: int, seed: int):
    """The pinned uniform mixed-size drive as explicit (cycle, src, dst,
    length) rows — the same stream ``flit_big_mesh`` schedules, made
    reusable for engines driven standalone (``send_at``) instead of
    through the kernel."""
    rng = make_rng(seed, "perf/flit")
    plan = []
    for i in range(packets):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        plan.append((i // per_cycle, src, dst, 8 if i % 4 == 0 else 1))
    return plan


def _run_flit_plan(width: int, plan, engine: str, shards: int):
    """Drive one engine through the plan; returns ``(events, cycles)``.

    A multi-shard run uses the standalone plan-driven drive (worker
    processes cannot take mid-run injections); every other engine goes
    through the kernel like ``flit_big_mesh``.  The engines are
    bit-exact and count events identically on both drives, so the
    pinned event totals are comparable across all legs.
    """
    if engine == "sharded" and shards > 1:
        from ..noc.shardflit import ShardedFlitNetwork

        net = ShardedFlitNetwork(
            NocConfig(width=width, height=width,
                      flit_engine="sharded", shards=shards)
        )
        for cycle, src, dst, length in plan:
            net.send_at(cycle, src, dst, length)
        net.run(until=2_000_000)
        return net.events_processed, net.cycle
    from ..noc.vecflit import make_flit_network

    sim = Simulator()
    net = make_flit_network(sim, NocConfig(width=width, height=width), engine)
    for cycle, src, dst, length in plan:
        sim.schedule_at(cycle, net.send, src, dst, length)
    sim.run(until=2_000_000)
    return sim.events_processed, sim.cycle


def flit_sharded_big_mesh(
    packets: int = 4_800, seed: int = 11, engine: str = "sharded",
    shards: int = 4,
) -> WorkloadResult:
    """``flit_big_mesh``'s exact drive under the sharded engine.

    Same 16x16 mesh, same mixed-size stream, same pinned event count —
    only the execution changes: four row-band worker processes under
    the cycle-batched boundary-exchange barrier.  On a multi-core host
    this is the scaling headline; on one core it measures the barrier
    overhead honestly (see DESIGN.md §16).
    """

    def run():
        return _run_flit_plan(
            16, _uniform_flit_plan(packets, 256, 8, seed), engine, shards
        )

    name = "flit_sharded_big_mesh"
    if engine == "sharded" and shards != 4:
        name = f"{name}[shards={shards}]"
    return _measure(name, run)


def flit_sharded_mesh32(
    packets: int = 12_000, seed: int = 11, engine: str = "sharded",
    shards: int = 4,
) -> WorkloadResult:
    """Dense mixed-size traffic on a 32x32 mesh, four shards.

    The scaling-study extreme (ROADMAP: placement studies past the
    paper's 8x8): 1024 routers per stepped cycle, so per-cycle work
    dwarfs the two barrier crossings and the boundary columns — the
    regime spatial sharding is built for.
    """

    def run():
        return _run_flit_plan(
            32, _uniform_flit_plan(packets, 1024, 16, seed), engine, shards
        )

    name = "flit_sharded_mesh32"
    if engine == "sharded" and shards != 4:
        name = f"{name}[shards={shards}]"
    return _measure(name, run)


# ----------------------------------------------------------------------
# 4. End-to-end figure regeneration
# ----------------------------------------------------------------------
def fig12_quick() -> WorkloadResult:
    """Cold (cache-disabled, single-process) ``fig12 --quick`` run."""
    from ..exec import Executor, NullCache
    from ..experiments import common, fig12_roi

    def run():
        previous = common.get_executor()
        executor = common.set_executor(Executor(jobs=1, cache=NullCache()))
        try:
            fig12_roi.run(common.ExperimentOptions(scale=0.5, quick=True))
            return executor.stats.sim_events, executor.stats.sim_cycles
        finally:
            common.set_executor(previous)

    return _measure("fig12_quick", run)


# ----------------------------------------------------------------------
# 5. Coherence-stress: directory invalidation storms
# ----------------------------------------------------------------------
def run_dir_invalidation_storm(rounds: int = 40, protocol: str = "moesi"):
    """Build and run the invalidation-storm system; returns ``(sim, net)``.

    Every round, all 64 cores load one block (becoming sharers), then a
    rotating winner RMWs it — the home fans out 63 Invs, collects 63
    InvAcks plus the AckCount, and the next round begins on commit.
    Exercised: directory transaction fan-out, sharer/ack bitmask
    bookkeeping, the message pool, and the L1 ack ledger.  Fully
    deterministic (no RNG at all).

    ``protocol`` selects the coherence variant (the first load of each
    round is a clean GetS miss, so MESI's Exclusive grant fires here).

    Shared with the golden-fingerprint tests, which wrap delivery to
    hash the packet stream.
    """
    from dataclasses import replace

    from ..config import SystemConfig
    from ..coherence.memsystem import MemorySystem
    from ..noc import Network

    sim = Simulator()
    cfg = replace(SystemConfig(), protocol=protocol)
    net = Network(sim, cfg.noc)
    memsys = MemorySystem(sim, cfg, net, model_dram=False)
    net.memsys = memsys
    num_cores = net.mesh.num_nodes
    addr = memsys.addr_for_home(0)
    state = {"round": 0, "outstanding": 0}

    def committed(_returned: int) -> None:
        state["round"] += 1
        if state["round"] < rounds:
            begin_round()

    def loaded(_value: int) -> None:
        state["outstanding"] -= 1
        if state["outstanding"] == 0:
            winner = state["round"] % num_cores
            memsys.rmw(winner, addr, lambda old: (old + 1, old), committed)

    def begin_round() -> None:
        state["outstanding"] = num_cores
        for core in range(num_cores):
            memsys.load(core, addr, loaded)

    begin_round()
    sim.run()
    return sim, net


def dir_invalidation_storm() -> WorkloadResult:
    """Directory invalidation fan-out stress (see the module docstring)."""

    def run():
        sim, _net = run_dir_invalidation_storm()
        return sim.events_processed, sim.cycle

    return _measure("dir_invalidation_storm", run)


# ----------------------------------------------------------------------
# 6. Coherence-stress: single-lock handoff chain
# ----------------------------------------------------------------------
def run_lock_handoff_chain(num_threads: int = 32, handoffs: int = 8):
    """Build and run the handoff-chain system; returns ``(system, result)``.

    One lock, ``num_threads`` threads, tiny parallel sections: the lock
    is handed around continuously, so the run is dominated by the
    coherence transactions and queue spin-lock sleep/wake traffic of
    lock transfer — the critical path the paper targets.  Deterministic
    (fixed item shapes; thread index only varies the parallel stagger).
    """
    from ..config import SystemConfig
    from ..system import ManyCoreSystem
    from ..workloads.generator import WorkItem, Workload

    cfg = SystemConfig()
    items = [
        [
            WorkItem(
                parallel_cycles=20 + 3 * (t % 7),
                lock_index=0,
                cs_cycles=30,
            )
            for _ in range(handoffs)
        ]
        for t in range(num_threads)
    ]
    workload = Workload(
        benchmark="lock_handoff_chain",
        num_threads=num_threads,
        num_locks=1,
        lock_homes=[27],
        items=items,
    )
    system = ManyCoreSystem(cfg, workload, primitive="qsl")
    result = system.run(max_cycles=50_000_000)
    return system, result


def lock_handoff_chain() -> WorkloadResult:
    """Single-lock handoff chain through the full CPU + coherence stack."""

    def run():
        system, _result = run_lock_handoff_chain()
        return system.sim.events_processed, system.sim.cycle

    return _measure("lock_handoff_chain", run)


#: name -> zero-argument workload runner.  ``fig12_quick`` is the
#: slow end-to-end one; ``--quick`` runs skip it.
WORKLOADS: Dict[str, Callable[[], WorkloadResult]] = {
    "kernel_chain": kernel_chain,
    "packet_uniform": packet_uniform,
    "flit_uniform": flit_uniform,
    "flit_vector_uniform": flit_vector_uniform,
    "flit_big_mesh": flit_big_mesh,
    "flit_sharded_big_mesh": flit_sharded_big_mesh,
    "flit_sharded_mesh32": flit_sharded_mesh32,
    "fig12_quick": fig12_quick,
    "dir_invalidation_storm": dir_invalidation_storm,
    "lock_handoff_chain": lock_handoff_chain,
}

#: the fast subset CI measures (pinned, seconds not minutes);
#: ``dir_invalidation_storm`` is the coherence-stress representative.
QUICK_WORKLOADS = (
    "kernel_chain",
    "packet_uniform",
    "flit_uniform",
    "flit_vector_uniform",
    "flit_sharded_big_mesh",
    "dir_invalidation_storm",
)

#: flit-level workloads and the engine they canonically measure
FLIT_WORKLOAD_ENGINES: Dict[str, str] = {
    "flit_uniform": "event",
    "flit_vector_uniform": "vector",
    "flit_big_mesh": "vector",
    "flit_sharded_big_mesh": "sharded",
    "flit_sharded_mesh32": "sharded",
}


def with_flit_engine(engine: str) -> Dict[str, Callable[[], WorkloadResult]]:
    """A ``WORKLOADS`` view with every flit workload forced to ``engine``.

    The two engines are bit-exact, so the pinned event counts are
    unchanged — only the rate moves.  Used by ``inpg-perf
    --flit-engine`` for A/B runs; the committed gate numbers always use
    each workload's canonical engine.
    """
    out = dict(WORKLOADS)
    out["flit_uniform"] = lambda: flit_uniform(engine=engine)
    out["flit_vector_uniform"] = lambda: flit_vector_uniform(engine=engine)
    out["flit_big_mesh"] = lambda: flit_big_mesh(engine=engine)
    out["flit_sharded_big_mesh"] = lambda: flit_sharded_big_mesh(engine=engine)
    out["flit_sharded_mesh32"] = lambda: flit_sharded_mesh32(engine=engine)
    return out


def with_topology(
    topology: str, arbiter: str = "rr"
) -> Dict[str, Callable[[], WorkloadResult]]:
    """A ``WORKLOADS`` view with the packet workload on this fabric.

    Unlike :func:`with_flit_engine` (whose engines are bit-exact), a
    different topology or arbiter routes different work — event counts
    move — so this view is exploratory only and the result carries a
    ``packet_uniform[topology/arbiter]`` name that the pinned gate
    entries never match.  The flit workloads are mesh-only and stay on
    their canonical shapes.
    """
    out = dict(WORKLOADS)
    out["packet_uniform"] = lambda: packet_uniform(
        topology=topology, arbiter=arbiter
    )
    return out
