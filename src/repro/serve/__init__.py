"""``repro.serve``: the simulation service and its versioned client API.

The package splits along the wire:

* :mod:`repro.serve.proto` — the schema both sides share (versioned
  envelopes; ``PROTO_SCHEMA_VERSION``);
* :mod:`repro.serve.store` — fingerprint-keyed result + failure store
  over the executor's cache directory;
* :mod:`repro.serve.server` — the ``inpg-serve`` asyncio service
  (job queue, dedupe, worker fan-out, SSE progress);
* :mod:`repro.serve.client` — ``ServiceClient`` (HTTP),
  ``RemoteExecutor`` (the ``--remote`` drop-in for the harnesses) and
  :func:`connect` (local-or-remote entry point, re-exported from
  :mod:`repro.api`).
"""

from .client import (
    LocalClient,
    RemoteExecutor,
    ServiceClient,
    ServiceError,
    connect,
)
from .proto import PROTO_SCHEMA_VERSION, ProtoError
from .server import ServiceHandle, SimulationService, start_in_thread
from .store import ResultStore

__all__ = [
    "LocalClient",
    "PROTO_SCHEMA_VERSION",
    "ProtoError",
    "RemoteExecutor",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "SimulationService",
    "connect",
    "start_in_thread",
]
