"""Clients of ``inpg-serve``: the thin HTTP side of the serve proto.

Three layers, outermost first:

* :class:`ServiceClient` — a stdlib :mod:`http.client` wrapper speaking
  :mod:`repro.serve.proto` verbatim: submit, poll, stream events, fetch
  results/failures by fingerprint.
* :class:`RemoteExecutor` — an :class:`~repro.exec.Executor`-shaped
  facade over a :class:`ServiceClient`.  The experiment harnesses, the
  sweep and the fault campaign all talk to *an executor*; installing a
  ``RemoteExecutor`` (``--remote <url>``) redirects every one of them to
  the service without a line of harness code changing.  Local semantics
  are preserved client-side: the service always runs ``on_error="skip"``
  internally, and this facade re-raises (:class:`ExecutorError`) when
  the caller asked for ``"raise"``.
* :func:`connect` — the one-call entry point (re-exported from
  :mod:`repro.api`): ``connect()`` gives a :class:`LocalClient` over an
  in-process executor, ``connect("http://host:port")`` the remote
  client; both expose the identical ``submit`` / ``wait`` / ``result`` /
  ``run`` surface, so "local by default, remote by URL" is a call-site
  decision, not an architecture.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import ExecutorError
from ..exec import Executor, RunSpec
from ..exec.executor import ExecStats, RunRecord
from ..stats.metrics import RunResult
from ..stats.serialize import (
    deserialize_run_result,
    failure_record_from_dict,
)
from . import proto


class ServiceError(ConnectionError):
    """The service was unreachable or answered outside the proto."""


# ----------------------------------------------------------------------
# HTTP client
# ----------------------------------------------------------------------
class ServiceClient:
    """Talk the serve proto to one ``inpg-serve`` instance."""

    def __init__(self, url: str, timeout: float = 30.0):
        parsed = urllib.parse.urlsplit(url if "//" in url
                                       else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(
                f"inpg-serve speaks plain http, got {parsed.scheme!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None,
                 kind: Optional[str] = None) -> Dict:
        """One request/response cycle; opens the proto envelope."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as err:
                raise ServiceError(
                    f"{method} {self.url}{path} failed: "
                    f"{type(err).__name__}: {err}") from err
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except ValueError as err:
                raise ServiceError(
                    f"{self.url}{path} returned non-JSON "
                    f"(HTTP {response.status})") from err
            return proto.open_envelope(decoded, kind)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Proto surface
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/v1/health", kind="health")

    def stats(self) -> Dict:
        return self._request("GET", "/v1/stats", kind="stats")

    def store_index(self) -> List[Dict]:
        body = self._request("GET", "/v1/store", kind="stats")
        return body["store"]["index"]

    def submit(self, specs: Sequence[RunSpec], *,
               timeout_s: Optional[float] = None,
               retries: Optional[int] = None,
               on_error: Optional[str] = None) -> Dict:
        """POST a plan; returns the initial ``job`` snapshot."""
        request = proto.submit_request(
            specs, timeout_s=timeout_s, retries=retries,
            on_error=on_error)
        return self._request("POST", "/v1/jobs", request, kind="job")

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}", kind="job")

    def wait(self, job_id: str, poll_s: float = 0.25,
             timeout_s: Optional[float] = None) -> Dict:
        """Poll until the job reaches a terminal state."""
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "error"):
                return snapshot
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']!r} after "
                    f"{timeout_s}s ({snapshot['resolved']}"
                    f"/{snapshot['total']} resolved)")
            time.sleep(poll_s)

    def iter_events(self, job_id: str) -> Iterator[Dict]:
        """Stream SSE ``job`` snapshots until the job is terminal."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                decoded = json.loads(response.read().decode("utf-8"))
                proto.open_envelope(decoded, "job")  # raises ProtoError
                return
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.decode("utf-8").strip()
                if not line.startswith("data:"):
                    continue
                snapshot = proto.open_envelope(
                    json.loads(line[len("data:"):].strip()), "job")
                yield snapshot
                if snapshot["state"] in ("done", "error"):
                    return
        finally:
            conn.close()

    def result_payload(self, fingerprint: str) -> Dict:
        body = self._request("GET", f"/v1/results/{fingerprint}",
                             kind="result")
        return body["result"]

    def result(self, fingerprint: str) -> RunResult:
        return deserialize_run_result(self.result_payload(fingerprint))

    def failure_payload(self, fingerprint: str) -> Optional[Dict]:
        try:
            body = self._request("GET", f"/v1/failures/{fingerprint}",
                                 kind="failure")
        except proto.ProtoError:
            return None
        return body["failure"]

    def failure(self, fingerprint: str):
        payload = self.failure_payload(fingerprint)
        if payload is None:
            return None
        return failure_record_from_dict(payload)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec], *,
            timeout_s: Optional[float] = None,
            retries: Optional[int] = None,
            poll_s: float = 0.25,
            wait_timeout_s: Optional[float] = None,
            ) -> Dict[RunSpec, Optional[RunResult]]:
        """Submit, wait, fetch: the blocking convenience round trip.

        Failed specs map to ``None`` (skip semantics — ask
        :meth:`failure` why); :class:`RemoteExecutor` layers raise
        semantics on top.
        """
        specs = list(specs)
        job = self.submit(specs, timeout_s=timeout_s, retries=retries)
        final = self.wait(job["id"], poll_s=poll_s,
                          timeout_s=wait_timeout_s)
        if final["state"] == "error":
            raise ServiceError(
                f"service failed executing job {job['id']}: "
                f"{final.get('error')}")
        results: Dict[str, Optional[RunResult]] = {}
        for row in final["specs"]:
            fp = row["fingerprint"]
            if fp in results:
                continue
            if row["state"] == "failed":
                results[fp] = None
            else:
                results[fp] = self.result(fp)
        return {spec: results[spec.fingerprint] for spec in specs}


# ----------------------------------------------------------------------
# Executor facade
# ----------------------------------------------------------------------
class _RemoteCache:
    """Footer shim: the remote store, shaped like a local cache."""

    def __init__(self, directory: Optional[str], url: str):
        self.directory = (f"{url} ({directory})"
                          if directory is not None else url)


class RemoteExecutor:
    """An Executor-shaped facade that executes on an ``inpg-serve``.

    Drop-in for the process-global executor the harnesses share
    (:func:`repro.experiments.common.set_executor`): ``run`` / ``run_one``
    signatures, ``stats`` footer counters, ``jobs`` and
    ``cache.directory`` all behave as the harness code expects, but
    every simulation happens on the service — one shared cache and one
    shared worker pool for every client on the machine.
    """

    def __init__(self, url: str, timeout_s: Optional[float] = None,
                 retries: int = 0, on_error: str = "raise",
                 poll_s: float = 0.25):
        self.client = url if isinstance(url, ServiceClient) \
            else ServiceClient(url)
        health = self.client.health()  # fail fast + discover the pool
        self.jobs = health["jobs"]
        self.cache = _RemoteCache(health.get("store"), self.client.url)
        self.timeout_s = timeout_s
        self.retries = retries
        self.on_error = on_error
        self.poll_s = poll_s
        self.stats = ExecStats()
        self._memory: Dict[str, RunResult] = {}
        #: observed runs can't cross the wire (trace rings are local)
        self.observe_factory = None
        self.observations: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        plan: Sequence[RunSpec],
        *,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        on_error: Optional[str] = None,
    ) -> Dict[RunSpec, Optional[RunResult]]:
        timeout_s = self.timeout_s if timeout_s is None else timeout_s
        retries = self.retries if retries is None else retries
        on_error = self.on_error if on_error is None else on_error
        specs = list(plan)
        fingerprints = [spec.fingerprint for spec in specs]

        # mirror the local executor: dedupe against client memory first
        todo: Dict[str, RunSpec] = {}
        for spec, fp in zip(specs, fingerprints):
            if fp in self._memory or fp in todo:
                self.stats.memory_hits += 1
            else:
                todo[fp] = spec

        if todo:
            job = self.client.submit(
                list(todo.values()), timeout_s=timeout_s,
                retries=retries)
            final = self.client.wait(job["id"], poll_s=self.poll_s)
            if final["state"] == "error":
                raise ExecutorError(
                    f"service failed executing job {job['id']}: "
                    f"{final.get('error')}")
            self._absorb(final, todo, on_error)

        return {
            spec: self._memory.get(fp)
            for spec, fp in zip(specs, fingerprints)
        }

    def run_one(self, spec: RunSpec, **policy) -> Optional[RunResult]:
        return self.run([spec], **policy)[spec]

    def observation_for(self, spec: RunSpec):
        return None

    def clear_memory(self) -> None:
        self._memory.clear()

    # ------------------------------------------------------------------
    def _absorb(self, final: Dict, todo: Dict[str, RunSpec],
                on_error: str) -> None:
        """Fold one finished job into local memory + footer stats."""
        for row in final["specs"]:
            fp = row["fingerprint"]
            spec = todo.get(fp)
            if spec is None or fp in self._memory:
                continue
            state = row["state"]
            if state == "failed":
                record = self.client.failure(fp)
                if on_error == "raise":
                    detail = (f"{record.error_type}: {record.message}"
                              if record is not None else "unknown failure")
                    raise ExecutorError(
                        f"service run failed for {spec.label()}: {detail}",
                        fingerprint=fp,
                        spec_label=spec.label(),
                    )
                if record is not None:
                    self.stats.record_failure(record)
                else:
                    self.stats.failed += 1
                continue
            self._memory[fp] = self.client.result(fp)
            if state == "done":
                self.stats.record_run(RunRecord(
                    fingerprint=fp,
                    label=spec.label(),
                    wall_time=float(row.get("wall_time", 0.0)),
                    sim_cycles=int(row.get("sim_cycles", 0)),
                    sim_events=int(row.get("sim_events", 0)),
                ))
            else:  # cached / deduped service-side: a shared-cache hit
                self.stats.disk_hits += 1


# ----------------------------------------------------------------------
# Local twin + entry point
# ----------------------------------------------------------------------
class LocalClient:
    """The in-process twin of :class:`ServiceClient`.

    Same ``submit`` / ``job`` / ``wait`` / ``result`` / ``run`` surface,
    zero sockets: jobs execute synchronously at submit time on a private
    (or supplied) :class:`~repro.exec.Executor`.  Code written against
    :func:`connect` runs identically with and without a service.
    """

    def __init__(self, executor: Optional[Executor] = None, **kwargs):
        self.executor = executor if executor is not None \
            else Executor(**kwargs)
        self._jobs: Dict[str, Dict] = {}
        self._specs: Dict[str, RunSpec] = {}
        self._seq = 0

    @property
    def url(self) -> None:
        return None

    def health(self) -> Dict:
        directory = self.executor.cache.directory
        return proto.health_message(
            jobs=self.executor.jobs,
            store=str(directory) if directory is not None else None,
        )

    def submit(self, specs: Sequence[RunSpec], *,
               timeout_s: Optional[float] = None,
               retries: Optional[int] = None,
               on_error: Optional[str] = None) -> Dict:
        specs = list(specs)
        before = {spec.fingerprint for spec in specs
                  if spec.fingerprint in self.executor._memory
                  or spec.fingerprint in self.executor.cache}
        results = self.executor.run(
            specs, timeout_s=timeout_s, retries=retries,
            on_error=on_error or "skip")
        self._seq += 1
        job_id = f"local-j{self._seq}"
        rows = []
        for spec in specs:
            fp = spec.fingerprint
            self._specs[fp] = spec
            rows.append({
                "fingerprint": fp,
                "label": spec.label(),
                "state": ("failed" if results[spec] is None
                          else "cached" if fp in before else "done"),
            })
        snapshot = proto.envelope(
            "job", id=job_id, state="done", version=1,
            total=len(specs), resolved=len(specs),
            counts={}, specs=rows, error=None,
        )
        self._jobs[job_id] = snapshot
        return snapshot

    def job(self, job_id: str) -> Dict:
        return self._jobs[job_id]

    def wait(self, job_id: str, poll_s: float = 0.25,
             timeout_s: Optional[float] = None) -> Dict:
        return self._jobs[job_id]

    def result_payload(self, fingerprint: str) -> Dict:
        from ..stats.serialize import serialize_run_result

        return serialize_run_result(self.result(fingerprint))

    def result(self, fingerprint: str) -> RunResult:
        result = self.executor._memory.get(fingerprint)
        if result is None:
            raise KeyError(f"no result for {fingerprint[:16]}...")
        return result

    def failure(self, fingerprint: str):
        for record in self.executor.stats.failures:
            if record.fingerprint == fingerprint:
                return record
        return None

    def run(self, specs: Sequence[RunSpec], *,
            timeout_s: Optional[float] = None,
            retries: Optional[int] = None,
            poll_s: float = 0.25,
            wait_timeout_s: Optional[float] = None,
            ) -> Dict[RunSpec, Optional[RunResult]]:
        return self.executor.run(
            list(specs), timeout_s=timeout_s, retries=retries,
            on_error="skip")


def connect(url: Optional[str] = None, **executor_kwargs):
    """Open the simulation service — or its in-process twin.

    ``connect("http://host:port")`` returns a :class:`ServiceClient`
    bound to a running ``inpg-serve`` (executor kwargs are rejected:
    the service owns its executor policy).  ``connect()`` returns a
    :class:`LocalClient` over a private executor built from
    ``executor_kwargs`` (``jobs=``, ``cache_dir=``, ...) — the same
    submit/wait/result surface with zero infrastructure.
    """
    if url is None:
        return LocalClient(**executor_kwargs)
    if executor_kwargs:
        raise TypeError(
            "executor kwargs only apply to local connections; the "
            f"service at {url!r} owns its own executor policy "
            f"(got {sorted(executor_kwargs)})")
    return ServiceClient(url)


__all__ = [
    "LocalClient",
    "RemoteExecutor",
    "ServiceClient",
    "ServiceError",
    "connect",
]
