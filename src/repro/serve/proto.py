"""The versioned client/server wire schema of ``inpg-serve``.

This module is the *entire* shared surface between the service
(:mod:`repro.serve.server`) and its clients
(:mod:`repro.serve.client`): every request and response body is a JSON
envelope built and opened here, so the two sides can evolve
independently as long as they speak the same ``PROTO_SCHEMA_VERSION`` —
the same discipline :data:`~repro.stats.serialize.RESULT_SCHEMA_VERSION`
applies to results on disk.

An envelope is a JSON object::

    {"proto": 1, "kind": "<message kind>", ...body...}

``open_envelope`` rejects a payload whose ``proto`` does not match this
module's version (or whose ``kind`` is not the expected one) with a
structured :class:`ProtoError` — a v2 client talking to a v1 server
fails loudly at the boundary instead of mis-reading fields.

Specs travel as :meth:`repro.exec.RunSpec.to_dict` payloads (lossless,
fingerprint-preserving), results as
:func:`repro.stats.serialize.serialize_run_result` payloads, and
failures as :func:`repro.stats.serialize.failure_record_to_dict`
payloads — the serve proto adds the envelope, never a second encoding.

Message kinds
=============

========== ==========================================================
kind        body
========== ==========================================================
submit      ``specs`` (list of spec payloads), ``policy`` (executor
            policy overrides: ``timeout_s`` / ``retries`` /
            ``on_error``)
job         one job's status snapshot (see :func:`job_payload` on the
            server side): id, state, per-spec states, counters
result      ``fingerprint`` + ``result`` (serialized run result)
failure     ``fingerprint`` + ``failure`` (serialized failure record)
stats       ``counters`` (service registry snapshot) + ``exec``
            (executor counters) + ``store`` (result-store summary)
health      ``status`` / ``proto`` / ``result_schema`` / ``jobs`` /
            ``store``
error       ``error`` (symbolic name) + ``message``
========== ==========================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..exec import RunSpec
from ..stats.serialize import RESULT_SCHEMA_VERSION

#: bump when any envelope body below changes shape
PROTO_SCHEMA_VERSION = 1

#: every message kind the proto defines (closed vocabulary: an unknown
#: kind is a proto error, not a silent pass-through)
MESSAGE_KINDS = (
    "submit", "job", "result", "failure", "stats", "health", "error",
)


class ProtoError(ValueError):
    """A payload that is not a valid message of this proto version."""


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def envelope(kind: str, **body) -> Dict:
    """Wrap a message body in the versioned envelope."""
    if kind not in MESSAGE_KINDS:
        raise ProtoError(f"unknown message kind {kind!r}")
    out = {"proto": PROTO_SCHEMA_VERSION, "kind": kind}
    out.update(body)
    return out


def open_envelope(payload: Dict, kind: Optional[str] = None) -> Dict:
    """Validate an envelope; returns it for chained access.

    Raises :class:`ProtoError` when ``payload`` is not a mapping, was
    written under a different proto version, carries an unknown kind, or
    (when ``kind`` is given) is not the expected message.  An ``error``
    message is surfaced as a :class:`ProtoError` carrying the server's
    symbolic error name and text, whatever kind was expected.
    """
    if not isinstance(payload, dict):
        raise ProtoError(
            f"expected a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("proto")
    if version != PROTO_SCHEMA_VERSION:
        raise ProtoError(
            f"payload has proto version {version!r}, "
            f"expected {PROTO_SCHEMA_VERSION}"
        )
    got = payload.get("kind")
    if got not in MESSAGE_KINDS:
        raise ProtoError(f"unknown message kind {got!r}")
    if got == "error" and kind != "error":
        raise ProtoError(
            f"{payload.get('error', 'error')}: {payload.get('message', '')}"
        )
    if kind is not None and got != kind:
        raise ProtoError(f"expected a {kind!r} message, got {got!r}")
    return payload


def error_message(name: str, message: str) -> Dict:
    """The ``error`` envelope a server returns for a failed request."""
    return envelope("error", error=name, message=message)


# ----------------------------------------------------------------------
# Submission
# ----------------------------------------------------------------------
def submit_request(
    specs: Sequence[RunSpec],
    *,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    on_error: Optional[str] = None,
) -> Dict:
    """Encode a plan submission (specs + executor policy overrides)."""
    policy: Dict = {}
    if timeout_s is not None:
        policy["timeout_s"] = float(timeout_s)
    if retries is not None:
        policy["retries"] = int(retries)
    if on_error is not None:
        policy["on_error"] = on_error
    return envelope(
        "submit",
        specs=[spec.to_dict() for spec in specs],
        policy=policy,
    )


def decode_submit(payload: Dict) -> tuple:
    """Open a submission; returns ``(specs, policy)``.

    Spec decoding errors surface as :class:`ProtoError` (the client sent
    a spec this side cannot represent — schema drift or corruption).
    """
    body = open_envelope(payload, "submit")
    raw_specs = body.get("specs")
    if not isinstance(raw_specs, list):
        raise ProtoError("submit message carries no spec list")
    try:
        specs = [RunSpec.from_dict(raw) for raw in raw_specs]
    except (KeyError, TypeError, ValueError) as err:
        raise ProtoError(f"undecodable spec in submission: {err}") from err
    policy = body.get("policy") or {}
    if not isinstance(policy, dict):
        raise ProtoError("submit policy must be a mapping")
    unknown = set(policy) - {"timeout_s", "retries", "on_error"}
    if unknown:
        raise ProtoError(f"unknown policy keys: {sorted(unknown)}")
    return specs, policy


# ----------------------------------------------------------------------
# Results / failures / stats
# ----------------------------------------------------------------------
def result_message(fingerprint: str, result_payload: Dict) -> Dict:
    return envelope("result", fingerprint=fingerprint,
                    result=result_payload)


def failure_message(fingerprint: str, failure_payload: Dict) -> Dict:
    return envelope("failure", fingerprint=fingerprint,
                    failure=failure_payload)


def health_message(jobs: int, store: Optional[str]) -> Dict:
    return envelope(
        "health",
        status="ok",
        result_schema=RESULT_SCHEMA_VERSION,
        jobs=jobs,
        store=store,
    )


def stats_message(counters: Dict, exec_stats: Dict, store: Dict) -> Dict:
    return envelope("stats", counters=counters, exec=exec_stats,
                    store=store)


__all__: List[str] = [
    "MESSAGE_KINDS",
    "PROTO_SCHEMA_VERSION",
    "ProtoError",
    "decode_submit",
    "envelope",
    "error_message",
    "failure_message",
    "health_message",
    "open_envelope",
    "result_message",
    "stats_message",
    "submit_request",
]
