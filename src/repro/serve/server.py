"""``inpg-serve``: the sharded simulation service.

One long-running process owns an :class:`~repro.exec.Executor` (and
through it the persistent disk cache and the worker-process pool) and
exposes it over HTTP/JSON to every harness, sweep and fault campaign on
the machine — ROADMAP item 1's "millions of users" front door.  The
implementation is pure stdlib ``asyncio`` (``asyncio.start_server`` plus
a hand-rolled minimal HTTP/1.1 layer): the repository's
zero-extra-dependency rule holds for the service too.

Lifecycle of a submission (``POST /v1/jobs``):

1. the request body is opened through the versioned proto
   (:mod:`repro.serve.proto`); a version mismatch or undecodable spec is
   a structured 400, never a half-read plan;
2. every spec is **deduped by fingerprint** — against results the
   service already holds in memory, against the disk store, and against
   specs already queued by earlier (or the same) submission; deduped
   specs resolve instantly without executing;
3. the remainder is queued.  A single consumer task feeds the executor
   in chunks (chunk size = the worker-pool width) inside a thread, so
   the event loop keeps serving status polls while simulations run;
   per-chunk completion updates job progress;
4. results persist in the :class:`~repro.serve.store.ResultStore`
   (= the cache directory) and failures are recorded through the
   serialize layer, both queryable by fingerprint afterwards.

Endpoints (all JSON, proto-enveloped)::

    GET  /v1/health                 liveness + proto/schema versions
    GET  /v1/stats                  service counters + executor stats
    GET  /v1/store                  result-store index
    POST /v1/jobs                   submit a plan (proto 'submit')
    GET  /v1/jobs/<id>              job status snapshot (proto 'job')
    GET  /v1/jobs/<id>/events       server-sent events: status stream
    GET  /v1/results/<fingerprint>  serialized result (proto 'result')
    GET  /v1/failures/<fingerprint> failure provenance (proto 'failure')

The executor always runs campaigns with ``on_error="skip"`` internally —
a deterministic simulation failure must not take the service down; the
*client* re-raises when the caller asked for ``on_error="raise"``
(:class:`repro.serve.client.RemoteExecutor` preserves inline semantics).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..exec import Executor, RunSpec
from ..obs.registry import Registry
from ..stats.serialize import serialize_run_result
from . import proto
from .store import ResultStore

#: default service port (0 = ephemeral, printed at startup)
DEFAULT_PORT = 8731

#: spec states a job tracks; "cached" resolved at submit time,
#: "deduped" resolved against an earlier in-flight submission
SPEC_STATES = ("queued", "running", "done", "failed", "cached", "deduped")


class Job:
    """One submission: an ordered plan plus per-spec resolution."""

    def __init__(self, job_id: str, specs: Sequence[RunSpec],
                 policy: Dict):
        self.id = job_id
        self.specs = list(specs)
        self.policy = dict(policy)
        self.fingerprints = [spec.fingerprint for spec in self.specs]
        #: the deduped subset this job actually executes (set at submit)
        self.fresh: List[RunSpec] = []
        #: per-position states — a plan may submit one fingerprint twice
        #: (that is the point of dedupe), so states can't key on it
        self.states: List[str] = ["queued"] * len(self.specs)
        self.state = "queued"
        self.error: Optional[str] = None
        #: bumped on every visible change; SSE streams wait on it
        self.version = 0
        self.changed = asyncio.Event()

    def touch(self) -> None:
        self.version += 1
        self.changed.set()
        self.changed = asyncio.Event()

    def mark_fp(self, fingerprint: str, state: str,
                only: Optional[Tuple[str, ...]] = None) -> None:
        """Move every position holding ``fingerprint`` to ``state``.

        ``only`` restricts which current states transition — execution
        updates must not stomp positions resolved as cached/deduped.
        """
        for i, fp in enumerate(self.fingerprints):
            if fp == fingerprint and (only is None
                                      or self.states[i] in only):
                self.states[i] = state

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in SPEC_STATES}
        for state in self.states:
            out[state] += 1
        return out

    def payload(self, records: Dict[str, Dict]) -> Dict:
        """The proto ``job`` message body (``records``: fp -> run info)."""
        spec_rows = []
        for i, (spec, fp) in enumerate(zip(self.specs,
                                           self.fingerprints)):
            row: Dict = {
                "fingerprint": fp,
                "label": spec.label(),
                "state": self.states[i],
            }
            record = records.get(fp)
            if record is not None and row["state"] == "done":
                row.update(record)
            spec_rows.append(row)
        counts = self.counts()
        done = counts["done"] + counts["failed"] + counts["cached"] \
            + counts["deduped"]
        return proto.envelope(
            "job",
            id=self.id,
            state=self.state,
            version=self.version,
            total=len(self.specs),
            resolved=done,
            counts=counts,
            specs=spec_rows,
            error=self.error,
        )

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "error")


class SimulationService:
    """The job queue, dedupe logic and HTTP front-end in one object."""

    def __init__(self, executor: Optional[Executor] = None,
                 store: Optional[ResultStore] = None):
        self.executor = executor if executor is not None else Executor()
        self.store = store if store is not None else ResultStore(
            self.executor.cache)
        self.jobs: Dict[str, Job] = {}
        self.counters = Registry()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._seq = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._consumer: Optional[asyncio.Task] = None
        #: fingerprints owned by a queued/running job (in-flight dedupe)
        self._inflight: set = set()
        #: fp -> RunRecord-ish dict for executed runs (job payloads)
        self._records: Dict[str, Dict] = {}

    # ------------------------------------------------------------------
    # Submission / dedupe
    # ------------------------------------------------------------------
    def _known(self, fingerprint: str) -> bool:
        """Does the service already hold a result for this address?"""
        return (fingerprint in self.executor._memory
                or fingerprint in self.store)

    def submit(self, specs: Sequence[RunSpec], policy: Dict) -> Job:
        """Dedupe and enqueue one plan; returns the (queued) job."""
        self._seq += 1
        job = Job(f"j{self._seq}", specs, policy)
        self.jobs[job.id] = job
        fresh: List[RunSpec] = []
        claimed: set = set()
        for i, (spec, fp) in enumerate(zip(job.specs,
                                           job.fingerprints)):
            self.counters.inc("serve/specs_submitted")
            if self._known(fp):
                job.states[i] = "cached"
                self.counters.inc("serve/deduped_cache")
            elif fp in self._inflight or fp in claimed:
                job.states[i] = "deduped"
                self.counters.inc("serve/deduped_inflight")
            else:
                job.states[i] = "queued"
                claimed.add(fp)
                fresh.append(spec)
        job.fresh = fresh
        self._inflight.update(claimed)
        self.counters.inc("serve/jobs_submitted")
        if fresh or "deduped" in job.states:
            self._queue.put_nowait(job)
        else:
            job.state = "done"
            self.counters.inc("serve/jobs_done")
        job.touch()
        return job

    # ------------------------------------------------------------------
    # Execution (consumer task + worker thread)
    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        while True:
            job = await self._queue.get()
            job.state = "running"
            job.touch()
            try:
                await self._execute(job)
            except Exception as err:  # defensive: keep the service alive
                job.state = "error"
                job.error = f"{type(err).__name__}: {err}"
                self.counters.inc("serve/jobs_errored")
            else:
                job.state = "done"
                self.counters.inc("serve/jobs_done")
            finally:
                for fp in {spec.fingerprint for spec in job.fresh}:
                    self._inflight.discard(fp)
                job.touch()
                self._queue.task_done()

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        chunk = max(1, self.executor.jobs)
        fresh = job.fresh
        for start in range(0, len(fresh), chunk):
            batch = fresh[start:start + chunk]
            for spec in batch:
                job.mark_fp(spec.fingerprint, "running",
                            only=("queued",))
            job.touch()
            await loop.run_in_executor(None, self._run_batch, job, batch)
            job.touch()
        # specs deduped against an in-flight sibling resolve once the
        # owner executed (or failed); re-check them now
        for i, fp in enumerate(job.fingerprints):
            if job.states[i] == "deduped":
                if self.store.get_failure_payload(fp) is not None \
                        and not self._known(fp):
                    job.states[i] = "failed"

    def _run_batch(self, job: Job, batch: List[RunSpec]) -> None:
        """One executor call, in a worker thread (never the loop)."""
        policy = job.policy
        failed_before = len(self.executor.stats.failures)
        self.executor.run(
            batch,
            timeout_s=policy.get("timeout_s"),
            retries=policy.get("retries"),
            on_error="skip",
        )
        failures = {
            rec.fingerprint: rec
            for rec in self.executor.stats.failures[failed_before:]
        }
        for spec in batch:
            fp = spec.fingerprint
            result = self.executor._memory.get(fp)
            if result is not None:
                job.mark_fp(fp, "done", only=("queued", "running"))
                self.counters.inc("serve/specs_executed")
                self._records[fp] = self._record_for(fp)
                self.store.put_result(
                    spec, result, serialize_run_result(result),
                    wall=self._records[fp].get("wall_time", 0.0),
                )
            else:
                job.mark_fp(fp, "failed", only=("queued", "running"))
                self.counters.inc("serve/specs_failed")
                record = failures.get(fp)
                if record is not None:
                    self.store.record_failure(record)

    def _record_for(self, fingerprint: str) -> Dict:
        for record in reversed(self.executor.stats.records):
            if record.fingerprint == fingerprint:
                return {
                    "wall_time": record.wall_time,
                    "sim_cycles": record.sim_cycles,
                    "sim_events": record.sim_events,
                }
        return {}

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._consumer = self._loop.create_task(self._consume())
        self._server = await asyncio.start_server(
            self._handle, host, port)
        sock = self._server.sockets[0]
        actual = sock.getsockname()
        return actual[0], actual[1]

    async def serve_forever(self, host: str = "127.0.0.1",
                            port: int = DEFAULT_PORT,
                            announce=print) -> None:
        bound_host, bound_port = await self.start(host, port)
        if announce is not None:
            store = self.store.directory
            announce(
                f"inpg-serve listening on http://{bound_host}:{bound_port} "
                f"(store: {store if store is not None else 'memory'}, "
                f"jobs: {self.executor.jobs}, "
                f"proto v{proto.PROTO_SCHEMA_VERSION})",
                flush=True,
            )
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        if self._consumer is not None:
            self._consumer.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, body = await self._read_request(reader)
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as err:  # malformed request: answer, don't die
            try:
                await self._respond(
                    writer, 400,
                    proto.error_message("bad-request",
                                        f"{type(err).__name__}: {err}"),
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader) -> Tuple[str, str, Optional[Dict]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = None
        if length:
            raw = await reader.readexactly(length)
            body = json.loads(raw.decode("utf-8"))
        return method, path, body

    async def _respond(self, writer, status: int, payload: Dict,
                       close: bool = True) -> None:
        blob = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + blob)
        await writer.drain()

    async def _route(self, method: str, path: str, body: Optional[Dict],
                     writer) -> None:
        segments = [s for s in path.split("?")[0].split("/") if s]
        if segments[:1] != ["v1"]:
            await self._respond(writer, 404, proto.error_message(
                "not-found", f"unknown path {path!r} (try /v1/health)"))
            return
        tail = segments[1:]
        if tail == ["health"] and method == "GET":
            await self._respond(writer, 200, proto.health_message(
                jobs=self.executor.jobs,
                store=(str(self.store.directory)
                       if self.store.directory is not None else None),
            ))
        elif tail == ["stats"] and method == "GET":
            await self._respond(writer, 200, self._stats_payload())
        elif tail == ["store"] and method == "GET":
            await self._respond(writer, 200, proto.envelope(
                "stats", counters={}, exec={},
                store={"index": self.store.index(),
                       **self.store.summary()}))
        elif tail == ["jobs"] and method == "POST":
            await self._handle_submit(body, writer)
        elif len(tail) == 2 and tail[0] == "jobs" and method == "GET":
            job = self.jobs.get(tail[1])
            if job is None:
                await self._respond(writer, 404, proto.error_message(
                    "unknown-job", f"no job {tail[1]!r}"))
            else:
                await self._respond(writer, 200,
                                    job.payload(self._records))
        elif (len(tail) == 3 and tail[0] == "jobs"
              and tail[2] == "events" and method == "GET"):
            await self._handle_events(tail[1], writer)
        elif len(tail) == 2 and tail[0] == "results" and method == "GET":
            payload = self.store.get_payload(tail[1])
            if payload is None:
                result = self.executor._memory.get(tail[1])
                if result is not None:
                    payload = serialize_run_result(result)
            if payload is None:
                await self._respond(writer, 404, proto.error_message(
                    "unknown-result", f"no result for {tail[1][:16]}..."))
            else:
                await self._respond(
                    writer, 200, proto.result_message(tail[1], payload))
        elif len(tail) == 2 and tail[0] == "failures" and method == "GET":
            payload = self.store.get_failure_payload(tail[1])
            if payload is None:
                await self._respond(writer, 404, proto.error_message(
                    "unknown-failure",
                    f"no failure recorded for {tail[1][:16]}..."))
            else:
                await self._respond(
                    writer, 200, proto.failure_message(tail[1], payload))
        else:
            await self._respond(writer, 405, proto.error_message(
                "bad-route", f"{method} {path} is not part of proto "
                f"v{proto.PROTO_SCHEMA_VERSION}"))

    async def _handle_submit(self, body: Optional[Dict], writer) -> None:
        try:
            specs, policy = proto.decode_submit(body)
        except proto.ProtoError as err:
            await self._respond(writer, 400, proto.error_message(
                "proto-error", str(err)))
            return
        job = self.submit(specs, policy)
        await self._respond(writer, 200, job.payload(self._records))

    async def _handle_events(self, job_id: str, writer) -> None:
        """Server-sent events: one ``data:`` line per status change."""
        job = self.jobs.get(job_id)
        if job is None:
            await self._respond(writer, 404, proto.error_message(
                "unknown-job", f"no job {job_id!r}"))
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        while True:
            payload = job.payload(self._records)
            blob = json.dumps(payload)
            writer.write(f"data: {blob}\n\n".encode("utf-8"))
            await writer.drain()
            if job.terminal:
                break
            waiter = job.changed
            try:
                await asyncio.wait_for(waiter.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                pass  # heartbeat resend

    def _stats_payload(self) -> Dict:
        stats = self.executor.stats
        return proto.stats_message(
            counters=self.counters.snapshot(),
            exec_stats={
                "executed": stats.executed,
                "memory_hits": stats.memory_hits,
                "disk_hits": stats.disk_hits,
                "failed": stats.failed,
                "wall_time": stats.wall_time,
                "sim_events": stats.sim_events,
                "jobs": self.executor.jobs,
            },
            store=self.store.summary(),
        )


# ----------------------------------------------------------------------
# Embedded service (tests, notebooks): run the loop in a thread
# ----------------------------------------------------------------------
class ServiceHandle:
    """A service running on a background thread, with its URL."""

    def __init__(self, service: SimulationService, host: str, port: int,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.service = service
        self.host = host
        self.port = port
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 5.0) -> None:
        loop = self._loop

        def _shutdown():
            task = loop.create_task(self.service.shutdown())
            task.add_done_callback(lambda _: loop.stop())

        loop.call_soon_threadsafe(_shutdown)
        self._thread.join(timeout)


def start_in_thread(executor: Optional[Executor] = None,
                    host: str = "127.0.0.1",
                    port: int = 0) -> ServiceHandle:
    """Boot a service on a daemon thread; returns a stoppable handle."""
    holder: Dict = {}
    started = threading.Event()

    def _runner():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = SimulationService(executor=executor)
        bound = loop.run_until_complete(service.start(host, port))
        holder["service"] = service
        holder["host"], holder["port"] = bound
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_runner, name="inpg-serve",
                              daemon=True)
    thread.start()
    if not started.wait(10.0):
        raise RuntimeError("inpg-serve thread failed to start")
    return ServiceHandle(holder["service"], holder["host"],
                         holder["port"], holder["loop"], thread)


# ----------------------------------------------------------------------
# Console entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from ..cli import execution_parent

    parser = argparse.ArgumentParser(
        prog="inpg-serve",
        description="Run the iNPG simulation service: an HTTP/JSON job "
                    "queue over the cached, parallel run executor.",
        parents=[execution_parent(remote=False)],
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port (default {DEFAULT_PORT}; "
                             "0 = ephemeral, printed at startup)")
    parser.add_argument("--retries", type=int, default=0,
                        help="default retry count for transient (infra) "
                             "worker failures, with exponential backoff")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    executor = Executor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        timeout_s=args.timeout,
        retries=args.retries,
    )
    service = SimulationService(executor=executor)
    try:
        asyncio.run(service.serve_forever(args.host, args.port))
    except KeyboardInterrupt:
        print("inpg-serve: shutting down")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
