"""Queryable result store: the disk cache plus failure provenance.

The executor's :class:`~repro.exec.cache.ResultCache` already content-
addresses every successful run by spec fingerprint; the service needs
two more things from the same directory:

* **failures** — a skipped/failed run leaves no cache entry, so the
  store records its :class:`~repro.exec.executor.FailureRecord` (through
  the versioned serialize layer) under ``failures/<fingerprint>.json``.
  A campaign client can then ask *why* a fingerprint has no result —
  previously that provenance died with the executor process.
* **queries** — cache entries carry the spec's canonical payload, so the
  store can answer "which benchmarks/fingerprints do you hold?" without
  a separate index.

When the executor runs uncached (``NullCache``), the store degrades to
an in-memory table with the same interface — results survive for the
service's lifetime, not across restarts.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exec.cache import NullCache, ResultCache
from ..stats.metrics import RunResult
from ..stats.serialize import (
    deserialize_run_result,
    failure_record_from_dict,
    failure_record_to_dict,
)


class ResultStore:
    """Fingerprint-keyed results + failures over one cache directory."""

    def __init__(self, cache: Union[ResultCache, NullCache]):
        self.cache = cache
        #: memory fallbacks (NullCache mode, and always for failures so
        #: a dead disk never loses the current session's provenance)
        self._results: Dict[str, Dict] = {}
        self._failures: Dict[str, Dict] = {}

    @property
    def directory(self) -> Optional[Path]:
        return self.cache.directory

    @property
    def _failure_dir(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / "failures"

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def put_result(self, spec, result: RunResult, payload: Dict,
                   wall: float = 0.0) -> None:
        """Record one completed run (``payload`` = serialized result).

        When the underlying cache persists (the executor also writes
        through it), this is belt-and-braces; in ``NullCache`` mode it
        is the only copy.
        """
        self._results[spec.fingerprint] = payload
        self.cache.put(spec.fingerprint, spec.canonical_payload(), payload,
                       meta={"wall_time": wall})
        # a fresh result supersedes any stale failure for the address
        self._failures.pop(spec.fingerprint, None)

    def get_payload(self, fingerprint: str) -> Optional[Dict]:
        """The serialized result for a fingerprint, or ``None``."""
        payload = self.cache.get(fingerprint)
        if payload is not None:
            return payload
        return self._results.get(fingerprint)

    def get_result(self, fingerprint: str) -> Optional[RunResult]:
        payload = self.get_payload(fingerprint)
        if payload is None:
            return None
        return deserialize_run_result(payload)

    def __contains__(self, fingerprint: str) -> bool:
        return (fingerprint in self._results
                or fingerprint in self.cache)

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def record_failure(self, record) -> None:
        """Persist one :class:`FailureRecord` under its fingerprint."""
        payload = failure_record_to_dict(record)
        self._failures[record.fingerprint] = payload
        directory = self._failure_dir
        if directory is None:
            return
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=f".{record.fingerprint[:12]}-",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, directory / f"{record.fingerprint}.json")
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_failure_payload(self, fingerprint: str) -> Optional[Dict]:
        payload = self._failures.get(fingerprint)
        if payload is not None:
            return payload
        directory = self._failure_dir
        if directory is None:
            return None
        try:
            with open(directory / f"{fingerprint}.json", "r",
                      encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def get_failure(self, fingerprint: str):
        """The recorded :class:`FailureRecord`, or ``None``."""
        payload = self.get_failure_payload(fingerprint)
        if payload is None:
            return None
        return failure_record_from_dict(payload)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def index(self) -> List[Dict]:
        """One row per stored result: fingerprint + spec identity."""
        rows: List[Dict] = []
        seen = set()
        directory = self.directory
        if directory is not None and directory.is_dir():
            for path in sorted(directory.glob("*.json")):
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        entry = json.load(fh)
                except (OSError, ValueError):
                    continue
                fp = entry.get("fingerprint")
                spec = entry.get("spec") or {}
                if not fp:
                    continue
                seen.add(fp)
                rows.append({
                    "fingerprint": fp,
                    "benchmark": spec.get("benchmark"),
                    "primitive": spec.get("primitive"),
                    "seed": spec.get("seed"),
                    "scale": spec.get("scale"),
                })
        for fp in sorted(self._results):
            if fp not in seen:
                rows.append({"fingerprint": fp})
        return rows

    def summary(self) -> Dict:
        """The store block of the service ``stats`` message."""
        failed = set(self._failures)
        if self._failure_dir is not None and self._failure_dir.is_dir():
            failed.update(p.stem for p in self._failure_dir.glob("*.json"))
        return {
            "directory": (str(self.directory)
                          if self.directory is not None else None),
            "results": len(self.index()),
            "failures": len(failed),
        }
