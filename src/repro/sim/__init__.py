"""Deterministic event-driven simulation kernel."""

from .component import Component
from .kernel import Event, SimulationError, Simulator
from .rng import make_rng, stream_seed

__all__ = [
    "Component",
    "Event",
    "SimulationError",
    "Simulator",
    "make_rng",
    "stream_seed",
]
