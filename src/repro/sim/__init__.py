"""Deterministic event-driven simulation kernel."""

from .component import Component
from .kernel import Event, RunTimeout, SimulationError, Simulator
from .rng import make_rng, stream_seed

__all__ = [
    "Component",
    "Event",
    "RunTimeout",
    "SimulationError",
    "Simulator",
    "make_rng",
    "stream_seed",
]
