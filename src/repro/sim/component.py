"""Base class for simulated hardware/software components."""

from __future__ import annotations

from typing import Callable

from .kernel import Event, Simulator


class Component:
    """A named component bound to a :class:`Simulator`.

    Provides the scheduling shorthand every model block uses and a stable
    ``name`` for tracing.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.cycle

    def after(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` cycles in the future."""
        return self.sim.schedule(delay, callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
