"""Base class for simulated hardware/software components."""

from __future__ import annotations

from typing import Callable

from .kernel import Event, Simulator


class Component:
    """A named component bound to a :class:`Simulator`.

    Provides the scheduling shorthand every model block uses and a stable
    ``name`` for tracing.
    """

    __slots__ = ("sim", "name")

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.cycle

    def after(self, delay: int, fn: Callable[..., None], *args) -> None:
        """Schedule ``fn(*args)`` ``delay`` cycles in the future (hot,
        non-cancellable path — see :meth:`Simulator.schedule`)."""
        self.sim.schedule(delay, fn, *args)

    def after_cancellable(
        self, delay: int, fn: Callable[..., None], *args
    ) -> Event:
        """Schedule a retractable timer ``delay`` cycles out."""
        return self.sim.schedule_cancellable(delay, fn, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
