"""Deterministic event-driven cycle simulator.

The kernel is a classic discrete-event engine operating in integer *cycles*.
Every component in the model (routers, cache controllers, threads, the OS
scheduler) schedules callbacks on a shared :class:`Simulator` instance.

Determinism matters for a reproduction: two events scheduled for the same
cycle fire in the order they were scheduled (FIFO tie-break via a sequence
number), so a run is a pure function of its configuration and seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice, ...)."""


class Event:
    """A scheduled callback.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel skips it when popped.  This is how TTL countdowns and retry
    timeouts are retracted when superseded.
    """

    __slots__ = ("cycle", "seq", "callback", "cancelled")

    def __init__(self, cycle: int, seq: int, callback: Callable[[], None]):
        self.cycle = cycle
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event dead; the kernel will skip it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(cycle={self.cycle}, seq={self.seq}, {state})"


class Simulator:
    """Integer-cycle discrete event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5, lambda: print("fires at cycle 5"))
        sim.run()
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = 0
        self.cycle = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now.

        ``delay`` must be >= 0.  A zero delay fires later in the current
        cycle, after all previously scheduled work for this cycle.
        Returns the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.cycle + int(delay), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, cycle: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute ``cycle`` (>= current cycle)."""
        if cycle < self.cycle:
            raise SimulationError(
                f"cannot schedule at cycle {cycle} < current {self.cycle}"
            )
        return self.schedule(cycle - self.cycle, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains, ``until`` cycles pass, or
        ``max_events`` events are processed.  Returns the final cycle.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        processed_this_run = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if until is not None and event.cycle > until:
                    # Put it back; the caller may resume later.
                    heapq.heappush(self._queue, event)
                    self.cycle = until
                    break
                self.cycle = event.cycle
                event.callback()
                self.events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
            else:
                if until is not None and until > self.cycle:
                    self.cycle = until
        finally:
            self._running = False
        return self.cycle

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def peek_next_cycle(self) -> Optional[int]:
        """Cycle of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].cycle if self._queue else None

    def drain(self) -> List[Tuple[int, Callable[[], None]]]:
        """Remove and return all pending live events (for teardown/tests)."""
        pending = [(e.cycle, e.callback) for e in self._queue if not e.cancelled]
        self._queue.clear()
        return pending
