"""Deterministic event-driven cycle simulator.

The kernel is a classic discrete-event engine operating in integer *cycles*.
Every component in the model (routers, cache controllers, threads, the OS
scheduler) schedules callbacks on a shared :class:`Simulator` instance.

Determinism matters for a reproduction: two events scheduled for the same
cycle fire in the order they were scheduled (FIFO tie-break), so a run is
a pure function of its configuration and seed.

Performance: events live in per-cycle FIFO *buckets* — a dict mapping
cycle -> flat list of ``fn, args`` pairs (stride 2) — plus a small heap of
the distinct pending cycles.  Scheduling the common case is one dict
lookup and two list appends; the heap is only touched when a new cycle
first appears, so the number of heap operations scales with the number of
distinct cycles rather than the number of events (a fig12 run schedules
~6.5M events across ~400k cycles).  Bucket order *is* FIFO order, which
preserves the exact tie-break semantics of the earlier single-heap
implementation.  Cancellable timers (the rare case: TTL countdowns,
retractable timeouts) go through :meth:`Simulator.schedule_cancellable`,
which allocates an :class:`Event` stored as a ``_CANCELLABLE, event``
pair; cancelled entries are lazily skipped and the buckets are compacted
when corpses pile up (lock-retry storms re-arm TTLs constantly).
"""

from __future__ import annotations

import heapq
from functools import partial
from heapq import heappush
from sys import maxsize
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

# Re-homed into the unified hierarchy (repro.errors); imported here so the
# historical paths ``repro.sim.kernel.SimulationError`` / ``repro.sim
# .SimulationError`` keep working.
from ..errors import RunTimeout, SimulationError

__all__ = ["Event", "RunTimeout", "SimulationError", "Simulator"]


class Event:
    """A cancellable scheduled callback.

    Only :meth:`Simulator.schedule_cancellable` creates these;
    :meth:`cancel` marks the event dead and the kernel skips it when
    reached (or removes it during queue compaction).  This is how TTL
    countdowns and retry timeouts are retracted when superseded.
    """

    __slots__ = ("cycle", "seq", "fn", "args", "cancelled", "_dead", "_sim")

    def __init__(
        self,
        cycle: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
        sim: Optional["Simulator"] = None,
    ):
        self.cycle = cycle
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: fired or already reaped — cancel() becomes a no-op
        self._dead = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark this event dead; the kernel will skip it."""
        if self.cancelled or self._dead:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(cycle={self.cycle}, seq={self.seq}, {state})"


class _Cancellable:
    """Marker stored in the ``fn`` slot of cancellable bucket entries."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cancellable>"


#: singleton marker: a bucket entry ``_CANCELLABLE, event`` wraps an
#: :class:`Event`; every other entry is a plain ``fn, args`` pair.
_CANCELLABLE = _Cancellable()


class Simulator:
    """Integer-cycle discrete event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5, print, "fires at cycle 5")
        sim.run()
    """

    #: compact the buckets once at least this many corpses accumulate
    #: *and* they make up at least half of the queued entries
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        #: cycle -> flat FIFO bucket [fn0, args0, fn1, args1, ...]
        self._buckets: Dict[int, list] = {}
        #: heap of the distinct cycles present in ``_buckets``
        self._cycles: List[int] = []
        #: bucket currently being executed by run() — compaction must
        #: leave it alone (the run loop iterates it by index)
        self._active_bucket: Optional[list] = None
        self._seq = 0
        self.cycle = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self._cancelled = 0
        self._compactions = 0
        #: cycle-batched co-simulated engine (Simulator.attach_stepper)
        self._stepper = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., None], *args) -> None:
        """Schedule ``fn(*args)`` to fire ``delay`` cycles from now.

        ``delay`` must be >= 0.  A zero delay fires later in the current
        cycle, after all previously scheduled work for this cycle.  This
        is the allocation-free hot path: the entry cannot be cancelled
        (use :meth:`schedule_cancellable` for retractable timers).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if delay.__class__ is not int:
            delay = int(delay)
        cycle = self.cycle + delay
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [fn, args]
            heappush(self._cycles, cycle)
        else:
            bucket.append(fn)
            bucket.append(args)

    def schedule_at(self, cycle: int, fn: Callable[..., None], *args) -> None:
        """Schedule ``fn(*args)`` at an absolute ``cycle`` (>= current cycle)."""
        if cycle < self.cycle:
            raise SimulationError(
                f"cannot schedule at cycle {cycle} < current {self.cycle}"
            )
        self.schedule(cycle - self.cycle, fn, *args)

    def schedule_cancellable(
        self, delay: int, fn: Callable[..., None], *args
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` cycles; returns the
        :class:`Event`, which may be cancelled until it fires."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        cycle = self.cycle + int(delay)
        event = Event(cycle, self._seq, fn, args, sim=self)
        self._seq += 1
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [_CANCELLABLE, event]
            heapq.heappush(self._cycles, cycle)
        else:
            bucket.append(_CANCELLABLE)
            bucket.append(event)
        return event

    def attach_stepper(self, stepper) -> None:
        """Register a cycle-batched engine co-simulated with the run loop.

        A stepper exposes ``next_cycle() -> Optional[int]`` (the cycle of
        its next pending work) and ``advance_n(limit) -> int`` (advance
        through every pending cycle <= ``limit``, returning how many
        emulated events were processed — folded into
        :attr:`events_processed`).  The run loop advances the stepper
        *before* processing an event bucket at the same cycle, one
        stepper cycle per iteration, so callbacks the stepper triggers
        (delivery handlers scheduling kernel events) interleave exactly
        as per-event scheduling would.
        """
        if self._stepper is not None and self._stepper is not stepper:
            raise SimulationError("a stepper is already attached")
        self._stepper = stepper

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Run until the event queue drains, ``until`` cycles pass, or
        ``max_events`` events are processed.  Returns the final cycle.

        ``deadline`` is an absolute ``time.perf_counter()`` timestamp:
        once the wall clock passes it the kernel raises
        :class:`~repro.errors.RunTimeout` between cycle batches.  This is
        the executor's per-run wall-clock budget hook; the check is
        skipped entirely (one ``None`` test per cycle batch) when no
        deadline is set.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        buckets = self._buckets
        cycles = self._cycles
        heappop = heapq.heappop
        canc = _CANCELLABLE
        events = self.events_processed
        processed = 0
        limit = maxsize if max_events is None else max_events
        stepper = self._stepper
        try:
            while True:
                if self._stopped:
                    break
                if deadline is not None and perf_counter() >= deadline:
                    raise RunTimeout(
                        f"wall-clock budget exhausted at cycle {self.cycle} "
                        f"({events:,} events processed)",
                        cycle=self.cycle,
                    )
                knext = cycles[0] if cycles else None
                if stepper is not None:
                    # kernel-first at equal cycles: sends scheduled via
                    # ``schedule_at(c, ...)`` land before cycle-c router
                    # ticks, exactly as the event engine orders its
                    # bucket.  One stepper cycle per iteration, so work
                    # the stepper triggers (delivery handlers scheduling
                    # events) is re-examined before it advances again.
                    snext = stepper.next_cycle()
                    if (
                        snext is not None
                        and (until is None or snext <= until)
                        and (knext is None or snext < knext)
                    ):
                        n = stepper.advance_n(snext)
                        events += n
                        processed += n
                        if processed >= limit:
                            break
                        continue
                if knext is None:
                    # drained (any remaining stepper work lies beyond
                    # ``until``): fast-forward like the pure-event loop
                    if until is not None and until > self.cycle:
                        self.cycle = until
                    break
                cycle = knext
                bucket = buckets[cycle]
                # reap head corpses before they can advance the clock
                i = 0
                n = len(bucket)
                while i < n and bucket[i] is canc and bucket[i + 1].cancelled:
                    bucket[i + 1]._dead = True
                    self._cancelled -= 1
                    i += 2
                if i == n:
                    del buckets[cycle]
                    heappop(cycles)
                    continue
                if i:
                    del bucket[:i]
                if until is not None and cycle > until:
                    # Leave the queue intact; the caller may resume later.
                    self.cycle = until
                    break
                # Batch every event of this cycle: the clock advances
                # once, then entries run in FIFO (append) order —
                # including zero-delay events scheduled by the batch
                # itself, which land in this same bucket.
                self.cycle = cycle
                self._active_bucket = bucket
                halted = False
                i = 0
                try:
                    while i < len(bucket):
                        fn = bucket[i]
                        arg = bucket[i + 1]
                        i += 2
                        if fn is canc:
                            if arg.cancelled:
                                self._cancelled -= 1
                                continue
                            arg._dead = True
                            arg.fn(*arg.args)
                        else:
                            fn(*arg)
                        events += 1
                        processed += 1
                        if self._stopped or processed >= limit:
                            halted = True
                            break
                except BaseException:
                    # keep the unprocessed suffix resumable
                    del bucket[:i]
                    if not bucket:
                        del buckets[cycle]
                        heappop(cycles)
                    raise
                if halted:
                    del bucket[:i]
                    if not bucket:
                        del buckets[cycle]
                        heappop(cycles)
                    break
                del buckets[cycle]
                heappop(cycles)
        finally:
            self._active_bucket = None
            self._running = False
            self.events_processed = events
        return self.cycle

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= self.pending_events
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the buckets (threshold-triggered).

        Mutates every bucket *in place* and leaves the bucket currently
        being executed untouched: :meth:`run` iterates the active bucket
        by index (and holds local aliases of the bucket dict and cycle
        heap), so a TTL cancel inside an event callback triggering
        compaction mid-run must not shift entries under the run loop or
        rebind the containers it reads.  Corpses in the active bucket
        stay counted in ``_cancelled`` and are reaped when reached.
        """
        buckets = self._buckets
        active = self._active_bucket
        canc = _CANCELLABLE
        reaped = 0
        emptied = []
        for cycle, bucket in buckets.items():
            if bucket is active:
                continue
            live: list = []
            append = live.append
            for i in range(0, len(bucket), 2):
                fn = bucket[i]
                arg = bucket[i + 1]
                if fn is canc and arg.cancelled:
                    arg._dead = True
                    reaped += 1
                else:
                    append(fn)
                    append(arg)
            if live:
                if len(live) != len(bucket):
                    bucket[:] = live
            else:
                emptied.append(cycle)
        for cycle in emptied:
            del buckets[cycle]
        if emptied:
            self._cycles[:] = list(buckets)
            heapq.heapify(self._cycles)
        self._cancelled -= reaped
        self._compactions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def compactions(self) -> int:
        """Threshold-triggered queue compactions so far (read-only; the
        ``repro.obs`` registry reads this as the ``sim/compactions``
        gauge)."""
        return self._compactions

    @property
    def pending_events(self) -> int:
        """Number of queued entries, including cancelled corpses awaiting
        lazy deletion (see :attr:`live_pending_events`)."""
        total = 0
        for bucket in self._buckets.values():
            total += len(bucket)
        return total // 2

    @property
    def live_pending_events(self) -> int:
        """Number of queued events that will actually fire."""
        return self.pending_events - self._cancelled

    def peek_next_cycle(self) -> Optional[int]:
        """Cycle of the next live event, or ``None`` if the queue is empty."""
        buckets = self._buckets
        cycles = self._cycles
        canc = _CANCELLABLE
        while cycles:
            cycle = cycles[0]
            bucket = buckets[cycle]
            i = 0
            n = len(bucket)
            while i < n and bucket[i] is canc and bucket[i + 1].cancelled:
                bucket[i + 1]._dead = True
                self._cancelled -= 1
                i += 2
            if i:
                del bucket[:i]
            if bucket:
                return cycle
            del buckets[cycle]
            heapq.heappop(cycles)
        return None

    def drain(self) -> List[Tuple[int, Callable[[], None]]]:
        """Remove and return all pending live events (for teardown/tests)."""
        pending: List[Tuple[int, Callable[[], None]]] = []
        canc = _CANCELLABLE
        for cycle in sorted(self._buckets):
            bucket = self._buckets[cycle]
            for i in range(0, len(bucket), 2):
                fn = bucket[i]
                arg = bucket[i + 1]
                if fn is canc:
                    if arg.cancelled:
                        continue
                    arg._dead = True
                    pending.append(
                        (cycle,
                         partial(arg.fn, *arg.args) if arg.args else arg.fn)
                    )
                else:
                    pending.append(
                        (cycle, partial(fn, *arg) if arg else fn)
                    )
        self._buckets.clear()
        self._cycles.clear()
        self._cancelled = 0
        return pending
