"""Deterministic event-driven cycle simulator.

The kernel is a classic discrete-event engine operating in integer *cycles*.
Every component in the model (routers, cache controllers, threads, the OS
scheduler) schedules callbacks on a shared :class:`Simulator` instance.

Determinism matters for a reproduction: two events scheduled for the same
cycle fire in the order they were scheduled (FIFO tie-break via a sequence
number), so a run is a pure function of its configuration and seed.

Performance: the hot scheduling path stores plain tuples
``(cycle, seq, fn, args)`` on the heap — tuple comparison happens in C and
never reaches the payload because ``seq`` is unique — and
:meth:`Simulator.schedule` accepts ``*args`` so callers pass bound methods
plus arguments instead of building a closure per event.  Cancellable
timers (the rare case: TTL countdowns, retractable timeouts) go through
:meth:`Simulator.schedule_cancellable`, which still allocates an
:class:`Event`; cancelled entries are lazily skipped and the queue is
compacted when corpses pile up (lock-retry storms re-arm TTLs constantly).
"""

from __future__ import annotations

import heapq
from functools import partial
from time import perf_counter
from typing import Callable, List, Optional, Tuple

# Re-homed into the unified hierarchy (repro.errors); imported here so the
# historical paths ``repro.sim.kernel.SimulationError`` / ``repro.sim
# .SimulationError`` keep working.
from ..errors import RunTimeout, SimulationError

__all__ = ["Event", "RunTimeout", "SimulationError", "Simulator"]


class Event:
    """A cancellable scheduled callback.

    Only :meth:`Simulator.schedule_cancellable` creates these;
    :meth:`cancel` marks the event dead and the kernel skips it when
    popped (or removes it during queue compaction).  This is how TTL
    countdowns and retry timeouts are retracted when superseded.
    """

    __slots__ = ("cycle", "seq", "fn", "args", "cancelled", "_dead", "_sim")

    def __init__(
        self,
        cycle: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
        sim: Optional["Simulator"] = None,
    ):
        self.cycle = cycle
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: fired or already reaped — cancel() becomes a no-op
        self._dead = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark this event dead; the kernel will skip it."""
        if self.cancelled or self._dead:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(cycle={self.cycle}, seq={self.seq}, {state})"


#: Heap entries are ``(cycle, seq, fn, args)`` for the fast path and
#: ``(cycle, seq, event)`` for cancellable timers; ``seq`` is unique so
#: heap comparisons never look past it.
_Entry = tuple


class Simulator:
    """Integer-cycle discrete event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5, print, "fires at cycle 5")
        sim.run()
    """

    #: compact the queue once at least this many corpses accumulate
    #: *and* they make up at least half of the queue
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._queue: List[_Entry] = []
        self._seq = 0
        self.cycle = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self._cancelled = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., None], *args) -> None:
        """Schedule ``fn(*args)`` to fire ``delay`` cycles from now.

        ``delay`` must be >= 0.  A zero delay fires later in the current
        cycle, after all previously scheduled work for this cycle.  This
        is the allocation-free hot path: the entry cannot be cancelled
        (use :meth:`schedule_cancellable` for retractable timers).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.cycle + int(delay), self._seq, fn, args)
        )
        self._seq += 1

    def schedule_at(self, cycle: int, fn: Callable[..., None], *args) -> None:
        """Schedule ``fn(*args)`` at an absolute ``cycle`` (>= current cycle)."""
        if cycle < self.cycle:
            raise SimulationError(
                f"cannot schedule at cycle {cycle} < current {self.cycle}"
            )
        self.schedule(cycle - self.cycle, fn, *args)

    def schedule_cancellable(
        self, delay: int, fn: Callable[..., None], *args
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` cycles; returns the
        :class:`Event`, which may be cancelled until it fires."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.cycle + int(delay), self._seq, fn, args, sim=self)
        heapq.heappush(self._queue, (event.cycle, self._seq, event))
        self._seq += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Run until the event queue drains, ``until`` cycles pass, or
        ``max_events`` events are processed.  Returns the final cycle.

        ``deadline`` is an absolute ``time.perf_counter()`` timestamp:
        once the wall clock passes it the kernel raises
        :class:`~repro.errors.RunTimeout` between cycle batches.  This is
        the executor's per-run wall-clock budget hook; the check is
        skipped entirely (one ``None`` test per cycle batch) when no
        deadline is set.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        try:
            while queue:
                if self._stopped:
                    break
                if deadline is not None and perf_counter() >= deadline:
                    raise RunTimeout(
                        f"wall-clock budget exhausted at cycle {self.cycle} "
                        f"({self.events_processed:,} events processed)",
                        cycle=self.cycle,
                    )
                head = queue[0]
                if len(head) == 3 and head[2].cancelled:
                    # reap head corpses before they can advance the clock
                    pop(queue)
                    self._cancelled -= 1
                    continue
                cycle = head[0]
                if until is not None and cycle > until:
                    # Leave the queue intact; the caller may resume later.
                    self.cycle = until
                    break
                # Batch every event of this cycle: the clock advances
                # once, then entries pop in FIFO (seq) order — including
                # zero-delay events scheduled by the batch itself.
                self.cycle = cycle
                halted = False
                while queue and queue[0][0] == cycle:
                    entry = pop(queue)
                    if len(entry) == 4:
                        entry[2](*entry[3])
                    else:
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event._dead = True
                        event.fn(*event.args)
                    self.events_processed += 1
                    processed += 1
                    if self._stopped or (
                        max_events is not None and processed >= max_events
                    ):
                        halted = True
                        break
                if halted:
                    break
            else:
                if until is not None and until > self.cycle:
                    self.cycle = until
        finally:
            self._running = False
        return self.cycle

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (threshold-triggered).

        Rebuilds the queue *in place*: :meth:`run` iterates through a
        local alias of the queue list, so rebinding ``self._queue`` here
        (e.g. when a TTL cancel inside an event callback triggers
        compaction mid-run) would strand every subsequently scheduled
        event in a list the run loop never reads.
        """
        queue = self._queue
        live: List[_Entry] = []
        for entry in queue:
            if len(entry) == 3 and entry[2].cancelled:
                entry[2]._dead = True
            else:
                live.append(entry)
        queue[:] = live
        heapq.heapify(queue)
        self._cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def compactions(self) -> int:
        """Threshold-triggered queue compactions so far (read-only; the
        ``repro.obs`` registry reads this as the ``sim/compactions``
        gauge)."""
        return self._compactions

    @property
    def pending_events(self) -> int:
        """Number of queued entries, including cancelled corpses awaiting
        lazy deletion (see :attr:`live_pending_events`)."""
        return len(self._queue)

    @property
    def live_pending_events(self) -> int:
        """Number of queued events that will actually fire."""
        return len(self._queue) - self._cancelled

    def peek_next_cycle(self) -> Optional[int]:
        """Cycle of the next live event, or ``None`` if the queue is empty."""
        queue = self._queue
        while queue and len(queue[0]) == 3 and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        return queue[0][0] if queue else None

    def drain(self) -> List[Tuple[int, Callable[[], None]]]:
        """Remove and return all pending live events (for teardown/tests)."""
        pending: List[Tuple[int, Callable[[], None]]] = []
        for entry in sorted(self._queue, key=lambda e: e[:2]):
            if len(entry) == 4:
                cycle, _, fn, args = entry
                pending.append((cycle, partial(fn, *args) if args else fn))
            elif not entry[2].cancelled:
                event = entry[2]
                event._dead = True
                pending.append(
                    (event.cycle,
                     partial(event.fn, *event.args) if event.args
                     else event.fn)
                )
        self._queue.clear()
        self._cancelled = 0
        return pending
