"""Seeded random streams for deterministic workload generation.

Each consumer gets its own :class:`random.Random` derived from a master seed
and a stream label, so adding a new random consumer never perturbs the draws
seen by existing ones (a classic simulation-reproducibility pitfall).
"""

from __future__ import annotations

import random
import zlib


def stream_seed(master_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a ``label``."""
    return (master_seed * 0x9E3779B97F4A7C15 + zlib.crc32(label.encode())) & (
        (1 << 64) - 1
    )


def make_rng(master_seed: int, label: str) -> random.Random:
    """Return an independent, reproducible RNG stream."""
    return random.Random(stream_seed(master_seed, label))
