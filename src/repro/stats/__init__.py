"""Measurement and accounting: coherence stats, timelines, run metrics."""

from .coherence_stats import CoherenceStats, InvRecord, LockTxnRecord
from .export import (
    render_gantt,
    render_mesh_heat_map,
    run_result_to_dict,
    to_csv,
    to_json,
)
from .histogram import Histogram
from .metrics import RunResult, ThreadMetrics
from .serialize import (
    RESULT_SCHEMA_VERSION,
    deserialize_run_result,
    serialize_run_result,
)
from .timeline import PHASES, PhaseInterval, Timeline

__all__ = [
    "CoherenceStats",
    "Histogram",
    "RESULT_SCHEMA_VERSION",
    "InvRecord",
    "LockTxnRecord",
    "PHASES",
    "PhaseInterval",
    "RunResult",
    "ThreadMetrics",
    "Timeline",
    "deserialize_run_result",
    "render_gantt",
    "render_mesh_heat_map",
    "run_result_to_dict",
    "serialize_run_result",
    "to_csv",
    "to_json",
]
