"""Measurement and accounting: coherence stats, timelines, run metrics."""

from .coherence_stats import CoherenceStats, InvRecord, LockTxnRecord
from .export import (
    render_gantt,
    render_mesh_heat_map,
    run_result_to_dict,
    to_csv,
    to_json,
)
from .histogram import Histogram
from .metrics import RunResult, ThreadMetrics
from .timeline import PHASES, PhaseInterval, Timeline

__all__ = [
    "CoherenceStats",
    "Histogram",
    "InvRecord",
    "LockTxnRecord",
    "PHASES",
    "PhaseInterval",
    "RunResult",
    "ThreadMetrics",
    "Timeline",
    "render_gantt",
    "render_mesh_heat_map",
    "run_result_to_dict",
    "to_csv",
    "to_json",
]
