"""Result exporters and ASCII renderers.

Turns :class:`~repro.stats.metrics.RunResult` objects into JSON/CSV for
external analysis, and renders Figure 9-style per-thread phase timelines
(Gantt charts) and Figure 10a-style mesh heat maps as ASCII — useful in
terminals and in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from .metrics import RunResult
from .timeline import PHASES, Timeline

#: glyphs for the Gantt renderer, one per phase
_PHASE_GLYPHS = {"parallel": ".", "coh": "#", "cse": "C"}


def run_result_to_dict(result: RunResult) -> Dict:
    """A JSON-serializable summary of one run."""
    return {
        "mechanism": result.mechanism,
        "primitive": result.primitive,
        "benchmark": result.benchmark,
        "roi_cycles": result.roi_cycles,
        "cs_completed": result.cs_completed,
        "total_coh": result.total_coh,
        "total_cse": result.total_cse,
        "lco_fraction": result.lco_fraction,
        "mean_inv_rtt": result.coherence.mean_inv_rtt,
        "max_inv_rtt": result.coherence.max_inv_rtt,
        "inv_rtt_by_kind": result.coherence.mean_inv_rtt_by_kind(),
        "os_sleeps": result.os_sleeps,
        "os_wakeups": result.os_wakeups,
        "network_mean_latency": result.network_mean_latency,
        "network_packets": result.network_packets,
        "threads": [
            {
                "thread": t.thread,
                "parallel": t.parallel_cycles,
                "coh": t.coh_cycles,
                "cse": t.cse_cycles,
                "cs_completed": t.cs_completed,
            }
            for t in result.threads
        ],
    }


def to_json(results: Sequence[RunResult], indent: int = 2) -> str:
    """Serialize several runs to a JSON array."""
    return json.dumps([run_result_to_dict(r) for r in results], indent=indent)


def to_csv(results: Sequence[RunResult]) -> str:
    """One CSV row of headline metrics per run."""
    fields = [
        "benchmark", "mechanism", "primitive", "roi_cycles", "cs_completed",
        "total_coh", "total_cse", "lco_fraction", "mean_inv_rtt",
        "os_sleeps",
    ]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for result in results:
        row = run_result_to_dict(result)
        writer.writerow({k: row[k] for k in fields})
    return buf.getvalue()


def render_gantt(
    timeline: Timeline,
    threads: Sequence[int],
    window: Optional[Sequence[int]] = None,
    width: int = 80,
) -> str:
    """Figure 9-style ASCII timing diagram.

    One row per thread; each column is a bucket of cycles coloured by the
    phase that dominates it: ``.`` parallel, ``#`` COH, ``C`` CSE.
    """
    if window is None:
        end = max((iv.end for iv in timeline.intervals), default=0)
        window = (0, max(1, end))
    lo, hi = window
    span = max(1, hi - lo)
    bucket = max(1, span // width)
    lines = [
        f"cycles {lo:,} .. {hi:,}  ({bucket} cycles/column; "
        f"'.'=parallel '#'=COH 'C'=CSE)"
    ]
    for thread in threads:
        row = []
        for col in range(min(width, (span + bucket - 1) // bucket)):
            b_lo = lo + col * bucket
            b_hi = min(hi, b_lo + bucket)
            best_phase, best = " ", 0
            for phase in PHASES:
                cycles = timeline.phase_cycles(
                    phase, window=(b_lo, b_hi), threads=[thread]
                )
                if cycles > best:
                    best, best_phase = cycles, _PHASE_GLYPHS[phase]
            row.append(best_phase)
        lines.append(f"t{thread:<3}|{''.join(row)}|")
    return "\n".join(lines)


def render_mesh_heat_map(
    per_node: Dict[int, float], width: int, height: int,
    title: str = "", fmt: str = "{:6.1f}",
) -> str:
    """Figure 10a-style per-node value map for a width x height mesh."""
    lines = [title] if title else []
    for y in range(height):
        row = [
            fmt.format(per_node.get(y * width + x, 0.0))
            for x in range(width)
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)
