"""Tiny fixed-bin histogram utility used by the figure harnesses."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class Histogram:
    """Bins non-negative integer samples into fixed-width buckets."""

    def __init__(self, bin_width: int = 5):
        if bin_width < 1:
            raise ValueError("bin width must be >= 1")
        self.bin_width = bin_width
        self._bins: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_sample = 0

    def add(self, sample: int) -> None:
        if sample < 0:
            raise ValueError("histogram samples must be non-negative")
        start = (sample // self.bin_width) * self.bin_width
        self._bins[start] = self._bins.get(start, 0) + 1
        self.count += 1
        self.total += sample
        self.max_sample = max(self.max_sample, sample)

    def extend(self, samples: Iterable[int]) -> None:
        for s in samples:
            self.add(s)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bins(self) -> List[Tuple[int, int]]:
        """Sorted (bin_start, count) pairs."""
        return sorted(self._bins.items())

    def render(self, width: int = 40) -> str:
        """ASCII rendering, one row per bin."""
        rows = []
        peak = max(self._bins.values(), default=1)
        for start, count in self.bins():
            bar = "#" * max(1, int(width * count / peak))
            rows.append(f"{start:>5}-{start + self.bin_width - 1:<5} {count:>6} {bar}")
        return "\n".join(rows)
