"""Aggregated per-run metrics (the quantities the paper's figures report)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .coherence_stats import CoherenceStats
from .timeline import Timeline


@dataclass
class ThreadMetrics:
    """Accumulated per-thread phase totals."""

    thread: int
    parallel_cycles: int = 0
    coh_cycles: int = 0
    cse_cycles: int = 0
    cs_completed: int = 0
    sleeps: int = 0

    @property
    def total_cycles(self) -> int:
        return self.parallel_cycles + self.coh_cycles + self.cse_cycles


@dataclass
class RunResult:
    """Everything measured in one ROI simulation."""

    mechanism: str
    primitive: str
    benchmark: str
    roi_cycles: int
    threads: List[ThreadMetrics]
    coherence: CoherenceStats
    timeline: Timeline
    network_mean_latency: float = 0.0
    network_packets: int = 0
    os_sleeps: int = 0
    os_wakeups: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    #: observability payload (``repro.obs.Observation.payload()``): the
    #: counters snapshot plus, when tracing, the trace ring.  ``None`` on
    #: unobserved runs.
    obs: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Derived quantities used across the figures
    # ------------------------------------------------------------------
    @property
    def total_coh(self) -> int:
        """Total competition overhead cycles, summed over threads."""
        return sum(t.coh_cycles for t in self.threads)

    @property
    def total_cse(self) -> int:
        """Total critical-section execution cycles, summed over threads."""
        return sum(t.cse_cycles for t in self.threads)

    @property
    def total_cs_time(self) -> int:
        """COH + CSE (the paper's Figure 8b stacking)."""
        return self.total_coh + self.total_cse

    @property
    def cs_completed(self) -> int:
        return sum(t.cs_completed for t in self.threads)

    @property
    def avg_cycles_per_cs(self) -> float:
        if self.cs_completed == 0:
            return 0.0
        return self.total_cse / self.cs_completed

    @property
    def lco_fraction(self) -> float:
        """LCO as a fraction of ROI runtime (Figure 2's metric).

        Measured as interval-union coverage: the fraction of the ROI
        during which at least one lock-coherence transaction was open at
        a home node.  Per-lock transactions serialize, so for one hot
        lock this equals the summed transaction time; with several locks
        the union avoids double-counting overlap.
        """
        if self.roi_cycles == 0:
            return 0.0
        intervals = sorted(
            (t.start, t.commit) for t in self.coherence.lock_txns
        )
        covered = 0
        cur_start, cur_end = None, None
        for start, end in intervals:
            if cur_end is None or start > cur_end:
                if cur_end is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_end is not None:
            covered += cur_end - cur_start
        return min(1.0, covered / self.roi_cycles)

    def speedup_vs(self, baseline: "RunResult") -> float:
        """ROI speedup of this run relative to ``baseline``."""
        if self.roi_cycles == 0:
            return float("inf")
        return baseline.roi_cycles / self.roi_cycles

    def cs_expedition_vs(self, baseline: "RunResult") -> float:
        """Per-CS (COH+CSE) acceleration relative to ``baseline`` (Fig 11)."""
        mine = self.total_cs_time / max(1, self.cs_completed)
        theirs = baseline.total_cs_time / max(1, baseline.cs_completed)
        if mine == 0:
            return float("inf")
        return theirs / mine

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers (for tables and tests)."""
        return {
            "roi_cycles": float(self.roi_cycles),
            "cs_completed": float(self.cs_completed),
            "total_coh": float(self.total_coh),
            "total_cse": float(self.total_cse),
            "lco_fraction": self.lco_fraction,
            "mean_inv_rtt": self.coherence.mean_inv_rtt,
            "max_inv_rtt": float(self.coherence.max_inv_rtt),
            "os_sleeps": float(self.os_sleeps),
            "net_mean_latency": self.network_mean_latency,
        }
