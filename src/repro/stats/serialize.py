"""Lossless (de)serialization of run results.

:mod:`repro.stats.export` renders *summaries* for humans; this module is
the machine counterpart: a stable, versioned, JSON-compatible encoding of
:class:`~repro.stats.metrics.RunResult` and everything it aggregates
(:class:`ThreadMetrics`, :class:`CoherenceStats`, :class:`Timeline`), so
results can cross process boundaries (parallel executor workers) and
survive on disk (the persistent run cache) without losing any field the
figure harnesses consume.

``RESULT_SCHEMA_VERSION`` is bumped whenever the encoding changes shape;
consumers (the disk cache) treat entries written under a different
version as absent rather than attempting to read them.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from typing import Dict, List

from .coherence_stats import CoherenceStats, InvRecord, LockTxnRecord
from .metrics import RunResult, ThreadMetrics
from .timeline import PhaseInterval, Timeline

#: bump when any ``*_to_dict`` layout below changes shape
#: (v2: ``RunResult.obs`` observability payload added)
RESULT_SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# ThreadMetrics
# ----------------------------------------------------------------------
def thread_metrics_to_dict(metrics: ThreadMetrics) -> Dict:
    return {
        "thread": metrics.thread,
        "parallel_cycles": metrics.parallel_cycles,
        "coh_cycles": metrics.coh_cycles,
        "cse_cycles": metrics.cse_cycles,
        "cs_completed": metrics.cs_completed,
        "sleeps": metrics.sleeps,
    }


def thread_metrics_from_dict(payload: Dict) -> ThreadMetrics:
    return ThreadMetrics(
        thread=payload["thread"],
        parallel_cycles=payload["parallel_cycles"],
        coh_cycles=payload["coh_cycles"],
        cse_cycles=payload["cse_cycles"],
        cs_completed=payload["cs_completed"],
        sleeps=payload["sleeps"],
    )


# ----------------------------------------------------------------------
# CoherenceStats
# ----------------------------------------------------------------------
def coherence_stats_to_dict(stats: CoherenceStats) -> Dict:
    """Encode every *completed* record; open-transaction scratch state is
    transient bookkeeping and is always empty once a run has finished."""
    return {
        "msg_counts": dict(stats.msg_counts),
        "inv_records": [
            [r.target_core, r.created, r.consumed, 1 if r.early else 0]
            for r in stats.inv_records
        ],
        "lock_txns": [
            [t.addr, t.winner, t.start, t.commit, t.invs_sent,
             t.early_acks_used]
            for t in stats.lock_txns
        ],
        "early_invs_generated": stats.early_invs_generated,
        "getx_stopped": stats.getx_stopped,
        "barrier_table_overflows": stats.barrier_table_overflows,
        "early_acks_consumed_before_txn": stats.early_acks_consumed_before_txn,
    }


def coherence_stats_from_dict(payload: Dict) -> CoherenceStats:
    stats = CoherenceStats()
    stats.msg_counts = Counter(payload["msg_counts"])
    stats.inv_records = [
        InvRecord(target_core=r[0], created=r[1], consumed=r[2],
                  early=bool(r[3]))
        for r in payload["inv_records"]
    ]
    stats.lock_txns = [
        LockTxnRecord(addr=t[0], winner=t[1], start=t[2], commit=t[3],
                      invs_sent=t[4], early_acks_used=t[5])
        for t in payload["lock_txns"]
    ]
    stats.early_invs_generated = payload["early_invs_generated"]
    stats.getx_stopped = payload["getx_stopped"]
    stats.barrier_table_overflows = payload["barrier_table_overflows"]
    stats.early_acks_consumed_before_txn = (
        payload["early_acks_consumed_before_txn"]
    )
    return stats


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
def timeline_to_dict(timeline: Timeline) -> Dict:
    return {
        "intervals": [
            [iv.thread, iv.phase, iv.start, iv.end]
            for iv in timeline.intervals
        ],
    }


def timeline_from_dict(payload: Dict) -> Timeline:
    timeline = Timeline()
    timeline.intervals = [
        PhaseInterval(thread=iv[0], phase=iv[1], start=iv[2], end=iv[3])
        for iv in payload["intervals"]
    ]
    return timeline


# ----------------------------------------------------------------------
# RunResult
# ----------------------------------------------------------------------
def serialize_run_result(result: RunResult) -> Dict:
    """Full-fidelity encoding (contrast ``export.run_result_to_dict``,
    which flattens to headline numbers)."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "mechanism": result.mechanism,
        "primitive": result.primitive,
        "benchmark": result.benchmark,
        "roi_cycles": result.roi_cycles,
        "threads": [thread_metrics_to_dict(t) for t in result.threads],
        "coherence": coherence_stats_to_dict(result.coherence),
        "timeline": timeline_to_dict(result.timeline),
        "network_mean_latency": result.network_mean_latency,
        "network_packets": result.network_packets,
        "os_sleeps": result.os_sleeps,
        "os_wakeups": result.os_wakeups,
        "extra": dict(result.extra),
        "obs": result.obs,
    }


def result_fingerprint(result: RunResult) -> str:
    """SHA-256 content address of a result's full serialized form.

    Two runs are bit-identical exactly when their fingerprints match —
    the acceptance check for local-vs-remote execution parity (the serve
    layer) and for cross-process determinism in general.
    """
    blob = json.dumps(
        serialize_run_result(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def deserialize_run_result(payload: Dict) -> RunResult:
    schema = payload.get("schema")
    if schema != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"result payload has schema {schema!r}, "
            f"expected {RESULT_SCHEMA_VERSION}"
        )
    return RunResult(
        mechanism=payload["mechanism"],
        primitive=payload["primitive"],
        benchmark=payload["benchmark"],
        roi_cycles=payload["roi_cycles"],
        threads=[thread_metrics_from_dict(t) for t in payload["threads"]],
        coherence=coherence_stats_from_dict(payload["coherence"]),
        timeline=timeline_from_dict(payload["timeline"]),
        network_mean_latency=payload["network_mean_latency"],
        network_packets=payload["network_packets"],
        os_sleeps=payload["os_sleeps"],
        os_wakeups=payload["os_wakeups"],
        extra=dict(payload["extra"]),
        obs=payload.get("obs"),
    )


# ----------------------------------------------------------------------
# FailureRecord (executor skip-mode provenance)
# ----------------------------------------------------------------------
def failure_record_to_dict(record) -> Dict:
    """Encode an :class:`~repro.exec.executor.FailureRecord`.

    Failed/skipped runs used to be reachable only in-process (the
    executor footer); this encoding lets them cross the serve boundary
    and sit in the result store next to successful runs, so a campaign
    client can ask *why* a fingerprint has no result.
    """
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "fingerprint": record.fingerprint,
        "label": record.label,
        "error_type": record.error_type,
        "message": record.message,
        "attempts": record.attempts,
        "wall_time": record.wall_time,
    }


def failure_record_from_dict(payload: Dict):
    """Inverse of :func:`failure_record_to_dict`."""
    from ..exec.executor import FailureRecord  # late: avoids import cycle

    schema = payload.get("schema")
    if schema != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"failure payload has schema {schema!r}, "
            f"expected {RESULT_SCHEMA_VERSION}"
        )
    return FailureRecord(
        fingerprint=payload["fingerprint"],
        label=payload["label"],
        error_type=payload["error_type"],
        message=payload["message"],
        attempts=payload["attempts"],
        wall_time=payload["wall_time"],
    )
