"""Per-thread execution phase timelines (the paper's Figure 9).

Each thread's ROI is a sequence of phase intervals:

* ``parallel`` — concurrent computation between critical sections;
* ``coh``      — competition overhead: from issuing the lock acquire to
                 holding the lock (spin retries, coherence round trips,
                 and for QSL possibly a sleep);
* ``cse``      — critical section execution, including the release.

The timeline supports windowed queries so the Figure 9 experiment can
report phase percentages and completed-CS counts over (e.g.) the first
30,000 cycles for the first 8 threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

PHASES = ("parallel", "coh", "cse")


@dataclass(frozen=True)
class PhaseInterval:
    thread: int
    phase: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start

    def overlap(self, lo: int, hi: int) -> int:
        """Cycles of this interval inside [lo, hi)."""
        return max(0, min(self.end, hi) - max(self.start, lo))


class Timeline:
    """Recorder for thread phase intervals."""

    def __init__(self) -> None:
        self.intervals: List[PhaseInterval] = []
        self._open: Dict[int, "tuple[str, int]"] = {}

    def begin(self, thread: int, phase: str, cycle: int) -> None:
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}")
        prior = self._open.get(thread)
        if prior is not None:
            self.end(thread, cycle)
        self._open[thread] = (phase, cycle)

    def end(self, thread: int, cycle: int) -> None:
        phase, start = self._open.pop(thread)
        if cycle > start:
            self.intervals.append(PhaseInterval(thread, phase, start, cycle))

    def close_all(self, cycle: int) -> None:
        for thread in list(self._open):
            self.end(thread, cycle)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def phase_cycles(
        self,
        phase: str,
        window: Optional["tuple[int, int]"] = None,
        threads: Optional[Sequence[int]] = None,
    ) -> int:
        """Total cycles spent in ``phase``, optionally windowed/filtered."""
        total = 0
        for iv in self.intervals:
            if iv.phase != phase:
                continue
            if threads is not None and iv.thread not in threads:
                continue
            if window is None:
                total += iv.duration
            else:
                total += iv.overlap(*window)
        return total

    def phase_breakdown(
        self,
        window: Optional["tuple[int, int]"] = None,
        threads: Optional[Sequence[int]] = None,
    ) -> Dict[str, float]:
        """Fraction of observed cycles per phase (sums to 1 when nonempty)."""
        totals = {
            p: self.phase_cycles(p, window=window, threads=threads) for p in PHASES
        }
        grand = sum(totals.values())
        if grand == 0:
            return {p: 0.0 for p in PHASES}
        return {p: totals[p] / grand for p in PHASES}

    def cs_completed(
        self,
        window: Optional["tuple[int, int]"] = None,
        threads: Optional[Sequence[int]] = None,
    ) -> int:
        """Critical sections whose CSE interval ended inside the window."""
        count = 0
        for iv in self.intervals:
            if iv.phase != "cse":
                continue
            if threads is not None and iv.thread not in threads:
                continue
            if window is not None and not (window[0] <= iv.end < window[1]):
                continue
            count += 1
        return count
