"""Analytical area/power/gate-count model (Figure 7)."""

from .area_power import (
    BIG_ROUTER_GATES,
    NORMAL_ROUTER_GATES,
    PACKET_GENERATOR_POWER_MW,
    RouterSynthesis,
    TileSynthesis,
    big_router_synthesis,
    chip_summary,
    normal_router_synthesis,
    packet_generator_gates,
    packet_generator_power_overhead,
)

__all__ = [
    "BIG_ROUTER_GATES",
    "NORMAL_ROUTER_GATES",
    "PACKET_GENERATOR_POWER_MW",
    "RouterSynthesis",
    "TileSynthesis",
    "big_router_synthesis",
    "chip_summary",
    "normal_router_synthesis",
    "packet_generator_gates",
    "packet_generator_power_overhead",
]
