"""Analytical synthesis model reproducing Figure 7 / Table (a).

The paper synthesizes RTL for the normal and big routers (Synopsys DC,
TSMC 40 nm LP, 2.0 GHz, 1.1 V) and floorplans a 64-core chip (Cadence SoC
Encounter).  We cannot run those tools, so this module reproduces the
*accounting*: per-structure gate budgets calibrated to the paper's
published synthesis constants, composed into the same derived quantities
the figure reports (gate/SC/net counts, cell density, power split, chip
area).  Everything here is a model, clearly labelled — the point is to
regenerate the figure's rows and let the reader vary the configuration
(e.g. the locking barrier table size) and see the overhead accounting
move consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import InpgConfig

#: Published constants from Figure 7a (TSMC 40 nm LP, typical case).
NORMAL_ROUTER_GATES = 19_900
BIG_ROUTER_GATES = 22_400
CORE_GATES = 152_500
NORMAL_ROUTER_SC = 3_600
BIG_ROUTER_SC = 4_000
CORE_SC = 23_200
NORMAL_ROUTER_NETS = 10_000
BIG_ROUTER_NETS = 11_100
CORE_NETS = 60_900
#: dynamic power, mW
CORE_POWER_MW = 623.5
NORMAL_ROUTER_POWER_MW = 84.2
BIG_ROUTER_POWER_MW = 92.6
PACKET_GENERATOR_POWER_MW = 8.4
#: areas, mm^2
CORE_AREA_MM2 = 2.03
ROUTER_TILE_AREA_MM2 = 0.21
NORMAL_ROUTER_SC_AREA_MM2 = 0.13
BIG_ROUTER_SC_AREA_MM2 = 0.14
CORE_SC_AREA_MM2 = 0.97
#: cell density (before filler insertion)
NORMAL_ROUTER_DENSITY = 0.6190
BIG_ROUTER_DENSITY = 0.6667
CORE_DENSITY = 0.4826

#: the packet generator's gate budget at the default table size
_PACKET_GENERATOR_GATES = BIG_ROUTER_GATES - NORMAL_ROUTER_GATES  # 2.5K
_DEFAULT_TABLE_ENTRIES = 16
#: roughly 90% of the generator is the locking barrier table storage
# ("with the majority coming from the locking barrier table", Section 4.2)
_TABLE_GATE_FRACTION = 0.9


@dataclass(frozen=True)
class RouterSynthesis:
    """Synthesis summary for one router instance."""

    name: str
    gates: int
    standard_cells: int
    nets: int
    dynamic_power_mw: float
    sc_area_mm2: float
    cell_density: float


@dataclass(frozen=True)
class TileSynthesis:
    """One tile: a core plus its router."""

    name: str
    router: RouterSynthesis
    core_power_mw: float = CORE_POWER_MW

    @property
    def total_power_mw(self) -> float:
        return self.core_power_mw + self.router.dynamic_power_mw


def packet_generator_gates(table_entries: int = _DEFAULT_TABLE_ENTRIES) -> int:
    """Gate cost of the packet generator for a given barrier table size.

    The storage part scales linearly with the number of lock-barrier/EI
    entries; the control logic is fixed.
    """
    if table_entries < 1:
        raise ValueError("table must have at least one entry")
    storage = _PACKET_GENERATOR_GATES * _TABLE_GATE_FRACTION
    control = _PACKET_GENERATOR_GATES * (1.0 - _TABLE_GATE_FRACTION)
    return round(control + storage * table_entries / _DEFAULT_TABLE_ENTRIES)


def normal_router_synthesis() -> RouterSynthesis:
    return RouterSynthesis(
        name="normal",
        gates=NORMAL_ROUTER_GATES,
        standard_cells=NORMAL_ROUTER_SC,
        nets=NORMAL_ROUTER_NETS,
        dynamic_power_mw=NORMAL_ROUTER_POWER_MW,
        sc_area_mm2=NORMAL_ROUTER_SC_AREA_MM2,
        cell_density=NORMAL_ROUTER_DENSITY,
    )


def big_router_synthesis(table_entries: int = _DEFAULT_TABLE_ENTRIES) -> RouterSynthesis:
    generator_gates = packet_generator_gates(table_entries)
    scale = generator_gates / _PACKET_GENERATOR_GATES
    return RouterSynthesis(
        name="big",
        gates=NORMAL_ROUTER_GATES + generator_gates,
        standard_cells=round(
            NORMAL_ROUTER_SC + (BIG_ROUTER_SC - NORMAL_ROUTER_SC) * scale
        ),
        nets=round(
            NORMAL_ROUTER_NETS + (BIG_ROUTER_NETS - NORMAL_ROUTER_NETS) * scale
        ),
        dynamic_power_mw=NORMAL_ROUTER_POWER_MW
        + PACKET_GENERATOR_POWER_MW * scale,
        sc_area_mm2=NORMAL_ROUTER_SC_AREA_MM2
        + (BIG_ROUTER_SC_AREA_MM2 - NORMAL_ROUTER_SC_AREA_MM2) * scale,
        cell_density=min(
            0.95,
            NORMAL_ROUTER_DENSITY
            + (BIG_ROUTER_DENSITY - NORMAL_ROUTER_DENSITY) * scale,
        ),
    )


def packet_generator_power_overhead() -> float:
    """Fractional power overhead of the generator over a normal router."""
    return PACKET_GENERATOR_POWER_MW / NORMAL_ROUTER_POWER_MW


def chip_summary(inpg: InpgConfig, num_tiles: int = 64) -> dict:
    """Whole-chip accounting for a given big-router deployment (Fig 7b/c)."""
    num_big = min(inpg.num_big_routers, num_tiles) if inpg.enabled else 0
    num_normal = num_tiles - num_big
    normal = normal_router_synthesis()
    big = big_router_synthesis(inpg.barrier_table_size)
    total_power = (
        num_tiles * CORE_POWER_MW
        + num_normal * normal.dynamic_power_mw
        + num_big * big.dynamic_power_mw
    )
    baseline_power = num_tiles * (CORE_POWER_MW + normal.dynamic_power_mw)
    return {
        "num_tiles": num_tiles,
        "num_big_routers": num_big,
        "num_normal_routers": num_normal,
        "router_gates_normal": normal.gates,
        "router_gates_big": big.gates,
        "packet_generator_gates": packet_generator_gates(
            inpg.barrier_table_size
        ),
        "big_tile_power_mw": CORE_POWER_MW + big.dynamic_power_mw,
        "normal_tile_power_mw": CORE_POWER_MW + normal.dynamic_power_mw,
        "total_power_w": total_power / 1000.0,
        "power_overhead_pct": 100.0 * (total_power / baseline_power - 1.0),
        "chip_area_mm2": num_tiles * (CORE_AREA_MM2 + ROUTER_TILE_AREA_MM2),
    }
