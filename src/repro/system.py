"""ManyCoreSystem: assemble and run one simulated 64-core platform.

The supported entry point is the stable facade :mod:`repro.api`::

    from repro import api

    config = api.SystemConfig().with_mechanism("inpg")
    workload = api.generate_workload("freqmine", num_threads=64, mesh_nodes=64)
    result = api.simulate(config, workload, primitive="qsl")
    print(result.summary())

Constructing :class:`ManyCoreSystem` directly remains supported for code
that needs to poke at the assembled components before running.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from .config import SystemConfig
from .errors import DeadlockError
from .coherence.memsystem import MemorySystem
from .cpu.os_model import OsModel
from .cpu.thread import WorkerThread
from .inpg.big_router import BigRouter
from .inpg.deployment import place_big_routers
from .locks.base import AddressSpace
from .locks.factory import make_lock
from .noc.network import Network
from .noc.router import Router
from .noc.topology import make_topology
from .sim import Simulator
from .stats.metrics import RunResult, ThreadMetrics
from .stats.timeline import Timeline
from .workloads.generator import Workload

if TYPE_CHECKING:  # pragma: no cover
    from .faults.plan import FaultPlan
    from .obs import Observation

# ``DeadlockError`` is re-homed in :mod:`repro.errors`; the historical
# ``repro.system.DeadlockError`` path stays importable via the import above.
__all__ = ["DeadlockError", "ManyCoreSystem", "run_benchmark"]


class ManyCoreSystem:
    """One configured instance of the simulated platform.

    ``fault_plan`` installs a deterministic :mod:`repro.faults` injector
    into the NoC; ``watchdog_cycles`` arms the liveness watchdog
    (no-progress-in-N-cycles ⇒ :class:`~repro.errors.LivelockDetected`);
    ``check_protocol`` attaches the online
    :class:`~repro.coherence.checker.ProtocolChecker`.  All three default
    off and, when off, leave the assembled system byte-identical to one
    built without them.
    """

    def __init__(
        self,
        config: SystemConfig,
        workload: Workload,
        primitive: str = "qsl",
        observe: Optional["Observation"] = None,
        fault_plan: Optional["FaultPlan"] = None,
        watchdog_cycles: Optional[int] = None,
        check_protocol: bool = False,
    ):
        if workload.num_threads > config.noc.width * config.noc.height:
            raise ValueError(
                f"{workload.num_threads} threads do not fit on a "
                f"{config.noc.width}x{config.noc.height} mesh (1 thread/core)"
            )
        self.config = config
        self.workload = workload
        self.primitive = primitive
        self.sim = Simulator()
        topo = make_topology(
            config.noc.topology, config.noc.width, config.noc.height
        )
        big_nodes = (
            place_big_routers(topo, config.inpg)
            if config.inpg.enabled
            else frozenset()
        )

        def router_factory(sim, node, network):
            if node in big_nodes:
                return BigRouter(sim, node, network, config.inpg)
            return Router(sim, node, network)

        # Ports are always priority-aware (responses outrank requests, as
        # separate virtual networks guarantee); OCOR only changes the
        # priorities lock request packets carry.
        if config.noc.flit_level:
            if config.inpg.enabled:
                raise ValueError(
                    "iNPG requires the packet-level network model; "
                    "disable noc.flit_level or inpg"
                )
            # the vector engine batches whole cycles, so there is no
            # per-event site to emit trace records from: observed runs
            # fall back to the (bit-exact) event engine reference.
            if config.noc.flit_engine == "vector" and observe is None:
                from .noc.vecflit import VectorFlitFabric

                self.network = VectorFlitFabric(self.sim, config.noc)
            elif config.noc.flit_engine == "sharded" and (
                observe is None or not observe.trace_enabled
            ):
                # counters-only observation is fine — the sharded fabric
                # folds per-shard counters at epoch boundaries — but
                # per-event tracing has no site inside a cycle batch.
                from .noc.shardflit import ShardedFlitFabric

                self.network = ShardedFlitFabric(self.sim, config.noc)
            elif config.noc.flit_engine == "sharded":
                if config.noc.shards > 1:
                    # a traced multi-shard run has no faithful fallback:
                    # refuse loudly instead of silently going
                    # single-process on the event engine.
                    from .errors import ShardConfigError

                    raise ShardConfigError(
                        "per-event tracing is unsupported with shards="
                        f"{config.noc.shards}; disable trace or run "
                        "shards=1",
                        engine="sharded",
                        shards=config.noc.shards,
                    )
                from .noc.flit_fabric import FlitFabric

                self.network = FlitFabric(self.sim, config.noc)
            else:
                from .noc.flit_fabric import FlitFabric

                self.network = FlitFabric(self.sim, config.noc)
        else:
            self.network = Network(
                self.sim,
                config.noc,
                router_factory=router_factory,
                priority_arbitration=True,
            )
        self.memsys = MemorySystem(self.sim, config, self.network)
        self.network.memsys = self.memsys
        self.os_model = OsModel(self.sim, config.os, self.memsys)
        self.addr_space = AddressSpace(self.memsys)
        self.locks = [
            make_lock(
                primitive,
                self.sim,
                self.memsys,
                self.addr_space,
                lock_id=i,
                home_node=home,
                config=config,
                os_model=self.os_model,
            )
            for i, home in enumerate(workload.lock_homes)
        ]
        self.timeline = Timeline()
        self.thread_metrics = [
            ThreadMetrics(thread=t) for t in range(workload.num_threads)
        ]
        self._remaining = workload.num_threads
        self.threads: List[WorkerThread] = [
            WorkerThread(
                self.sim,
                thread_id=t,
                core=t,
                items=workload.items[t],
                locks=self.locks,
                metrics=self.thread_metrics[t],
                timeline=self.timeline,
                on_done=self._thread_done,
            )
            for t in range(workload.num_threads)
        ]
        self._finished_cycle: Optional[int] = None
        self.faults = None
        if fault_plan is not None and fault_plan.enabled:
            from .faults.injector import FaultInjector

            self.faults = FaultInjector(fault_plan)
            self.faults.install(self.network)
            # the duplicate fault aliases one message payload across two
            # packets; recycling on first delivery would corrupt the second
            self.memsys._recycle = False
        self.watchdog = None
        if watchdog_cycles:
            from .faults.watchdog import LivenessWatchdog

            self.watchdog = LivenessWatchdog(self.sim, self, watchdog_cycles)
        self.checker = None
        if check_protocol:
            from .coherence.checker import ProtocolChecker

            self.checker = ProtocolChecker(self.sim, self.memsys)
        self.observe = observe
        if observe is not None:
            # wire-up time: gauges registered and trace emitters rebound
            # exactly once; the run itself proceeds unmodified.
            observe.attach(self)

    # ------------------------------------------------------------------
    def _thread_done(self, _thread_id: int) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self._finished_cycle = self.sim.cycle
            self.sim.stop()

    def run(
        self,
        max_cycles: int = 50_000_000,
        timeout_s: Optional[float] = None,
    ) -> RunResult:
        """Execute the ROI; returns measured :class:`RunResult`.

        ``timeout_s`` bounds the *wall clock*: past it the kernel raises
        :class:`~repro.errors.RunTimeout` mid-run (the executor's per-run
        budget; such partial runs are never cached).
        """
        for thread in self.threads:
            thread.start()
        if self.watchdog is not None:
            self.watchdog.arm()
        deadline = None
        if timeout_s is not None:
            from time import perf_counter

            deadline = perf_counter() + timeout_s
        self.sim.run(until=max_cycles, deadline=deadline)
        if self._finished_cycle is None:
            stuck = [t.thread_id for t in self.threads if not t.done]
            raise DeadlockError(
                f"ROI did not finish within {max_cycles} cycles; "
                f"threads still running: {stuck[:8]}{'...' if len(stuck) > 8 else ''} "
                f"(benchmark={self.workload.benchmark}, "
                f"primitive={self.primitive})\n" + self.diagnose()
            )
        self.timeline.close_all(self._finished_cycle)
        mechanism = self._mechanism_name()
        result = RunResult(
            # the active coherence protocol name makes campaign JSON and
            # traces self-describing across protocol ablations
            extra={
                "sim_events": float(self.sim.events_processed),
                "coherence/protocol": self.config.protocol,
            },
            mechanism=mechanism,
            primitive=self.primitive,
            benchmark=self.workload.benchmark,
            roi_cycles=self._finished_cycle,
            threads=self.thread_metrics,
            coherence=self.memsys.stats,
            timeline=self.timeline,
            network_mean_latency=self.network.mean_latency,
            network_packets=self.network.packets_delivered,
            os_sleeps=self.os_model.sleeps,
            os_wakeups=self.os_model.wakeups,
        )
        if self.faults is not None:
            for name, value in self.faults.counters().items():
                result.extra[f"faults/{name}"] = float(value)
        if self.checker is not None:
            result.extra["checker/samples"] = float(self.checker.report.samples)
            result.extra["checker/violations"] = float(
                len(self.checker.report.violations)
            )
        observe = self.observe
        if observe is not None and observe.attached:
            observe.result = result
            result.obs = observe.payload()
            for path, value in observe.counters().items():
                result.extra[f"obs/{path}"] = float(value)
        return result

    def diagnose(self) -> str:
        """A protocol-state snapshot for stuck-run debugging.

        Dumps, per lock: the committed value, directory state (owner,
        sharers, busy/queue), and every core with a pending operation,
        an armed line monitor, or a valid copy of the lock line.
        """
        lines = [f"--- diagnosis at cycle {self.sim.cycle} ---"]
        lines.append(
            f"network: injected={self.network.packets_injected} "
            f"delivered={self.network.packets_delivered} "
            f"in_flight={self.network.in_flight}"
        )
        lines.append(
            f"pending simulator events: {self.sim.live_pending_events} live "
            f"({self.sim.pending_events} queued, "
            f"{self.sim.compactions} compactions)"
        )
        mem = self.memsys
        for lock in self.locks:
            addr = lock.addr
            home = mem.home_of(addr)
            ent = mem.dirs[home].entry(addr)
            lines.append(
                f"lock {lock.lock_id} ({lock.name}) addr={addr:#x} "
                f"value={mem.read(addr)} acq={lock.acquisitions} "
                f"rel={lock.releases} | dir: owner={ent.owner} "
                f"sharers={sorted(ent.sharers)} busy={ent.busy} "
                f"queued={len(ent.queue)}"
            )
            for core, l1 in mem.l1s.items():
                state = l1.state_of(addr)
                pw = l1._pending_writes.get(addr)
                pl = addr in l1._pending_loads
                monitors = len(l1._monitors.get(addr, []))
                if state.valid or pw or pl or monitors:
                    detail = f"  core {core}: {state.value}"
                    if pw:
                        detail += (
                            f" pending-write(data={pw.have_data} "
                            f"expected={pw.expected} acked={pw.acked})"
                        )
                    if pl:
                        detail += " pending-load"
                    if monitors:
                        detail += f" monitors={monitors}"
                    lines.append(detail)
        return "\n".join(lines)

    def _mechanism_name(self) -> str:
        inpg = self.config.inpg.enabled
        ocor = self.config.ocor.enabled
        if inpg and ocor:
            return "inpg+ocor"
        if inpg:
            return "inpg"
        if ocor:
            return "ocor"
        return "original"


def run_benchmark(
    benchmark: str,
    mechanism: Optional[str] = "original",
    primitive: str = "qsl",
    config: Optional[SystemConfig] = None,
    seed: int = 2018,
    scale: float = 1.0,
    lock_homes=(),
    max_cycles: int = 50_000_000,
    observe: Optional["Observation"] = None,
    fault_plan: Optional["FaultPlan"] = None,
    watchdog_cycles: Optional[int] = None,
    check_protocol: bool = False,
    timeout_s: Optional[float] = None,
) -> RunResult:
    """One-call convenience wrapper: configure, generate, run, measure.

    ``mechanism=None`` uses ``config`` exactly as passed (for callers
    that already baked iNPG/OCOR flags into it).  The robustness knobs
    (``fault_plan``, ``watchdog_cycles``, ``check_protocol``,
    ``timeout_s``) mirror :class:`ManyCoreSystem` / :meth:`ManyCoreSystem.run`.
    """
    from .workloads.generator import generate_workload

    base = config or SystemConfig()
    cfg = base if mechanism is None else base.with_mechanism(mechanism)
    workload = generate_workload(
        benchmark,
        num_threads=cfg.num_threads,
        mesh_nodes=cfg.noc.width * cfg.noc.height,
        seed=seed,
        scale=scale,
        lock_homes=lock_homes,
    )
    system = ManyCoreSystem(
        cfg,
        workload,
        primitive=primitive,
        observe=observe,
        fault_plan=fault_plan,
        watchdog_cycles=watchdog_cycles,
        check_protocol=check_protocol,
    )
    return system.run(max_cycles=max_cycles, timeout_s=timeout_s)
