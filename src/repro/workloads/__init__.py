"""Synthetic PARSEC / SPEC OMP2012 workload profiles and generation."""

from .generator import WorkItem, Workload, generate_workload, single_lock_workload
from .profiles import (
    ALL_PROFILES,
    OMP2012,
    OMP2012_PROFILES,
    PARSEC,
    PARSEC_PROFILES,
    BenchmarkProfile,
    get_profile,
    group_of,
    grouped_profiles,
)

__all__ = [
    "ALL_PROFILES",
    "BenchmarkProfile",
    "OMP2012",
    "OMP2012_PROFILES",
    "PARSEC",
    "PARSEC_PROFILES",
    "WorkItem",
    "Workload",
    "generate_workload",
    "get_profile",
    "group_of",
    "grouped_profiles",
    "single_lock_workload",
]
