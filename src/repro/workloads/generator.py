"""Generate concrete per-thread workloads from benchmark profiles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..sim import make_rng
from .profiles import BenchmarkProfile, get_profile


@dataclass(frozen=True)
class WorkItem:
    """One loop iteration of a worker thread: compute, then one CS."""

    parallel_cycles: int
    lock_index: int
    cs_cycles: int


@dataclass
class Workload:
    """A fully materialized multi-threaded workload."""

    benchmark: str
    num_threads: int
    num_locks: int
    #: home node for each lock (index-aligned with lock_index)
    lock_homes: List[int]
    #: per-thread item sequences
    items: List[List[WorkItem]]

    @property
    def total_cs(self) -> int:
        return sum(len(seq) for seq in self.items)


def _draw(rng, mean: int, cv: float) -> int:
    """Uniform draw in [mean*(1-cv), mean*(1+cv)], at least 1 cycle."""
    lo = max(1, int(mean * (1.0 - cv)))
    hi = max(lo, int(mean * (1.0 + cv)))
    return rng.randint(lo, hi)


def generate_workload(
    benchmark: str,
    num_threads: int,
    mesh_nodes: int,
    seed: int = 2018,
    scale: float = 1.0,
    lock_homes: Sequence[int] = (),
) -> Workload:
    """Materialize the workload for ``benchmark``.

    ``scale`` multiplies the per-thread CS count (sweeps use < 1.0 to keep
    wall time down).  ``lock_homes`` overrides lock placement (the Figure
    10 microbenchmark pins the lock's home at core (5,6)).
    """
    profile = get_profile(benchmark)
    rng = make_rng(seed, f"workload/{profile.name}")
    cs_per_thread = max(1, round(profile.cs_per_thread * scale))
    if lock_homes:
        homes = list(lock_homes)
        num_locks = len(homes)
    else:
        # a small mesh cannot home more locks than it has L2 banks
        num_locks = min(profile.num_locks, mesh_nodes)
        # spread lock homes over the banks, deterministically
        candidates = list(range(mesh_nodes))
        rng_homes = make_rng(seed, f"lockhomes/{profile.name}")
        rng_homes.shuffle(candidates)
        homes = candidates[:num_locks]
    items: List[List[WorkItem]] = []
    for thread in range(num_threads):
        seq = []
        for i in range(cs_per_thread):
            seq.append(
                WorkItem(
                    parallel_cycles=_draw(
                        rng, profile.parallel_cycles_mean, profile.duration_cv
                    ),
                    lock_index=rng.randrange(num_locks),
                    cs_cycles=_draw(
                        rng, profile.cs_cycles_mean, profile.duration_cv
                    ),
                )
            )
        items.append(seq)
    return Workload(
        benchmark=profile.name,
        num_threads=num_threads,
        num_locks=num_locks,
        lock_homes=homes,
        items=items,
    )


def single_lock_workload(
    num_threads: int,
    home_node: int,
    cs_per_thread: int = 4,
    cs_cycles: int = 100,
    parallel_cycles: int = 200,
    benchmark: str = "microbench",
) -> Workload:
    """A deterministic all-threads-compete-for-one-lock microbenchmark.

    This is the Figure 10 scenario: every thread hammers one lock hosted
    at a chosen home node.
    """
    items = [
        [
            WorkItem(
                parallel_cycles=parallel_cycles,
                lock_index=0,
                cs_cycles=cs_cycles,
            )
            for _ in range(cs_per_thread)
        ]
        for _ in range(num_threads)
    ]
    return Workload(
        benchmark=benchmark,
        num_threads=num_threads,
        num_locks=1,
        lock_homes=[home_node],
        items=items,
    )
