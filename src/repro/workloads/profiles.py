"""Synthetic benchmark profiles standing in for PARSEC and SPEC OMP2012.

We cannot run the real suites (no full-system OS/binaries in this
reproduction), so each of the paper's 24 programs is represented by a
*critical-section profile*: how many critical sections each thread enters,
how long a CS runs, how much parallel computation separates them, and how
many distinct locks the program uses.  These are the only program
properties the evaluation depends on (Figure 8 characterizes the programs
exactly this way), and the values below are calibrated so that:

* the paper's short-name set matches (body, can, face, fluid, freq,
  stream, ... — footnote 5);
* fluid has many short CSs and imag fewer, longer ones (Section 5.2.1's
  examples: 81 vs 179 cycles/CS);
* sorting programs by total CS time (COH+CSE) reproduces the paper's
  Group 1 (low, 6 programs) / Group 2 (medium, 12) / Group 3 (high, 6)
  partition, with nab, bt331, dedup, kdtree, facesim and fluidanimate in
  the heavily contended group the paper highlights.

Cycle counts are scaled down ~50x from the originals so a pure-Python run
finishes in seconds; every reported quantity is a ratio or percentage,
which is invariant to this scaling (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

PARSEC = "parsec"
OMP2012 = "omp2012"


@dataclass(frozen=True)
class BenchmarkProfile:
    """Critical-section characteristics of one program."""

    name: str
    suite: str
    #: paper's short display name (footnote 5)
    short_name: str
    #: critical sections each thread executes in the modelled ROI slice
    cs_per_thread: int
    #: mean critical section body length, cycles
    cs_cycles_mean: int
    #: mean parallel-computation segment between CSs, cycles
    parallel_cycles_mean: int
    #: distinct locks the program contends on
    num_locks: int
    #: coefficient of variation for drawn durations (uniform +/- cv)
    duration_cv: float = 0.3

    @property
    def total_cs(self) -> int:
        """Total CS entries across 64 threads (Figure 8a's 'CS times')."""
        return self.cs_per_thread * 64

    @property
    def nominal_cs_time(self) -> int:
        """total CS count x mean cycles per CS — the Figure 8b sort key.

        Contention scales it further at runtime; dividing by num_locks
        approximates per-lock pressure.
        """
        return self.total_cs * self.cs_cycles_mean // self.num_locks


def _p(name, short, cs, cs_cyc, par, locks) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, suite=PARSEC, short_name=short, cs_per_thread=cs,
        cs_cycles_mean=cs_cyc, parallel_cycles_mean=par, num_locks=locks,
    )


def _o(name, short, cs, cs_cyc, par, locks) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, suite=OMP2012, short_name=short, cs_per_thread=cs,
        cs_cycles_mean=cs_cyc, parallel_cycles_mean=par, num_locks=locks,
    )


#: 10 PARSEC programs (blackscholes and swaptions excluded, footnote 4).
#: Calibrated so per-lock utilization spans light (Group 1, ~0.4), medium
#: (Group 2, ~0.9) and saturated (Group 3, ~1.4) — reproducing the
#: paper's Figure 9 phase split (parallel-majority, COH > CSE) at the
#: baseline and its Figure 8b group structure.
PARSEC_PROFILES: Tuple[BenchmarkProfile, ...] = (
    _p("bodytrack", "body", 5, 110, 1500, 9),
    _p("canneal", "can", 5, 120, 1550, 9),
    _p("dedup", "dedup", 9, 150, 1600, 5),
    _p("facesim", "face", 9, 120, 1350, 5),
    _p("ferret", "ferret", 5, 130, 1600, 9),
    _p("fluidanimate", "fluid", 10, 80, 1000, 5),
    _p("freqmine", "freq", 6, 120, 2300, 8),
    _p("raytrace", "raytrace", 3, 100, 2200, 15),
    _p("streamcluster", "stream", 5, 140, 1700, 9),
    _p("vips", "vips", 3, 90, 2100, 15),
)

#: all 14 SPEC OMP2012 programs
OMP2012_PROFILES: Tuple[BenchmarkProfile, ...] = (
    _o("applu331", "applu331", 5, 140, 1700, 9),
    _o("botsalgn", "botsalgn", 5, 120, 1500, 9),
    _o("botsspar", "botsspar", 5, 130, 1600, 9),
    _o("bt331", "bt331", 9, 140, 1500, 5),
    _o("bwaves", "bwaves", 3, 80, 2000, 15),
    _o("fma3d", "fma3d", 5, 150, 1800, 9),
    _o("ilbdc", "ilbdc", 3, 90, 2100, 15),
    _o("imagick", "imag", 5, 180, 2100, 9),
    _o("kdtree", "kdtree", 9, 100, 1200, 5),
    _o("md", "md", 6, 130, 1600, 9),
    _o("mgrid331", "mgrid331", 3, 90, 2200, 15),
    _o("nab", "nab", 10, 150, 1650, 5),
    _o("smithwa", "smithwa", 5, 120, 1500, 9),
    _o("swim", "swim", 3, 80, 2100, 15),
)

ALL_PROFILES: Tuple[BenchmarkProfile, ...] = PARSEC_PROFILES + OMP2012_PROFILES

PROFILES_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in ALL_PROFILES}
PROFILES_BY_SHORT: Dict[str, BenchmarkProfile] = {p.short_name: p for p in ALL_PROFILES}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by full or short name."""
    if name in PROFILES_BY_NAME:
        return PROFILES_BY_NAME[name]
    if name in PROFILES_BY_SHORT:
        return PROFILES_BY_SHORT[name]
    raise KeyError(f"unknown benchmark {name!r}")


def grouped_profiles() -> Dict[int, List[BenchmarkProfile]]:
    """The paper's Figure 8b grouping by ascending total CS time.

    Group 1: 6 lightest programs, Group 2: 12 medium, Group 3: 6 heaviest.
    """
    ordered = sorted(ALL_PROFILES, key=lambda p: p.nominal_cs_time)
    return {
        1: ordered[:6],
        2: ordered[6:18],
        3: ordered[18:],
    }


def group_of(name: str) -> int:
    profile = get_profile(name)
    for group, members in grouped_profiles().items():
        if profile in members:
            return group
    raise AssertionError(name)
