"""Shared test fixtures.

The run executor persists results to ``.repro-cache/`` by default; the
suite points it at a per-session temporary directory instead, so tests
never read stale results from (or leak files into) the working tree,
while still exercising the real disk-cache path.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def isolated_result_cache(tmp_path_factory):
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
