"""Tests for the analytical cross-check models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    LockServiceModel,
    amdahl_speedup,
    eyerman_eeckhout_speedup,
    predicted_inpg_gain,
)


class TestAmdahl:
    def test_fully_parallel(self):
        assert amdahl_speedup(1.0, 64) == pytest.approx(64.0)

    def test_fully_sequential(self):
        assert amdahl_speedup(0.0, 64) == pytest.approx(1.0)

    def test_half_parallel_limit(self):
        # limit of 1/(1-f) = 2 as n -> inf
        assert amdahl_speedup(0.5, 10**9) == pytest.approx(2.0, rel=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 4)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)

    @given(st.floats(0, 1), st.integers(1, 1024))
    @settings(max_examples=100)
    def test_speedup_bounded_by_n(self, f, n):
        s = amdahl_speedup(f, n)
        assert 1.0 - 1e-9 <= s <= n + 1e-9


class TestEyermanEeckhout:
    def test_reduces_to_amdahl_without_cs(self):
        ee = eyerman_eeckhout_speedup(0.2, 0.8, 0.0, 0.0, 16)
        assert ee == pytest.approx(amdahl_speedup(0.8, 16))

    def test_fully_contended_cs_is_sequential(self):
        ee = eyerman_eeckhout_speedup(0.0, 0.5, 0.5, 1.0, 10**6)
        # 0.5 stays sequential -> speedup -> 2
        assert ee == pytest.approx(2.0, rel=1e-3)

    def test_contention_monotonically_hurts(self):
        speeds = [
            eyerman_eeckhout_speedup(0.1, 0.7, 0.2, p, 64)
            for p in (0.0, 0.3, 0.6, 1.0)
        ]
        assert speeds == sorted(speeds, reverse=True)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            eyerman_eeckhout_speedup(0.5, 0.5, 0.5, 0.1, 4)


class TestLockServiceModel:
    def test_light_contention_utilization(self):
        m = LockServiceModel(service_cycles=200, think_cycles=31800,
                             threads=4)
        assert m.demand == pytest.approx(4 * 200 / 32000)
        assert not m.is_saturated
        assert m.coh_fraction() < 0.05

    def test_saturation_detection(self):
        m = LockServiceModel(service_cycles=200, think_cycles=300,
                             threads=64)
        assert m.is_saturated
        assert m.utilization == 1.0
        # saturated throughput is bounded by the service rate
        assert m.throughput_cs_per_kcycle() == pytest.approx(5.0)

    def test_wait_grows_with_threads(self):
        waits = [
            LockServiceModel(200, 2000, t).mean_wait_cycles()
            for t in (2, 4, 8, 16)
        ]
        assert waits == sorted(waits)

    def test_matches_simulator_regime(self):
        """The profile calibration target: ~9 threads per lock at
        moderate utilization gives a COH share between CSE-like and
        dominant — the Figure 9 regime."""
        m = LockServiceModel(service_cycles=220, think_cycles=1500,
                             threads=8)
        assert 0.4 < m.demand < 1.6


class TestInpgGainModel:
    def test_first_order_product(self):
        assert predicted_inpg_gain(0.5, 0.4) == pytest.approx(0.2)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            predicted_inpg_gain(1.2, 0.1)
        with pytest.raises(ValueError):
            predicted_inpg_gain(0.5, -0.1)
