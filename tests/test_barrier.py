"""Tests for the sense-reversing barrier."""

import pytest

from repro.config import NocConfig, SystemConfig
from repro.coherence import MemorySystem
from repro.locks import AddressSpace
from repro.locks.barrier import SenseBarrier
from repro.noc import Network
from repro.sim import Simulator


def make_barrier(parties, width=4, height=4):
    cfg = SystemConfig(noc=NocConfig(width=width, height=height),
                       num_threads=width * height)
    sim = Simulator()
    net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    barrier = SenseBarrier(sim, mem, AddressSpace(mem), 0, 5, cfg, parties)
    return sim, mem, barrier


class TestBarrier:
    def test_all_parties_released_together(self):
        sim, mem, barrier = make_barrier(parties=6)
        released = []
        for core, delay in enumerate((0, 10, 30, 55, 80, 200)):
            sim.schedule(
                delay,
                lambda c=core: barrier.arrive(
                    c, lambda c=c: released.append((c, sim.cycle))
                ),
            )
        sim.run(until=1_000_000)
        assert sorted(c for c, _ in released) == list(range(6))
        times = [t for _, t in released]
        # nobody is released before the last arrival (cycle 200)
        assert min(times) >= 200
        assert barrier.episodes == 1

    def test_nobody_released_early(self):
        sim, mem, barrier = make_barrier(parties=4)
        released = []
        for core in range(3):  # one party missing
            barrier.arrive(core, lambda c=core: released.append(c))
        sim.run(until=100_000)
        assert released == []

    def test_barrier_is_reusable(self):
        sim, mem, barrier = make_barrier(parties=3)
        log = []

        def round_trip(core, rounds):
            if rounds == 0:
                log.append(("done", core))
                return
            barrier.arrive(
                core,
                lambda: (log.append((core, rounds)),
                         round_trip(core, rounds - 1))[-1],
            )

        for core in range(3):
            round_trip(core, 4)
        sim.run(until=5_000_000)
        assert sorted(e for e in log if e[0] == "done") == [
            ("done", 0), ("done", 1), ("done", 2)
        ]
        assert barrier.episodes == 4

    def test_rounds_are_ordered(self):
        """No thread enters round k+1 before every thread passed round k."""
        sim, mem, barrier = make_barrier(parties=4)
        passes = []

        def loop(core, remaining):
            if remaining == 0:
                return
            barrier.arrive(
                core,
                lambda: (passes.append((sim.cycle, core, remaining)),
                         sim.schedule(core * 7 + 5,
                                      lambda: loop(core, remaining - 1)))[-1],
            )

        for core in range(4):
            loop(core, 3)
        sim.run(until=5_000_000)
        # group passes by round index and check time separation
        by_round = {}
        for t, core, remaining in passes:
            by_round.setdefault(remaining, []).append(t)
        assert set(by_round) == {3, 2, 1}
        assert max(by_round[3]) <= min(by_round[2])
        assert max(by_round[2]) <= min(by_round[1])

    def test_single_party_barrier(self):
        sim, mem, barrier = make_barrier(parties=1)
        released = []
        barrier.arrive(0, lambda: released.append(0))
        sim.run(until=100_000)
        assert released == [0]

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            make_barrier(parties=0)
