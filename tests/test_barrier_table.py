"""Unit and property tests for the iNPG locking barrier table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inpg.barrier_table import EIPhase, LockingBarrierTable
from repro.sim import Simulator


def make_table(capacity=16, ei_capacity=16, ttl=128):
    sim = Simulator()
    return sim, LockingBarrierTable(sim, capacity, ei_capacity, ttl)


class TestBarrierLifecycle:
    def test_create_and_query(self):
        sim, table = make_table()
        assert not table.has_barrier(0x100)
        assert table.create_barrier(0x100)
        assert table.has_barrier(0x100)

    def test_create_is_idempotent(self):
        sim, table = make_table()
        assert table.create_barrier(0x100)
        assert table.create_barrier(0x100)
        assert table.barriers_created == 1

    def test_capacity_limit(self):
        sim, table = make_table(capacity=2)
        assert table.create_barrier(0x100)
        assert table.create_barrier(0x200)
        assert not table.create_barrier(0x300)
        assert table.is_full

    def test_ttl_expires_idle_barrier(self):
        sim, table = make_table(ttl=128)
        table.create_barrier(0x100)
        sim.run(until=127)
        assert table.has_barrier(0x100)
        sim.run(until=200)
        assert not table.has_barrier(0x100)
        assert table.barriers_expired == 1

    def test_ei_entry_suspends_ttl(self):
        sim, table = make_table(ttl=128)
        table.create_barrier(0x100)
        sim.run(until=100)
        assert table.try_stop(0x100, core=3)
        sim.run(until=500)
        # EI entry never resolved: barrier stays alive indefinitely
        assert table.has_barrier(0x100)

    def test_ttl_restarts_after_last_ei_freed(self):
        sim, table = make_table(ttl=128)
        table.create_barrier(0x100)
        assert table.try_stop(0x100, core=3)
        sim.run(until=300)
        table.mark_ack_received(0x100, 3)
        table.mark_ack_forwarded(0x100, 3)
        sim.run(until=300 + 127)
        assert table.has_barrier(0x100)
        sim.run(until=300 + 129)
        assert not table.has_barrier(0x100)


class TestEIEntries:
    def test_stop_requires_barrier(self):
        sim, table = make_table()
        assert not table.try_stop(0x100, core=1)

    def test_stop_allocates_entry_with_inv_phase(self):
        sim, table = make_table()
        table.create_barrier(0x100)
        assert table.try_stop(0x100, core=1)
        entry = table.barriers[0x100].ei[1]
        assert entry.phase is EIPhase.INV_GENERATED

    def test_phases_advance(self):
        sim, table = make_table()
        table.create_barrier(0x100)
        table.try_stop(0x100, core=1)
        table.mark_getx_forwarded(0x100, 1)
        assert table.barriers[0x100].ei[1].phase is EIPhase.GETX_FORWARDED
        table.mark_ack_received(0x100, 1)
        assert table.barriers[0x100].ei[1].phase is EIPhase.INVACK_RECEIVED
        table.mark_ack_forwarded(0x100, 1)
        assert 1 not in table.barriers[0x100].ei  # freed

    def test_duplicate_stop_same_core_rejected(self):
        sim, table = make_table()
        table.create_barrier(0x100)
        assert table.try_stop(0x100, core=1)
        assert not table.try_stop(0x100, core=1)

    def test_ei_pool_shared_across_barriers(self):
        sim, table = make_table(ei_capacity=3)
        table.create_barrier(0x100)
        table.create_barrier(0x200)
        assert table.try_stop(0x100, core=1)
        assert table.try_stop(0x100, core=2)
        assert table.try_stop(0x200, core=3)
        assert not table.try_stop(0x200, core=4)  # pool exhausted
        assert table.ei_in_use == 3

    def test_invalid_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LockingBarrierTable(sim, capacity=0)


class TestBarrierProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["create", "stop", "ack", "fwd", "tick"]),
                st.integers(min_value=0, max_value=3),   # addr index
                st.integers(min_value=0, max_value=7),   # core
            ),
            max_size=60,
        )
    )
    @settings(max_examples=100)
    def test_ei_usage_never_exceeds_capacity(self, ops):
        sim, table = make_table(capacity=2, ei_capacity=4, ttl=16)
        addrs = [0x100, 0x200, 0x300, 0x400]
        for op, ai, core in ops:
            addr = addrs[ai]
            if op == "create":
                table.create_barrier(addr)
            elif op == "stop":
                table.try_stop(addr, core)
            elif op == "ack":
                table.mark_ack_received(addr, core)
            elif op == "fwd":
                table.mark_ack_forwarded(addr, core)
            elif op == "tick":
                sim.run(until=sim.cycle + 8)
            assert table.ei_in_use <= 4
            assert len(table.barriers) <= 2

    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=30)
    def test_barrier_lives_exactly_ttl_cycles_when_idle(self, ttl):
        sim = Simulator()
        table = LockingBarrierTable(sim, ttl=ttl)
        table.create_barrier(0xA00)
        sim.run(until=ttl - 1)
        assert table.has_barrier(0xA00)
        sim.run(until=ttl + 1)
        assert not table.has_barrier(0xA00)
