"""Integration tests for iNPG big routers in a live system."""

from dataclasses import replace

import pytest

from repro.config import InpgConfig, NocConfig, SystemConfig
from repro.coherence import MemorySystem, MessageType
from repro.inpg import BigRouter, evenly_spread_nodes, interleaved_nodes
from repro.noc import Network, Router
from repro.noc.topology import Mesh
from repro.sim import Simulator


def make_inpg_system(width=4, height=4, num_big=8, **inpg_kw):
    cfg = SystemConfig(
        noc=NocConfig(width=width, height=height),
        inpg=InpgConfig(enabled=True, num_big_routers=num_big, **inpg_kw),
    )
    sim = Simulator()
    mesh = Mesh(width, height)
    big_nodes = evenly_spread_nodes(mesh, num_big)

    def factory(sim, node, net):
        if node in big_nodes:
            return BigRouter(sim, node, net, cfg.inpg)
        return Router(sim, node, net)

    net = Network(sim, cfg.noc, router_factory=factory)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    return sim, net, mem


def swap_burst(mem, addr, cores):
    results = {}
    for core in cores:
        mem.rmw(
            core, addr, lambda old: (1, old),
            lambda v, core=core: results.setdefault(core, v),
            fails_if=lambda v: v != 0,
        )
    return results


class TestBigRouterDeployment:
    def test_factory_places_big_routers(self):
        sim, net, mem = make_inpg_system(num_big=8)
        assert len(net.big_router_nodes()) == 8

    def test_interleaved_pattern_is_checkerboard(self):
        mesh = Mesh(8, 8)
        nodes = interleaved_nodes(mesh)
        assert len(nodes) == 32
        for n in nodes:
            x, y = mesh.coords(n)
            assert (x + y) % 2 == 1

    def test_evenly_spread_counts(self):
        mesh = Mesh(8, 8)
        for count in (0, 4, 16, 32, 64):
            assert len(evenly_spread_nodes(mesh, count)) == count

    def test_spread_rejects_invalid_count(self):
        with pytest.raises(ValueError):
            evenly_spread_nodes(Mesh(4, 4), 17)


class TestEarlyInvalidation:
    def test_swap_burst_triggers_stops_and_early_invs(self):
        sim, net, mem = make_inpg_system(num_big=16)  # all routers big
        addr = mem.addr_for_home(10)
        # establish S copies so there is something to invalidate
        for core in range(16):
            mem.load(core, addr, lambda v: None)
        sim.run()
        results = swap_burst(mem, addr, range(16))
        sim.run()
        assert len(results) == 16
        assert sum(1 for v in results.values() if v == 0) == 1
        assert mem.stats.getx_stopped > 0
        assert mem.stats.early_invs_generated == mem.stats.getx_stopped

    def test_all_barrier_phases_complete(self):
        sim, net, mem = make_inpg_system(num_big=16)
        addr = mem.addr_for_home(10)
        for core in range(16):
            mem.load(core, addr, lambda v: None)
        sim.run()
        swap_burst(mem, addr, range(16))
        sim.run()
        # every EI entry must be freed (ack received and forwarded)
        for node, router in net.routers.items():
            if router.is_big:
                assert router.table.ei_in_use == 0
                assert router.acks_forwarded == router.getx_stopped

    def test_early_acks_prune_or_relay(self):
        sim, net, mem = make_inpg_system(num_big=16)
        addr = mem.addr_for_home(10)
        for core in range(16):
            mem.load(core, addr, lambda v: None)
        sim.run()
        swap_burst(mem, addr, range(16))
        sim.run()
        early = [r for r in mem.stats.inv_records if r.early]
        assert early, "expected early invalidation round trips"
        normal = [r for r in mem.stats.inv_records if not r.early]
        if normal:
            mean_early = sum(r.rtt for r in early) / len(early)
            mean_normal = sum(r.rtt for r in normal) / len(normal)
            assert mean_early < mean_normal

    def test_plain_stores_pass_untouched(self):
        sim, net, mem = make_inpg_system(num_big=16)
        addr = mem.addr_for_home(3)
        mem.store(0, addr, 5, lambda v: None)
        sim.run()
        mem.store(9, addr, 6, lambda v: None)
        sim.run()
        assert mem.stats.getx_stopped == 0
        assert mem.read(addr) == 6

    def test_full_table_passes_requests_through(self):
        sim, net, mem = make_inpg_system(
            num_big=16, barrier_table_size=1, ei_entries=1
        )
        addr_a = mem.addr_for_home(10)
        addr_b = mem.addr_for_home(10, )
        for core in range(8):
            mem.load(core, addr_a, lambda v: None)
        sim.run()
        swap_burst(mem, addr_a, range(8))
        sim.run()
        # correctness preserved even with a tiny table
        assert mem.read(addr_a) == 1

    def test_mutual_exclusion_preserved_under_inpg(self):
        """The headline safety property: exactly one winner per burst."""
        sim, net, mem = make_inpg_system(num_big=16)
        addr = mem.addr_for_home(6)
        for round_no in range(4):
            results = swap_burst(mem, addr, range(12))
            sim.run()
            winners = [c for c, v in results.items() if v == 0]
            assert len(winners) == 1, f"round {round_no}: winners={winners}"
            assert len(results) == 12
            # the holder frees the lock for the next round
            mem.store(winners[0], addr, 0, lambda v: None)
            sim.run()


class TestStaleEarlyInv:
    def test_owner_keeps_line_on_late_early_inv(self):
        """An early Inv arriving after its target won ownership is stale."""
        sim, net, mem = make_inpg_system(num_big=16)
        addr = mem.addr_for_home(10)
        for core in range(8):
            mem.load(core, addr, lambda v: None)
        sim.run()
        results = swap_burst(mem, addr, range(8))
        sim.run()
        winner = next(c for c, v in results.items() if v == 0)
        # the winner must still own its line (no stale-inv destruction)
        from repro.coherence import L1State
        assert mem.l1s[winner].state_of(addr) in (
            L1State.MODIFIED, L1State.OWNED
        )
        home = mem.home_of(addr)
        assert mem.dirs[home].entry(addr).owner == winner
