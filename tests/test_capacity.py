"""Tests for the optional finite-capacity L1 model (LRU + writebacks)."""

from dataclasses import replace

from repro.config import CacheConfig, NocConfig, SystemConfig
from repro.coherence import L1State, MemorySystem, MessageType
from repro.noc import Network
from repro.sim import Simulator


def tiny_cache_system(assoc=2, sets_blocks_kb=None):
    """A 2-way, very small L1 so evictions actually happen."""
    cache = CacheConfig(
        l1_size_kb=1,          # 1 KB / (128B x 2-way) = 4 sets
        l1_assoc=assoc,
        model_capacity=True,
    )
    cfg = SystemConfig(noc=NocConfig(width=2, height=2), cache=cache,
                       num_threads=4)
    sim = Simulator()
    net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    return sim, mem, cfg


class TestEviction:
    def test_set_geometry(self):
        _, _, cfg = tiny_cache_system()
        assert cfg.cache.l1_num_sets == 4

    def test_overflowing_a_set_evicts_lru(self):
        sim, mem, cfg = tiny_cache_system()
        sets = cfg.cache.l1_num_sets
        # three blocks mapping to the same set (stride = sets blocks)
        addrs = [mem.addr_for_home(0, index=i * sets) for i in range(3)]
        for a in addrs:
            assert mem.l1s[0]._set_index(a) == mem.l1s[0]._set_index(addrs[0])
        for a in addrs:
            mem.load(0, a, lambda v: None)
            sim.run()
        l1 = mem.l1s[0]
        valid = [a for a in addrs if l1.state_of(a).valid]
        assert len(valid) == 2
        assert l1.evictions == 1
        # the first-touched block was the LRU victim
        assert not l1.state_of(addrs[0]).valid

    def test_put_s_untracks_sharer(self):
        sim, mem, cfg = tiny_cache_system()
        sets = cfg.cache.l1_num_sets
        addrs = [mem.addr_for_home(0, index=i * sets) for i in range(3)]
        for a in addrs:
            mem.load(0, a, lambda v: None)
            sim.run()
        home = mem.home_of(addrs[0])
        ent = mem.dirs[home].entry(addrs[0])
        assert 0 not in ent.sharers
        assert mem.stats.msg_counts["PutS"] >= 1

    def test_put_m_writes_back_owned_line(self):
        sim, mem, cfg = tiny_cache_system()
        sets = cfg.cache.l1_num_sets
        addrs = [mem.addr_for_home(0, index=i * sets) for i in range(3)]
        mem.store(0, addrs[0], 42, lambda v: None)
        sim.run()
        for a in addrs[1:]:
            mem.load(0, a, lambda v: None)
            sim.run()
        assert mem.stats.msg_counts.get("PutM", 0) >= 1
        home = mem.home_of(addrs[0])
        assert mem.dirs[home].entry(addrs[0]).owner is None
        # the value survives the writeback
        got = []
        mem.load(1, addrs[0], got.append)
        sim.run()
        assert got == [42]

    def test_touch_keeps_hot_line_resident(self):
        sim, mem, cfg = tiny_cache_system()
        sets = cfg.cache.l1_num_sets
        a, b, c = [mem.addr_for_home(0, index=i * sets) for i in range(3)]
        mem.load(0, a, lambda v: None)
        sim.run()
        mem.load(0, b, lambda v: None)
        sim.run()
        mem.load(0, a, lambda v: None)  # touch a: b becomes LRU
        sim.run()
        mem.load(0, c, lambda v: None)
        sim.run()
        l1 = mem.l1s[0]
        assert l1.state_of(a).valid
        assert not l1.state_of(b).valid

    def test_capacity_off_never_evicts(self):
        cfg = SystemConfig(noc=NocConfig(width=2, height=2), num_threads=4)
        sim = Simulator()
        net = Network(sim, cfg.noc)
        mem = MemorySystem(sim, cfg, net)
        net.memsys = mem
        for i in range(50):
            mem.load(0, mem.addr_for_home(0, index=i), lambda v: None)
            sim.run()
        assert mem.l1s[0].evictions == 0


class TestDramPath:
    def test_cold_miss_pays_dram_latency(self):
        cfg = SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16)
        sim = Simulator()
        net = Network(sim, cfg.noc)
        mem = MemorySystem(sim, cfg, net)
        net.memsys = mem
        addr = mem.addr_for_home(5)
        done = []
        mem.load(0, addr, lambda v: done.append(sim.cycle))
        sim.run()
        cold = done[0]
        # second block at the same home: same distance, also cold
        done2 = []
        mem.load(0, mem.addr_for_home(5, index=1),
                 lambda v: done2.append(sim.cycle - cold))
        sim.run()
        # warm re-load of the first block from another core: no DRAM
        done3 = []
        start = sim.cycle
        mem.load(1, addr, lambda v: done3.append(sim.cycle - start))
        sim.run()
        assert done3[0] < cold  # warm path cheaper than cold path
        assert mem.dram.total_requests == 2

    def test_concurrent_cold_misses_coalesce(self):
        cfg = SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16)
        sim = Simulator()
        net = Network(sim, cfg.noc)
        mem = MemorySystem(sim, cfg, net)
        net.memsys = mem
        addr = mem.addr_for_home(5)
        got = []
        for core in range(4):
            mem.load(core, addr, got.append)
        sim.run()
        assert len(got) == 4
        assert mem.dram.total_requests == 1
