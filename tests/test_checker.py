"""Tests for the online protocol checker — and checked full runs."""

import pytest

from repro import ManyCoreSystem, SystemConfig, single_lock_workload
from repro.config import NocConfig
from repro.coherence import L1State, MemorySystem
from repro.coherence.checker import ProtocolChecker, ProtocolViolation
from repro.noc import Network
from repro.sim import Simulator


def make_checked_system(**cfg_kw):
    cfg = SystemConfig(noc=NocConfig(width=4, height=4), num_threads=16,
                       **cfg_kw)
    sim = Simulator()
    net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    checker = ProtocolChecker(sim, mem)
    return sim, mem, checker


class TestChecker:
    def test_clean_run_has_no_violations(self):
        sim, mem, checker = make_checked_system()
        addr = mem.addr_for_home(3)
        for core in range(6):
            mem.rmw(core, addr, lambda old: (old + 1, old), lambda v: None,
                    ll_sc=True)
        sim.run(until=1_000_000)
        checker.check_tracked_copies()
        assert checker.report.clean
        assert checker.report.transactions_observed >= 6
        assert checker.report.writes_observed == 6

    def test_detects_forged_double_writer(self):
        sim, mem, checker = make_checked_system()
        addr = mem.addr_for_home(3)
        mem.rmw(0, addr, lambda old: (1, old), lambda v: None)
        sim.run()
        # forge a second Modified copy behind the protocol's back
        mem.l1s[9].lines[addr] = L1State.MODIFIED
        with pytest.raises(ProtocolViolation):
            checker.check_block(addr)

    def test_detects_untracked_copy(self):
        sim, mem, checker = make_checked_system()
        addr = mem.addr_for_home(3)
        mem.store(0, addr, 5, lambda v: None)
        sim.run()
        mem.l1s[7].lines[addr] = L1State.SHARED  # forged, untracked
        with pytest.raises(ProtocolViolation):
            checker.check_tracked_copies()

    def test_non_strict_collects_instead_of_raising(self):
        sim, mem, checker = make_checked_system()
        checker.strict = False
        addr = mem.addr_for_home(3)
        mem.store(0, addr, 5, lambda v: None)
        sim.run()
        mem.l1s[7].lines[addr] = L1State.SHARED
        checker.check_tracked_copies()
        assert not checker.report.clean
        assert "untracked" in checker.report.violations[0]


class TestCheckedFullRuns:
    """End-to-end contended runs with the checker armed."""

    @pytest.mark.parametrize("mechanism", ["original", "inpg"])
    @pytest.mark.parametrize("primitive", ["tas", "ticket", "mcs", "qsl"])
    def test_contended_run_is_protocol_clean(self, primitive, mechanism):
        cfg = SystemConfig(
            noc=NocConfig(width=4, height=4), num_threads=16
        ).with_mechanism(mechanism)
        wl = single_lock_workload(16, home_node=5, cs_per_thread=2,
                                  cs_cycles=60, parallel_cycles=150)
        system = ManyCoreSystem(cfg, wl, primitive=primitive)
        checker = ProtocolChecker(system.sim, system.memsys, period=500)
        result = system.run(max_cycles=20_000_000)
        system.sim.run(until=system.sim.cycle + 100_000)
        checker.check_tracked_copies()
        assert result.cs_completed == 32
        assert checker.report.clean, checker.report.violations[:3]
        assert checker.report.samples > 0
