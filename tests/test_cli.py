"""Tests for the inpg-sim command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["freqmine"])
        assert args.mechanism == "original"
        assert args.primitive == "qsl"
        assert args.scale == 1.0

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["freqmine", "--mechanism", "magic"])


class TestMain:
    def test_benchmark_run_prints_summary(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "mcs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vips [original/mcs]" in out
        assert "roi_cycles" in out

    def test_json_output_is_parseable(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "mcs",
                   "--json"])
        assert rc == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["benchmark"] == "vips"
        assert parsed["cs_completed"] > 0

    def test_microbench_with_gantt(self, capsys):
        rc = main(["microbench", "--threads", "8", "--primitive", "mcs",
                   "--gantt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "microbench [original/mcs]" in out
        assert "t0" in out  # gantt rows

    def test_ttl_alias(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "TTL"])
        assert rc == 0
        assert "[original/ticket]" in capsys.readouterr().out

    def test_list(self, capsys):
        rc = main(["--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "freqmine" in out and "kdtree" in out


class TestSharedFlagVocabulary:
    """Every inpg-* tool spells the shared execution flags identically."""

    PARSERS = {}

    @classmethod
    def _parsers(cls):
        if not cls.PARSERS:
            from repro.experiments.runner import build_parser as experiments
            from repro.faults.campaign import build_parser as faults
            from repro.serve.server import build_parser as serve

            cls.PARSERS = {
                "inpg-sim": build_parser(),
                "inpg-experiments": experiments(),
                "inpg-faults": faults(),
                "inpg-serve": serve(),
            }
        return cls.PARSERS

    @staticmethod
    def _flag_help(parser, flag):
        for action in parser._actions:
            if flag in action.option_strings:
                return action.help
        return None

    def test_shared_flags_identical_everywhere(self):
        parsers = self._parsers()
        for flag in ("--jobs", "--timeout", "--cache-dir", "--no-cache"):
            helps = {name: self._flag_help(parser, flag)
                     for name, parser in parsers.items()}
            assert all(text is not None for text in helps.values()), \
                f"{flag} missing from {sorted(k for k, v in helps.items() if v is None)}"
            assert len(set(helps.values())) == 1, \
                f"{flag} documented differently: {helps}"

    def test_remote_flag_on_clients_not_service(self):
        parsers = self._parsers()
        for name in ("inpg-sim", "inpg-experiments", "inpg-faults"):
            assert self._flag_help(parsers[name], "--remote") is not None
        # the service IS the remote end; it must not take --remote
        assert self._flag_help(parsers["inpg-serve"], "--remote") is None

    def test_jobs_short_spelling_shared(self):
        for name, parser in self._parsers().items():
            if name == "inpg-serve":
                continue
            for action in parser._actions:
                if "--jobs" in action.option_strings:
                    assert "-j" in action.option_strings, name

    def test_flit_engine_spelled_identically(self):
        from repro.perf.report import main as perf_main  # parser inline
        base = self._flag_help(self._parsers()["inpg-sim"], "--flit-engine")
        assert base is not None and base.startswith(
            "run the NoC at flit granularity")

    def test_trace_with_remote_rejected(self):
        rc = main(["vips", "--trace", "--remote", "http://127.0.0.1:1"])
        assert rc == 2
