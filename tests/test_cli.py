"""Tests for the inpg-sim command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["freqmine"])
        assert args.mechanism == "original"
        assert args.primitive == "qsl"
        assert args.scale == 1.0

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["freqmine", "--mechanism", "magic"])


class TestMain:
    def test_benchmark_run_prints_summary(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "mcs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vips [original/mcs]" in out
        assert "roi_cycles" in out

    def test_json_output_is_parseable(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "mcs",
                   "--json"])
        assert rc == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["benchmark"] == "vips"
        assert parsed["cs_completed"] > 0

    def test_microbench_with_gantt(self, capsys):
        rc = main(["microbench", "--threads", "8", "--primitive", "mcs",
                   "--gantt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "microbench [original/mcs]" in out
        assert "t0" in out  # gantt rows

    def test_ttl_alias(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "TTL"])
        assert rc == 0
        assert "[original/ticket]" in capsys.readouterr().out

    def test_topology_and_arbiter_flags_run(self, capsys):
        rc = main(["vips", "--scale", "0.3", "--topology", "torus",
                   "--arbiter", "wrr"])
        assert rc == 0
        assert "roi_cycles" in capsys.readouterr().out

    def test_rejects_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["vips", "--topology", "hypercube"])

    def test_list(self, capsys):
        rc = main(["--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "freqmine" in out and "kdtree" in out


class TestSharedFlagVocabulary:
    """Every inpg-* tool spells the shared execution flags identically."""

    PARSERS = {}

    @classmethod
    def _parsers(cls):
        if not cls.PARSERS:
            from repro.experiments.runner import build_parser as experiments
            from repro.faults.campaign import build_parser as faults
            from repro.serve.server import build_parser as serve

            cls.PARSERS = {
                "inpg-sim": build_parser(),
                "inpg-experiments": experiments(),
                "inpg-faults": faults(),
                "inpg-serve": serve(),
            }
        return cls.PARSERS

    @staticmethod
    def _flag_help(parser, flag):
        for action in parser._actions:
            if flag in action.option_strings:
                return action.help
        return None

    def test_shared_flags_identical_everywhere(self):
        parsers = self._parsers()
        for flag in ("--jobs", "--timeout", "--cache-dir", "--no-cache"):
            helps = {name: self._flag_help(parser, flag)
                     for name, parser in parsers.items()}
            assert all(text is not None for text in helps.values()), \
                f"{flag} missing from {sorted(k for k, v in helps.items() if v is None)}"
            assert len(set(helps.values())) == 1, \
                f"{flag} documented differently: {helps}"

    def test_remote_flag_on_clients_not_service(self):
        parsers = self._parsers()
        for name in ("inpg-sim", "inpg-experiments", "inpg-faults"):
            assert self._flag_help(parsers[name], "--remote") is not None
        # the service IS the remote end; it must not take --remote
        assert self._flag_help(parsers["inpg-serve"], "--remote") is None

    def test_jobs_short_spelling_shared(self):
        for name, parser in self._parsers().items():
            if name == "inpg-serve":
                continue
            for action in parser._actions:
                if "--jobs" in action.option_strings:
                    assert "-j" in action.option_strings, name

    def test_flit_engine_spelled_identically(self):
        from repro.perf.report import main as perf_main  # parser inline
        base = self._flag_help(self._parsers()["inpg-sim"], "--flit-engine")
        assert base is not None and base.startswith(
            "run the NoC at flit granularity")

    def test_trace_with_remote_rejected(self):
        rc = main(["vips", "--trace", "--remote", "http://127.0.0.1:1"])
        assert rc == 2

    def test_axis_flags_shared_between_sim_and_experiments(self):
        """All four simulation axes (repro.api.describe_axes) are spelled
        identically — same flag, same help, same choices — on inpg-sim
        and inpg-experiments."""
        from repro.api import describe_axes

        parsers = self._parsers()
        for name, axis in describe_axes().items():
            helps, choices = {}, {}
            for tool in ("inpg-sim", "inpg-experiments"):
                for action in parsers[tool]._actions:
                    if axis["flag"] in action.option_strings:
                        helps[tool] = action.help
                        choices[tool] = tuple(action.choices)
                        # axes default to None: "unset" stays
                        # distinguishable from "explicitly default",
                        # keeping canonical fingerprints elided
                        assert action.default is None, (tool, name)
            assert set(helps) == {"inpg-sim", "inpg-experiments"}, name
            assert len(set(helps.values())) == 1, (name, helps)
            assert all(c == axis["choices"] for c in choices.values()), name

    def test_axis_values_survive_the_serve_proto(self):
        """A spec pinned to every non-default axis value round-trips the
        serve wire format with an identical fingerprint."""
        from repro.api import RunSpec, SystemConfig
        from repro.serve.proto import decode_submit, submit_request

        spec = RunSpec(
            benchmark="vips", mechanism="inpg", protocol="msi",
            topology="torus", arbiter="wrr",
            config=SystemConfig().with_overrides(
                noc={"wrr_weights": (3, 1)},
                inpg={"placement": "center"},
            ),
        )
        [decoded], _policy = decode_submit(submit_request([spec]))
        assert decoded == spec
        assert decoded.fingerprint == spec.fingerprint
        resolved = decoded.resolved_config()
        assert resolved.noc.topology == "torus"
        assert resolved.noc.arbiter == "wrr"
        assert resolved.inpg.placement == "center"
