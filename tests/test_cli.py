"""Tests for the inpg-sim command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["freqmine"])
        assert args.mechanism == "original"
        assert args.primitive == "qsl"
        assert args.scale == 1.0

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["freqmine", "--mechanism", "magic"])


class TestMain:
    def test_benchmark_run_prints_summary(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "mcs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vips [original/mcs]" in out
        assert "roi_cycles" in out

    def test_json_output_is_parseable(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "mcs",
                   "--json"])
        assert rc == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["benchmark"] == "vips"
        assert parsed["cs_completed"] > 0

    def test_microbench_with_gantt(self, capsys):
        rc = main(["microbench", "--threads", "8", "--primitive", "mcs",
                   "--gantt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "microbench [original/mcs]" in out
        assert "t0" in out  # gantt rows

    def test_ttl_alias(self, capsys):
        rc = main(["vips", "--scale", "0.4", "--primitive", "TTL"])
        assert rc == 0
        assert "[original/ticket]" in capsys.readouterr().out

    def test_list(self, capsys):
        rc = main(["--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "freqmine" in out and "kdtree" in out
