"""Integration tests for the MOESI directory protocol."""

import pytest

from repro.coherence import L1State, MemorySystem, MessageType
from repro.config import NocConfig, SystemConfig
from repro.noc import Network
from repro.sim import Simulator


def make_system(width=4, height=4, **cfg_kw):
    cfg = SystemConfig(noc=NocConfig(width=width, height=height), **cfg_kw)
    sim = Simulator()
    net = Network(sim, cfg.noc)
    memsys = MemorySystem(sim, cfg, net)
    net.memsys = memsys
    return sim, memsys


class TestLoads:
    def test_cold_load_returns_default_zero(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(5)
        got = []
        mem.load(0, addr, got.append)
        sim.run()
        assert got == [0]
        assert mem.l1s[0].state_of(addr) is L1State.SHARED

    def test_load_hit_is_fast_and_local(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(5)
        mem.load(0, addr, lambda v: None)
        sim.run()
        packets_before = mem.network.packets_injected
        got = []
        mem.load(0, addr, got.append)
        sim.run()
        assert got == [0]
        assert mem.network.packets_injected == packets_before  # no traffic

    def test_concurrent_loads_coalesce_in_mshr(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(9)
        got = []
        mem.load(0, addr, got.append)
        mem.load(0, addr, got.append)
        sim.run()
        assert got == [0, 0]
        # one GetS, one Data
        assert mem.stats.msg_counts["GetS"] == 1

    def test_load_after_remote_write_sees_new_value(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(3)
        mem.rmw(1, addr, lambda old: (42, old), lambda v: None)
        sim.run()
        got = []
        mem.load(2, addr, got.append)
        sim.run()
        assert got == [42]


class TestStoresAndRmw:
    def test_rmw_returns_old_value_and_commits(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(7)
        got = []
        mem.rmw(0, addr, lambda old: (old + 5, old), got.append)
        sim.run()
        assert got == [0]
        assert mem.read(addr) == 5
        assert mem.l1s[0].state_of(addr) is L1State.MODIFIED

    def test_write_hit_in_modified_state_is_silent(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(7)
        mem.rmw(0, addr, lambda old: (1, old), lambda v: None)
        sim.run()
        packets_before = mem.network.packets_injected
        mem.store(0, addr, 0, lambda v: None)
        sim.run()
        assert mem.network.packets_injected == packets_before
        assert mem.read(addr) == 0

    def test_store_invalidates_sharers(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(2)
        for core in (4, 5, 6):
            mem.load(core, addr, lambda v: None)
        sim.run()
        mem.store(7, addr, 9, lambda v: None)
        sim.run()
        for core in (4, 5, 6):
            assert mem.l1s[core].state_of(addr) is L1State.INVALID
        assert mem.l1s[7].state_of(addr) is L1State.MODIFIED
        assert mem.stats.msg_counts["Inv"] == 3
        assert mem.stats.msg_counts["InvAck"] == 3

    def test_ownership_transfer_via_fwd_getx(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(1)
        mem.rmw(0, addr, lambda old: (10, old), lambda v: None)
        sim.run()
        got = []
        mem.rmw(8, addr, lambda old: (old + 1, old), got.append)
        sim.run()
        assert got == [10]
        assert mem.read(addr) == 11
        assert mem.l1s[0].state_of(addr) is L1State.INVALID
        assert mem.l1s[8].state_of(addr) is L1State.MODIFIED
        assert mem.stats.msg_counts["FwdGetX"] == 1

    def test_sequential_rmws_serialize_correctly(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(0)
        results = []
        for core in range(8):
            mem.rmw(core, addr, lambda old: (old + 1, old), results.append)
        sim.run()
        # every fetch-and-increment observes a distinct old value
        assert sorted(results) == list(range(8))
        assert mem.read(addr) == 8

    def test_overlapping_writes_same_core_rejected(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(0)
        mem.rmw(0, addr, lambda old: (1, old), lambda v: None)
        with pytest.raises(RuntimeError):
            mem.rmw(0, addr, lambda old: (2, old), lambda v: None)


class TestFailFast:
    def test_losing_swap_fails_without_writing(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(6)
        results = {}
        occupied = lambda v: v != 0

        def swap(core):
            mem.rmw(
                core, addr, lambda old: (1, old),
                lambda v, core=core: results.setdefault(core, v),
                fails_if=occupied,
            )

        for core in range(6):
            swap(core)
        sim.run()
        # exactly one core saw 0 (won); the rest observed 1 and wrote nothing
        winners = [c for c, v in results.items() if v == 0]
        assert len(winners) == 1
        assert mem.read(addr) == 1
        assert len(results) == 6

    def test_losers_receive_tracked_shared_copies(self):
        """Losers get copies with their fail answer (paper Step 4), and
        every installed copy is tracked by the directory."""
        sim, mem = make_system()
        addr = mem.addr_for_home(6)
        done = []
        for core in range(4):
            mem.rmw(core, addr, lambda old: (1, old), done.append,
                    fails_if=lambda v: v != 0)
        sim.run()
        home = mem.home_of(addr)
        ent = mem.dirs[home].entry(addr)
        # the winner owns the block (M, or O once it shared copies)
        owners = [c for c in range(4)
                  if mem.l1s[c].state_of(addr).owns_data]
        assert len(owners) == 1
        assert ent.owner == owners[0]
        for c in range(4):
            state = mem.l1s[c].state_of(addr)
            if state is L1State.SHARED:
                # a valid loser copy must be directory-tracked
                assert c in ent.sharers, f"core {c} holds untracked {state}"

    def test_fail_response_with_freed_lock_retries(self):
        """A loser told 'the value is 0 now' must retry, not fail."""
        sim, mem = make_system()
        addr = mem.addr_for_home(4)
        order = []
        # winner takes the lock then immediately frees it; by the time the
        # loser's answer is produced, the value may be 0 -> loser retries
        # and eventually acquires.
        def winner_done(v):
            order.append(("winner", v))
            mem.store(0, addr, 0, lambda v2: order.append(("freed", v2)))

        mem.rmw(0, addr, lambda old: (1, old), winner_done,
                fails_if=lambda v: v != 0)
        mem.rmw(9, addr, lambda old: (1, old),
                lambda v: order.append(("second", v)),
                fails_if=lambda v: v != 0)
        sim.run()
        assert ("winner", 0) in order
        labels = [label for label, _ in order]
        assert "second" in labels


class TestDirectoryQueueing:
    def test_gets_blocked_behind_txn_then_served(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(2)
        # establish sharers so the write opens a real transaction
        for core in (1, 3):
            mem.load(core, addr, lambda v: None)
        sim.run()
        got = []
        mem.store(5, addr, 77, lambda v: None)
        # let the store's GetX reach the home and open its transaction,
        # then issue a load that must queue behind it
        sim.run(until=sim.cycle + 30)
        home = mem.home_of(addr)
        assert mem.dirs[home].entry(addr).busy
        mem.load(6, addr, got.append)
        sim.run()
        assert got == [77]

    def test_unblock_closes_transaction(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(2)
        mem.store(5, addr, 1, lambda v: None)
        sim.run()
        home = mem.home_of(addr)
        ent = mem.dirs[home].entry(addr)
        assert not ent.busy
        assert ent.txn is None
        assert ent.owner == 5
