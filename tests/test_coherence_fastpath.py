"""Unit tests for the coherence fast-path representation.

The hot-path overhaul replaced FrozenSet sharer/ack bookkeeping with
integer bitmasks, Enum ``elif`` chains with per-tag dispatch tables, and
burst allocations with a per-run message pool.  These tests pin the
parts golden fingerprints cannot see: that the bitmask algebra *is*
set algebra, that pooled messages are re-initialized field by field,
that transaction ids restart per run (cross-run determinism), and that
the hot classes stay ``__slots__``-only.
"""

import pytest

from repro.config import SystemConfig
from repro.coherence.memsystem import MemorySystem
from repro.coherence.messages import (
    MESSAGE_TYPES,
    N_MESSAGE_TYPES,
    VALUE_BY_TAG,
    CoherenceMessage,
    MessagePool,
    MessageType,
    mask_to_set,
    popcount,
)
from repro.noc.network import Network
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Tag encoding
# ----------------------------------------------------------------------
class TestTagEncoding:
    def test_tags_are_declaration_order(self):
        assert [m.tag for m in MESSAGE_TYPES] == list(range(N_MESSAGE_TYPES))

    def test_value_by_tag_matches_enum(self):
        for m in MessageType:
            assert VALUE_BY_TAG[m.tag] == m.value

    def test_message_stamps_tag(self):
        msg = CoherenceMessage(MessageType.INV_ACK, addr=0x40, requester=3)
        assert msg.tag == MessageType.INV_ACK.tag

    def test_dispatch_tables_cover_every_tag(self):
        from repro.coherence import directory, l1cache

        assert len(directory._HANDLER_NAMES) == N_MESSAGE_TYPES
        assert len(l1cache._HANDLER_NAMES) == N_MESSAGE_TYPES


# ----------------------------------------------------------------------
# Bitmask sharer bookkeeping == FrozenSet semantics
# ----------------------------------------------------------------------
class TestSharerBitmask:
    """Run the directory's mask algebra next to a model set and require
    identical observable state at every step (0, 1, and all-64 sharers)."""

    @pytest.mark.parametrize(
        "cores",
        [[], [0], [63], list(range(64))],
        ids=["empty", "lowest", "highest", "all-64"],
    )
    def test_add_remove_roundtrip(self, cores):
        mask, model = 0, set()
        for core in cores:
            mask |= 1 << core
            model.add(core)
            assert mask_to_set(mask) == model
            assert popcount(mask) == len(model)
        for core in cores:
            assert (mask >> core) & 1  # membership test the hot code uses
            mask &= ~(1 << core)
            model.discard(core)
            assert mask_to_set(mask) == model
            assert popcount(mask) == len(model)
        assert mask == 0 and model == set()

    def test_iteration_order_is_sorted(self):
        """The Inv fan-out walks lowest-bit-first — the same order the
        FrozenSet implementation got from ``sorted()``."""
        cores = [63, 5, 0, 17, 41]
        mask = 0
        for core in cores:
            mask |= 1 << core
        walked = []
        m = mask
        while m:
            low = m & -m
            walked.append(low.bit_length() - 1)
            m ^= low
        assert walked == sorted(cores)

    def test_expected_minus_acked_commit_check(self):
        """``expected & ~acked == 0`` iff the expected set is covered."""
        expected = (1 << 3) | (1 << 9) | (1 << 63)
        acked = 0
        for core in (3, 9):
            acked |= 1 << core
            assert expected & ~acked  # still waiting on 63
        acked |= 1 << 63
        assert expected & ~acked == 0
        # a stray ack outside the expected set must not unblock commit
        assert ((1 << 3) | (1 << 4)) & ~(1 << 4)

    def test_directory_entry_exposes_set_view(self):
        """End to end: sharers accumulated by real GetS traffic read back
        as a plain set through the compat property."""
        sim = Simulator()
        cfg = SystemConfig()
        net = Network(sim, cfg.noc)
        memsys = MemorySystem(sim, cfg, net, model_dram=False)
        addr = memsys.addr_for_home(0)
        for core in range(64):
            memsys.load(core, addr, lambda _v: None)
        sim.run()
        ent = memsys.dirs[0].entry(addr)
        assert ent.sharers == set(range(64))
        assert popcount(ent.sharer_mask) == 64
        # a full invalidation (RMW) collapses the mask to the owner
        memsys.rmw(7, addr, lambda old: (old + 1, old), lambda _v: None)
        sim.run()
        assert ent.sharers == set()
        assert ent.owner == 7


# ----------------------------------------------------------------------
# Message pool
# ----------------------------------------------------------------------
class TestMessagePool:
    def test_acquire_release_reuses_instance(self):
        pool = MessagePool()
        msg = pool.acquire(MessageType.INV, 0x80, 5, inv_target=9)
        assert pool.allocated == 1 and pool.reused == 0
        pool.release(msg)
        assert len(pool) == 1
        again = pool.acquire(MessageType.INV_ACK, 0xC0, 6, stale=True)
        assert again is msg
        assert pool.reused == 1 and len(pool) == 0

    def test_reinit_clears_previous_fields(self):
        pool = MessagePool()
        msg = pool.acquire(
            MessageType.INV, 0x80, 5,
            inv_target=9, early=True, via_router=12, txn_id=77,
        )
        pool.release(msg)
        fresh = pool.acquire(MessageType.ACK_COUNT, 0x100, 2, ack_from=0b101)
        assert fresh is msg
        assert fresh.mtype is MessageType.ACK_COUNT
        assert fresh.tag == MessageType.ACK_COUNT.tag
        assert fresh.ack_from == 0b101
        # every stale field is back at its constructor default
        assert fresh.inv_target == -1
        assert fresh.early is False
        assert fresh.via_router is None
        assert fresh.txn_id == 0
        assert fresh._in_pool is False

    def test_double_release_is_noop(self):
        pool = MessagePool()
        msg = pool.acquire(MessageType.INV, 0x80, 5)
        pool.release(msg)
        pool.release(msg)
        assert len(pool) == 1 and pool.released == 1

    def test_fault_injection_disables_recycling(self):
        """The duplicate fault aliases one payload across two packets, so
        a faulted system must never return messages to the pool."""
        from repro.faults.plan import FaultPlan
        from repro.system import ManyCoreSystem
        from repro.workloads.generator import generate_workload

        cfg = SystemConfig()
        workload = generate_workload(
            "bwaves", num_threads=4, mesh_nodes=64, seed=1, scale=0.05
        )
        plan = FaultPlan.parse("duplicate:0.01", seed=3)
        system = ManyCoreSystem(cfg, workload, fault_plan=plan)
        assert system.memsys._recycle is False

    def test_pool_active_in_invalidation_storm(self):
        from repro.perf.workloads import run_dir_invalidation_storm

        sim, net = run_dir_invalidation_storm(rounds=3)
        pool = net.memsys.msg_pool
        assert pool.reused > 0, "storm bursts never recycled a message"
        assert pool.released >= pool.reused


# ----------------------------------------------------------------------
# Per-run transaction ids (cross-run determinism)
# ----------------------------------------------------------------------
class TestPerRunTxnIds:
    def _run_and_collect(self):
        sim = Simulator()
        cfg = SystemConfig()
        net = Network(sim, cfg.noc)
        memsys = MemorySystem(sim, cfg, net, model_dram=False)
        return [memsys.next_txn_id() for _ in range(5)]

    def test_fresh_system_restarts_ids(self):
        assert self._run_and_collect() == [1, 2, 3, 4, 5]
        assert self._run_and_collect() == [1, 2, 3, 4, 5]

    def test_module_counter_still_monotonic(self):
        """The deprecated process-global counter keeps its old contract
        for systemless callers."""
        from repro.coherence.messages import next_txn_id

        a, b = next_txn_id(), next_txn_id()
        assert b == a + 1


# ----------------------------------------------------------------------
# Slots lint: hot classes must not grow a __dict__
# ----------------------------------------------------------------------
def _hot_classes():
    from repro.coherence.directory import DirEntry, Transaction
    from repro.coherence.l1cache import _PendingLoad, _PendingWrite
    from repro.noc.flitsim import Flit, FlitPacket, VirtualChannel
    from repro.noc.packet import Packet
    from repro.obs.registry import Counter
    from repro.sim.kernel import Event

    return [
        Packet, Flit, FlitPacket, VirtualChannel, Event, Counter,
        CoherenceMessage, MessagePool, Transaction, DirEntry,
        _PendingLoad, _PendingWrite,
    ]


class TestSlotsLint:
    @pytest.mark.parametrize(
        "cls", _hot_classes(), ids=lambda c: c.__name__
    )
    def test_hot_class_is_fully_slotted(self, cls):
        """Every class on the MRO (except object) must declare
        ``__slots__`` — one missing link silently re-adds a per-instance
        dict and the allocation win evaporates."""
        for klass in cls.__mro__[:-1]:
            assert "__slots__" in vars(klass), (
                f"{cls.__name__}: {klass.__name__} has no __slots__"
            )
