"""Property-based tests of coherence invariants.

Hypothesis drives random mixes of loads, stores, RMWs and fail-fast swaps
from random cores against random addresses, with and without iNPG, and
checks the invariants that define a correct invalidation protocol:

* SWMR: at quiescence, at most one core holds a writable copy per block;
* value correctness: fetch-and-increments never lose updates;
* tracked copies: every valid L1 line is known to the directory;
* liveness: every issued operation completes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import InpgConfig, NocConfig, SystemConfig
from repro.coherence import L1State, MemorySystem
from repro.inpg import BigRouter, evenly_spread_nodes
from repro.noc import Network, Router
from repro.noc.topology import Mesh
from repro.sim import Simulator


def build_system(inpg: bool):
    cfg = SystemConfig(
        noc=NocConfig(width=4, height=4),
        num_threads=16,
        inpg=InpgConfig(enabled=inpg, num_big_routers=8),
    )
    sim = Simulator()
    if inpg:
        big = evenly_spread_nodes(Mesh(4, 4), 8)

        def factory(s, node, net):
            if node in big:
                return BigRouter(s, node, net, cfg.inpg)
            return Router(s, node, net)

        net = Network(sim, cfg.noc, router_factory=factory)
    else:
        net = Network(sim, cfg.noc)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    return sim, mem


op_strategy = st.tuples(
    st.sampled_from(["load", "store", "inc", "swap"]),
    st.integers(min_value=0, max_value=15),   # core
    st.integers(min_value=0, max_value=3),    # address index
    st.integers(min_value=0, max_value=30),   # issue delay
)


class TestProtocolInvariants:
    @given(ops=st.lists(op_strategy, min_size=1, max_size=40),
           inpg=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_swmr_values_and_tracking(self, ops, inpg):
        sim, mem = build_system(inpg)
        addrs = [mem.addr_for_home(h) for h in (0, 5, 10, 15)]
        completed = []
        issued = 0
        inc_count = {a: 0 for a in addrs}
        # at most one op per (core, addr) outstanding: track busy pairs
        busy = set()
        for kind, core, ai, delay in ops:
            addr = addrs[ai]
            if (core, addr) in busy and kind != "load":
                continue
            issued += 1
            if kind != "load":
                busy.add((core, addr))

            def make_cb(core=core, addr=addr, kind=kind):
                def cb(_value):
                    completed.append(kind)
                    busy.discard((core, addr))
                return cb

            if kind == "load":
                sim.schedule(delay, lambda c=core, a=addr, cb=make_cb():
                             mem.load(c, a, cb))
            elif kind == "store":
                sim.schedule(delay, lambda c=core, a=addr, cb=make_cb():
                             mem.store(c, a, 7, cb))
            elif kind == "inc":
                inc_count[addr] += 1
                sim.schedule(delay, lambda c=core, a=addr, cb=make_cb():
                             mem.rmw(c, a, lambda old: (old + 1, old), cb,
                                     ll_sc=True))
            else:  # swap (fail-fast)
                sim.schedule(delay, lambda c=core, a=addr, cb=make_cb():
                             mem.rmw(c, a, lambda old: (1, old), cb,
                                     fails_if=lambda v: v != 0))
        sim.run(until=3_000_000)
        # liveness: everything completed
        assert len(completed) == issued
        assert sim.pending_events == 0 or sim.peek_next_cycle() is None
        for addr in addrs:
            # SWMR at quiescence
            writable = [
                c for c in range(16)
                if mem.l1s[c].state_of(addr).can_write
            ]
            assert len(writable) <= 1, (addr, writable)
            owners = [
                c for c in range(16)
                if mem.l1s[c].state_of(addr).owns_data
            ]
            assert len(owners) <= 1, (addr, owners)
            # every valid copy is directory-tracked
            home = mem.home_of(addr)
            ent = mem.dirs[home].entry(addr)
            for c in range(16):
                state = mem.l1s[c].state_of(addr)
                if state is L1State.SHARED:
                    assert c in ent.sharers, (addr, c, state)
                elif state.owns_data:
                    assert ent.owner == c, (addr, c, state, ent.owner)

    @given(n_incs=st.integers(min_value=2, max_value=16),
           inpg=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_concurrent_increments_never_lost(self, n_incs, inpg):
        sim, mem = build_system(inpg)
        addr = mem.addr_for_home(9)
        done = []
        for core in range(n_incs):
            mem.rmw(core, addr, lambda old: (old + 1, old), done.append,
                    ll_sc=True)
        sim.run(until=3_000_000)
        assert len(done) == n_incs
        assert mem.read(addr) == n_incs
        # each increment observed a unique predecessor value
        assert sorted(done) == list(range(n_incs))

    @given(n=st.integers(min_value=2, max_value=16), inpg=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_swap_race_has_exactly_one_winner(self, n, inpg):
        sim, mem = build_system(inpg)
        addr = mem.addr_for_home(6)
        results = []
        for core in range(n):
            mem.rmw(core, addr, lambda old: (1, old), results.append,
                    fails_if=lambda v: v != 0)
        sim.run(until=3_000_000)
        assert len(results) == n
        assert results.count(0) == 1
        assert mem.read(addr) == 1
