"""Unit tests for SystemConfig and mechanism selection."""

import pytest

from repro.config import MECHANISMS, NocConfig, SystemConfig


class TestDefaults:
    def test_table1_defaults(self):
        cfg = SystemConfig()
        assert cfg.num_threads == 64
        assert cfg.noc.width == cfg.noc.height == 8
        assert cfg.noc.router_pipeline_cycles == 2
        assert cfg.noc.data_packet_flits == 8
        assert cfg.noc.ctrl_packet_flits == 1
        assert cfg.cache.block_bytes == 128
        assert cfg.cache.l1_latency == 2
        assert cfg.cache.l2_latency == 6
        assert cfg.inpg.num_big_routers == 32
        assert cfg.inpg.barrier_table_size == 16
        assert cfg.inpg.barrier_ttl == 128
        assert cfg.ocor.retry_times == 128
        assert cfg.ocor.priority_levels == 9
        assert cfg.os.qsl_spin_retries == 128

    def test_both_mechanisms_default_off(self):
        cfg = SystemConfig()
        assert not cfg.inpg.enabled
        assert not cfg.ocor.enabled


class TestMechanismSelection:
    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_roundtrip(self, mech):
        cfg = SystemConfig().with_mechanism(mech)
        assert cfg.inpg.enabled == ("inpg" in mech)
        assert cfg.ocor.enabled == ("ocor" in mech)

    def test_case_insensitive(self):
        cfg = SystemConfig().with_mechanism("iNPG+OCOR")
        assert cfg.inpg.enabled and cfg.ocor.enabled

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            SystemConfig().with_mechanism("magic")

    def test_original_config_unchanged(self):
        base = SystemConfig()
        assert base.with_mechanism("original") == base


class TestNocConfig:
    def test_node_coordinates(self):
        noc = NocConfig(width=8, height=8)
        assert noc.node_at(5, 6) == 53
        assert noc.coords(53) == (5, 6)
        assert noc.num_nodes == 64

    def test_out_of_range(self):
        noc = NocConfig(width=4, height=4)
        with pytest.raises(ValueError):
            noc.node_at(4, 0)
