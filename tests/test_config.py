"""Unit tests for SystemConfig, mechanism selection, the generic
``with_overrides`` builder, and the simulation-axis vocabulary."""

import pytest

from repro.config import (
    ARBITERS,
    FLIT_ENGINES,
    MECHANISMS,
    PLACEMENTS,
    PROTOCOL_NAMES,
    TOPOLOGIES,
    InpgConfig,
    NocConfig,
    SystemConfig,
    describe_axes,
)


class TestDefaults:
    def test_table1_defaults(self):
        cfg = SystemConfig()
        assert cfg.num_threads == 64
        assert cfg.noc.width == cfg.noc.height == 8
        assert cfg.noc.router_pipeline_cycles == 2
        assert cfg.noc.data_packet_flits == 8
        assert cfg.noc.ctrl_packet_flits == 1
        assert cfg.cache.block_bytes == 128
        assert cfg.cache.l1_latency == 2
        assert cfg.cache.l2_latency == 6
        assert cfg.inpg.num_big_routers == 32
        assert cfg.inpg.barrier_table_size == 16
        assert cfg.inpg.barrier_ttl == 128
        assert cfg.ocor.retry_times == 128
        assert cfg.ocor.priority_levels == 9
        assert cfg.os.qsl_spin_retries == 128

    def test_both_mechanisms_default_off(self):
        cfg = SystemConfig()
        assert not cfg.inpg.enabled
        assert not cfg.ocor.enabled


class TestMechanismSelection:
    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_roundtrip(self, mech):
        cfg = SystemConfig().with_mechanism(mech)
        assert cfg.inpg.enabled == ("inpg" in mech)
        assert cfg.ocor.enabled == ("ocor" in mech)

    def test_case_insensitive(self):
        cfg = SystemConfig().with_mechanism("iNPG+OCOR")
        assert cfg.inpg.enabled and cfg.ocor.enabled

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            SystemConfig().with_mechanism("magic")

    def test_original_config_unchanged(self):
        base = SystemConfig()
        assert base.with_mechanism("original") == base


class TestWithOverrides:
    def test_section_dict_deep_replaces(self):
        base = SystemConfig()
        derived = base.with_overrides(noc={"width": 4, "height": 4},
                                      num_threads=16)
        assert derived.noc.width == derived.noc.height == 4
        assert derived.num_threads == 16
        # untouched fields survive, and the base is never mutated
        assert derived.noc.router_pipeline_cycles == 2
        assert base.noc.width == 8 and base.num_threads == 64

    def test_section_instance_accepted(self):
        noc = NocConfig(width=2, height=2)
        assert SystemConfig().with_overrides(noc=noc).noc == noc

    def test_unknown_section_field_rejected(self):
        with pytest.raises(TypeError, match="bandwidth"):
            SystemConfig().with_overrides(noc={"bandwidth": 9})

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(TypeError, match="turbo"):
            SystemConfig().with_overrides(turbo=True)

    def test_no_overrides_is_identity(self):
        base = SystemConfig()
        assert base.with_overrides() == base

    def test_with_mechanism_is_with_overrides(self):
        base = SystemConfig()
        for mech in MECHANISMS:
            flags = {"inpg": "inpg" in mech, "ocor": "ocor" in mech}
            assert base.with_mechanism(mech) == base.with_overrides(
                inpg={"enabled": flags["inpg"]},
                ocor={"enabled": flags["ocor"]},
            )

    def test_derived_config_stays_hashable(self):
        # frozen dataclasses are dict keys throughout the executor
        derived = SystemConfig().with_overrides(
            noc={"topology": "torus", "wrr_weights": [3, 1]})
        assert hash(derived) is not None
        assert derived.noc.wrr_weights == (3, 1)  # list normalized


class TestAxisVocabulary:
    def test_axis_tuples(self):
        assert TOPOLOGIES == ("mesh", "torus", "ring")
        assert ARBITERS == ("rr", "wrr")
        assert PLACEMENTS == ("spread", "center", "perimeter")
        # defaults first, by convention
        cfg = SystemConfig()
        assert cfg.noc.topology == TOPOLOGIES[0]
        assert cfg.noc.arbiter == ARBITERS[0]
        assert cfg.inpg.placement == PLACEMENTS[0]
        assert cfg.protocol == PROTOCOL_NAMES[0]
        assert cfg.noc.flit_engine == FLIT_ENGINES[0]

    def test_describe_axes_is_consistent(self):
        axes = describe_axes()
        # the four CLI-reachable axes; big-router placement is config-only
        assert set(axes) == {"protocol", "flit_engine", "topology",
                             "arbiter"}
        for name, axis in axes.items():
            assert axis["default"] == axis["choices"][0], name
            section, _, field = axis["config_field"].partition(".")
            cfg = SystemConfig()
            holder = getattr(cfg, section) if field else cfg
            value = getattr(holder, field or section)
            assert value == axis["default"], name

    @pytest.mark.parametrize("field,value", [
        ("topology", "hypercube"),
        ("arbiter", "lottery"),
    ])
    def test_invalid_axis_values_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            NocConfig(**{field: value})

    def test_invalid_wrr_weights_rejected(self):
        with pytest.raises(ValueError):
            NocConfig(wrr_weights=())
        with pytest.raises(ValueError):
            NocConfig(wrr_weights=(1, 0))

    def test_invalid_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            InpgConfig(placement="edges")


class TestNocConfig:
    def test_node_coordinates(self):
        noc = NocConfig(width=8, height=8)
        assert noc.node_at(5, 6) == 53
        assert noc.coords(53) == (5, 6)
        assert noc.num_nodes == 64

    def test_out_of_range(self):
        noc = NocConfig(width=4, height=4)
        with pytest.raises(ValueError):
            noc.node_at(4, 0)
