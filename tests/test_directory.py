"""Focused unit tests for directory-controller behaviours."""

from repro.config import NocConfig, OcorConfig, SystemConfig
from repro.coherence import MemorySystem, MessageType
from repro.coherence.messages import CoherenceMessage
from repro.noc import Network
from repro.sim import Simulator


def make_system(ocor=False, **cfg_kw):
    cfg = SystemConfig(
        noc=NocConfig(width=4, height=4),
        ocor=OcorConfig(enabled=ocor),
        num_threads=16,
        **cfg_kw,
    )
    sim = Simulator()
    net = Network(sim, cfg.noc, priority_arbitration=True)
    mem = MemorySystem(sim, cfg, net)
    net.memsys = mem
    return sim, mem


class TestQueueOrdering:
    def _contend(self, mem, sim, priorities):
        """Open a transaction, queue plain stores with given priorities,
        and return the commit order of the stores."""
        addr = mem.addr_for_home(2)
        # sharers so the first store opens a slow transaction
        for core in (1, 3, 4, 6, 9):
            mem.load(core, addr, lambda v: None)
        sim.run()
        order = []
        mem.store(5, addr, 1, lambda v: None)  # opens the txn
        sim.run(until=sim.cycle + 10)
        for i, (core, prio) in enumerate(priorities):
            mem.store(core, addr, 10 + i,
                      lambda v, c=core: order.append(c), priority=prio)
        sim.run()
        return order

    def test_fifo_without_ocor(self):
        sim, mem = make_system(ocor=False)
        order = self._contend(mem, sim, [(10, 0), (11, 5), (12, 9)])
        assert order == [10, 11, 12]

    def test_priority_order_with_ocor(self):
        sim, mem = make_system(ocor=True)
        order = self._contend(mem, sim, [(10, 1), (11, 5), (12, 9)])
        assert order == [12, 11, 10]

    def test_aging_prevents_starvation(self):
        """With aggressive aging, a low-priority request that waited
        long enough overtakes fresher high-priority ones."""
        cfg_kw = dict(
            ocor=OcorConfig(enabled=True, aging_cycles=50),
        )
        cfg = SystemConfig(
            noc=NocConfig(width=4, height=4), num_threads=16, **cfg_kw
        )
        sim = Simulator()
        net = Network(sim, cfg.noc, priority_arbitration=True)
        mem = MemorySystem(sim, cfg, net)
        net.memsys = mem
        addr = mem.addr_for_home(2)
        for core in (1, 3, 4, 6, 9):
            mem.load(core, addr, lambda v: None)
        sim.run()
        order = []
        mem.store(5, addr, 1, lambda v: None)
        sim.run(until=sim.cycle + 10)
        # the low-priority request arrives FIRST and then waits while the
        # transaction is open; with 50-cycle aging it out-levels prio 3
        mem.store(10, addr, 2, lambda v: order.append(10), priority=0)
        sim.run(until=sim.cycle + 400)
        mem.store(11, addr, 3, lambda v: order.append(11), priority=3)
        sim.run()
        assert order == [10, 11]


class TestDirectoryBookkeeping:
    def test_sharer_list_tracks_readers(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(7)
        for core in (0, 2, 8):
            mem.load(core, addr, lambda v: None)
        sim.run()
        ent = mem.dirs[7].entry(addr)
        assert ent.sharers == {0, 2, 8}
        assert ent.owner is None

    def test_txn_clears_sharers_and_sets_owner(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(7)
        for core in (0, 2, 8):
            mem.load(core, addr, lambda v: None)
        sim.run()
        mem.store(4, addr, 1, lambda v: None)
        sim.run()
        ent = mem.dirs[7].entry(addr)
        assert ent.owner == 4
        assert ent.sharers == set()

    def test_unblock_ignores_stale_txn_id(self):
        sim, mem = make_system()
        addr = mem.addr_for_home(7)
        mem.store(4, addr, 1, lambda v: None)
        sim.run()
        home = mem.home_of(addr)
        ent = mem.dirs[home].entry(addr)
        stale = CoherenceMessage(
            mtype=MessageType.UNBLOCK, addr=addr, requester=4, txn_id=999999
        )
        mem.dirs[home].handle(stale)
        sim.run()
        assert not ent.busy  # unchanged, no crash
